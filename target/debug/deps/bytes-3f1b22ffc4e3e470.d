/root/repo/target/debug/deps/bytes-3f1b22ffc4e3e470.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3f1b22ffc4e3e470.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3f1b22ffc4e3e470.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
