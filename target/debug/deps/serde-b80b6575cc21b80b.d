/root/repo/target/debug/deps/serde-b80b6575cc21b80b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-b80b6575cc21b80b: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
