/root/repo/target/debug/deps/props-1802b9972dca1888.d: tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-1802b9972dca1888.rmeta: tests/props.rs Cargo.toml

tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
