/root/repo/target/debug/deps/serde-c361778036dc4855.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-c361778036dc4855.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
