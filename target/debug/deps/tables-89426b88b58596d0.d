/root/repo/target/debug/deps/tables-89426b88b58596d0.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-89426b88b58596d0.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
