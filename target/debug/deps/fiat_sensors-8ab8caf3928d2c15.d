/root/repo/target/debug/deps/fiat_sensors-8ab8caf3928d2c15.d: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/debug/deps/fiat_sensors-8ab8caf3928d2c15: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

crates/sensors/src/lib.rs:
crates/sensors/src/features.rs:
crates/sensors/src/humanness.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/lazy.rs:
