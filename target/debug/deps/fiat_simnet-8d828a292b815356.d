/root/repo/target/debug/deps/fiat_simnet-8d828a292b815356.d: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/debug/deps/libfiat_simnet-8d828a292b815356.rlib: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/debug/deps/libfiat_simnet-8d828a292b815356.rmeta: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/event.rs:
crates/simnet/src/home.rs:
crates/simnet/src/intercept.rs:
crates/simnet/src/link.rs:
crates/simnet/src/tcp.rs:
