/root/repo/target/debug/deps/criterion-74825f1a36aa0139.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74825f1a36aa0139.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74825f1a36aa0139.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
