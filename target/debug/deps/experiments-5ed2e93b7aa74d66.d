/root/repo/target/debug/deps/experiments-5ed2e93b7aa74d66.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5ed2e93b7aa74d66: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
