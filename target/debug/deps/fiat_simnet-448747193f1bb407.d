/root/repo/target/debug/deps/fiat_simnet-448747193f1bb407.d: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_simnet-448747193f1bb407.rmeta: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/event.rs:
crates/simnet/src/home.rs:
crates/simnet/src/intercept.rs:
crates/simnet/src/link.rs:
crates/simnet/src/tcp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
