/root/repo/target/debug/deps/figures-9dd5a24ac8deb6db.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-9dd5a24ac8deb6db.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
