/root/repo/target/debug/deps/fiat_fleet-d5e1d2e501abf94b.d: crates/fleet/src/lib.rs

/root/repo/target/debug/deps/fiat_fleet-d5e1d2e501abf94b: crates/fleet/src/lib.rs

crates/fleet/src/lib.rs:
