/root/repo/target/debug/deps/criterion-c6806ccfe5d3faff.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c6806ccfe5d3faff.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
