/root/repo/target/debug/deps/fiat_fleet-cfd280655ae13bc9.d: crates/fleet/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_fleet-cfd280655ae13bc9.rmeta: crates/fleet/src/lib.rs Cargo.toml

crates/fleet/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
