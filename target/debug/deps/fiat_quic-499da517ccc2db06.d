/root/repo/target/debug/deps/fiat_quic-499da517ccc2db06.d: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/debug/deps/fiat_quic-499da517ccc2db06: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

crates/quic/src/lib.rs:
crates/quic/src/connection.rs:
crates/quic/src/replay.rs:
