/root/repo/target/debug/deps/serde_json-056f7d52e32a778e.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-056f7d52e32a778e.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-056f7d52e32a778e.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
