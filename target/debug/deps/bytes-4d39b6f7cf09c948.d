/root/repo/target/debug/deps/bytes-4d39b6f7cf09c948.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-4d39b6f7cf09c948.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
