/root/repo/target/debug/deps/experiments-9345e2a5efa8a75c.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-9345e2a5efa8a75c.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
