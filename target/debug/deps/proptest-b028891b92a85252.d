/root/repo/target/debug/deps/proptest-b028891b92a85252.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-b028891b92a85252.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-b028891b92a85252.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
