/root/repo/target/debug/deps/secure_channel-b788bdaee7222d67.d: tests/secure_channel.rs

/root/repo/target/debug/deps/secure_channel-b788bdaee7222d67: tests/secure_channel.rs

tests/secure_channel.rs:
