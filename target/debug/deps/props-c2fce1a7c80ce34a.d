/root/repo/target/debug/deps/props-c2fce1a7c80ce34a.d: crates/telemetry/tests/props.rs

/root/repo/target/debug/deps/props-c2fce1a7c80ce34a: crates/telemetry/tests/props.rs

crates/telemetry/tests/props.rs:
