/root/repo/target/debug/deps/fiat_sensors-bf7ad175d0aab8bf.d: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_sensors-bf7ad175d0aab8bf.rmeta: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs Cargo.toml

crates/sensors/src/lib.rs:
crates/sensors/src/features.rs:
crates/sensors/src/humanness.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/lazy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
