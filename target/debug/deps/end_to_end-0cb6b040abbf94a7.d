/root/repo/target/debug/deps/end_to_end-0cb6b040abbf94a7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0cb6b040abbf94a7: tests/end_to_end.rs

tests/end_to_end.rs:
