/root/repo/target/debug/deps/fiat_attack-4c06c14fb065fcce.d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/debug/deps/fiat_attack-4c06c14fb065fcce: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

crates/attack/src/lib.rs:
crates/attack/src/harness.rs:
crates/attack/src/scorecard.rs:
crates/attack/src/strategies.rs:
