/root/repo/target/debug/deps/fiat-0187f45e1a7a995b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat-0187f45e1a7a995b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
