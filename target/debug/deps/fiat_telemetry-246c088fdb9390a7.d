/root/repo/target/debug/deps/fiat_telemetry-246c088fdb9390a7.d: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/fiat_telemetry-246c088fdb9390a7: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/attack.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/expose.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
