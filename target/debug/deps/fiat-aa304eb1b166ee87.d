/root/repo/target/debug/deps/fiat-aa304eb1b166ee87.d: src/lib.rs

/root/repo/target/debug/deps/fiat-aa304eb1b166ee87: src/lib.rs

src/lib.rs:
