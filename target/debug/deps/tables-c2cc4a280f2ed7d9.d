/root/repo/target/debug/deps/tables-c2cc4a280f2ed7d9.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-c2cc4a280f2ed7d9.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
