/root/repo/target/debug/deps/fiat_trace-9c5ed4fa934f6d3a.d: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_trace-9c5ed4fa934f6d3a.rmeta: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/datasets.rs:
crates/trace/src/device.rs:
crates/trace/src/location.rs:
crates/trace/src/testbed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
