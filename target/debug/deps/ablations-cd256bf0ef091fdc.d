/root/repo/target/debug/deps/ablations-cd256bf0ef091fdc.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-cd256bf0ef091fdc.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
