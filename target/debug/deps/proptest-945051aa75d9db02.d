/root/repo/target/debug/deps/proptest-945051aa75d9db02.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-945051aa75d9db02: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
