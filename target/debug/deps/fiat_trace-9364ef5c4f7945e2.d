/root/repo/target/debug/deps/fiat_trace-9364ef5c4f7945e2.d: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/debug/deps/fiat_trace-9364ef5c4f7945e2: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

crates/trace/src/lib.rs:
crates/trace/src/datasets.rs:
crates/trace/src/device.rs:
crates/trace/src/location.rs:
crates/trace/src/testbed.rs:
