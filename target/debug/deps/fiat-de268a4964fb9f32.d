/root/repo/target/debug/deps/fiat-de268a4964fb9f32.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat-de268a4964fb9f32.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
