/root/repo/target/debug/deps/fiat_attack-15e97f61b97e9051.d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_attack-15e97f61b97e9051.rmeta: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/harness.rs:
crates/attack/src/scorecard.rs:
crates/attack/src/strategies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
