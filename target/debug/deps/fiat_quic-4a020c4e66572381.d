/root/repo/target/debug/deps/fiat_quic-4a020c4e66572381.d: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/debug/deps/libfiat_quic-4a020c4e66572381.rlib: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/debug/deps/libfiat_quic-4a020c4e66572381.rmeta: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

crates/quic/src/lib.rs:
crates/quic/src/connection.rs:
crates/quic/src/replay.rs:
