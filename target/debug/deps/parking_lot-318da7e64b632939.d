/root/repo/target/debug/deps/parking_lot-318da7e64b632939.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-318da7e64b632939.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
