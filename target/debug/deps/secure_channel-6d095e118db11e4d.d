/root/repo/target/debug/deps/secure_channel-6d095e118db11e4d.d: tests/secure_channel.rs

/root/repo/target/debug/deps/secure_channel-6d095e118db11e4d: tests/secure_channel.rs

tests/secure_channel.rs:
