/root/repo/target/debug/deps/fiat_crypto-849804d7d1f4d11f.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libfiat_crypto-849804d7d1f4d11f.rlib: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libfiat_crypto-849804d7d1f4d11f.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/keystore.rs:
crates/crypto/src/poly1305.rs:
crates/crypto/src/sha256.rs:
