/root/repo/target/debug/deps/props-6373fa688c41ed36.d: tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-6373fa688c41ed36.rmeta: tests/props.rs Cargo.toml

tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
