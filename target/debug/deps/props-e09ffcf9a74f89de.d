/root/repo/target/debug/deps/props-e09ffcf9a74f89de.d: crates/telemetry/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-e09ffcf9a74f89de.rmeta: crates/telemetry/tests/props.rs Cargo.toml

crates/telemetry/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
