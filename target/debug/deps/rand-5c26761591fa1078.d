/root/repo/target/debug/deps/rand-5c26761591fa1078.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/debug/deps/rand-5c26761591fa1078: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
