/root/repo/target/debug/deps/criterion-2d0142c818c64dc8.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-2d0142c818c64dc8: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
