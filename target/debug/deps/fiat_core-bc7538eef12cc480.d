/root/repo/target/debug/deps/fiat_core-bc7538eef12cc480.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_core-bc7538eef12cc480.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/audit.rs:
crates/core/src/classifier.rs:
crates/core/src/client.rs:
crates/core/src/events.rs:
crates/core/src/features.rs:
crates/core/src/identify.rs:
crates/core/src/interactions.rs:
crates/core/src/notify.rs:
crates/core/src/pairing.rs:
crates/core/src/pipeline.rs:
crates/core/src/predict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
