/root/repo/target/debug/deps/fiat_simnet-1ade0df2649a8b7e.d: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/debug/deps/fiat_simnet-1ade0df2649a8b7e: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/event.rs:
crates/simnet/src/home.rs:
crates/simnet/src/intercept.rs:
crates/simnet/src/link.rs:
crates/simnet/src/tcp.rs:
