/root/repo/target/debug/deps/fiat_quic-ed8c762d1c13b0b5.d: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_quic-ed8c762d1c13b0b5.rmeta: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs Cargo.toml

crates/quic/src/lib.rs:
crates/quic/src/connection.rs:
crates/quic/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
