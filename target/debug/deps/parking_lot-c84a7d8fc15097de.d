/root/repo/target/debug/deps/parking_lot-c84a7d8fc15097de.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-c84a7d8fc15097de.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
