/root/repo/target/debug/deps/props-fec9cced8b73ad15.d: crates/ml/tests/props.rs

/root/repo/target/debug/deps/props-fec9cced8b73ad15: crates/ml/tests/props.rs

crates/ml/tests/props.rs:
