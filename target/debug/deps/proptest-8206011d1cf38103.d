/root/repo/target/debug/deps/proptest-8206011d1cf38103.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-8206011d1cf38103.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
