/root/repo/target/debug/deps/serde_json-8000846c78566026.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-8000846c78566026: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
