/root/repo/target/debug/deps/props-d10aed2ae6753c53.d: crates/crypto/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-d10aed2ae6753c53.rmeta: crates/crypto/tests/props.rs Cargo.toml

crates/crypto/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
