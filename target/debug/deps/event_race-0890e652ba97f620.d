/root/repo/target/debug/deps/event_race-0890e652ba97f620.d: tests/event_race.rs Cargo.toml

/root/repo/target/debug/deps/libevent_race-0890e652ba97f620.rmeta: tests/event_race.rs Cargo.toml

tests/event_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
