/root/repo/target/debug/deps/fiat_core-9c94a33c263a87ed.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs

/root/repo/target/debug/deps/libfiat_core-9c94a33c263a87ed.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs

/root/repo/target/debug/deps/libfiat_core-9c94a33c263a87ed.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/audit.rs:
crates/core/src/classifier.rs:
crates/core/src/client.rs:
crates/core/src/events.rs:
crates/core/src/features.rs:
crates/core/src/identify.rs:
crates/core/src/interactions.rs:
crates/core/src/notify.rs:
crates/core/src/pairing.rs:
crates/core/src/pipeline.rs:
crates/core/src/predict.rs:
