/root/repo/target/debug/deps/alloc-a2aa10a4c8a222a1.d: crates/core/tests/alloc.rs Cargo.toml

/root/repo/target/debug/deps/liballoc-a2aa10a4c8a222a1.rmeta: crates/core/tests/alloc.rs Cargo.toml

crates/core/tests/alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
