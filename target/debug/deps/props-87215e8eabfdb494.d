/root/repo/target/debug/deps/props-87215e8eabfdb494.d: crates/net/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-87215e8eabfdb494.rmeta: crates/net/tests/props.rs Cargo.toml

crates/net/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
