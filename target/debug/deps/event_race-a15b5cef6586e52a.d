/root/repo/target/debug/deps/event_race-a15b5cef6586e52a.d: tests/event_race.rs Cargo.toml

/root/repo/target/debug/deps/libevent_race-a15b5cef6586e52a.rmeta: tests/event_race.rs Cargo.toml

tests/event_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
