/root/repo/target/debug/deps/fiat-0aa0952700d1a93e.d: src/lib.rs

/root/repo/target/debug/deps/libfiat-0aa0952700d1a93e.rlib: src/lib.rs

/root/repo/target/debug/deps/libfiat-0aa0952700d1a93e.rmeta: src/lib.rs

src/lib.rs:
