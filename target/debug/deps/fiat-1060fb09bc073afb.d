/root/repo/target/debug/deps/fiat-1060fb09bc073afb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat-1060fb09bc073afb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
