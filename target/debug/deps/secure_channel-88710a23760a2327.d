/root/repo/target/debug/deps/secure_channel-88710a23760a2327.d: tests/secure_channel.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_channel-88710a23760a2327.rmeta: tests/secure_channel.rs Cargo.toml

tests/secure_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
