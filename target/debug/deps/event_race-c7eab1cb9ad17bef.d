/root/repo/target/debug/deps/event_race-c7eab1cb9ad17bef.d: tests/event_race.rs

/root/repo/target/debug/deps/event_race-c7eab1cb9ad17bef: tests/event_race.rs

tests/event_race.rs:
