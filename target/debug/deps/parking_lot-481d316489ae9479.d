/root/repo/target/debug/deps/parking_lot-481d316489ae9479.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-481d316489ae9479.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-481d316489ae9479.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
