/root/repo/target/debug/deps/serde_json-7490f8e2bdf28000.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-7490f8e2bdf28000.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
