/root/repo/target/debug/deps/end_to_end-3a2cd8fc3b00fdbb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3a2cd8fc3b00fdbb: tests/end_to_end.rs

tests/end_to_end.rs:
