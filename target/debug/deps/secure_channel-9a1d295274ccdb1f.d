/root/repo/target/debug/deps/secure_channel-9a1d295274ccdb1f.d: tests/secure_channel.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_channel-9a1d295274ccdb1f.rmeta: tests/secure_channel.rs Cargo.toml

tests/secure_channel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
