/root/repo/target/debug/deps/serde_derive-c8660bb8597c5670.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-c8660bb8597c5670.rmeta: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
