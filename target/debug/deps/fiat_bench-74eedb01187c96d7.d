/root/repo/target/debug/deps/fiat_bench-74eedb01187c96d7.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_bench-74eedb01187c96d7.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fleet_exp.rs:
crates/bench/src/ml_tables.rs:
crates/bench/src/table6.rs:
crates/bench/src/table7.rs:
crates/bench/src/tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
