/root/repo/target/debug/deps/bytes-2fe3ad3c96149807.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-2fe3ad3c96149807: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
