/root/repo/target/debug/deps/props-774d5c683ef7d391.d: crates/ml/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-774d5c683ef7d391.rmeta: crates/ml/tests/props.rs Cargo.toml

crates/ml/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
