/root/repo/target/debug/deps/rand-c9db2901de52763d.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs Cargo.toml

/root/repo/target/debug/deps/librand-c9db2901de52763d.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
