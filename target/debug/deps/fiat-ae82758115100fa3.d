/root/repo/target/debug/deps/fiat-ae82758115100fa3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat-ae82758115100fa3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
