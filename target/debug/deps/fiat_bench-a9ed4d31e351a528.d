/root/repo/target/debug/deps/fiat_bench-a9ed4d31e351a528.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

/root/repo/target/debug/deps/libfiat_bench-a9ed4d31e351a528.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

/root/repo/target/debug/deps/libfiat_bench-a9ed4d31e351a528.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fleet_exp.rs:
crates/bench/src/ml_tables.rs:
crates/bench/src/table6.rs:
crates/bench/src/table7.rs:
crates/bench/src/tolerance.rs:
