/root/repo/target/debug/deps/alloc-6002b6a6381dd0a2.d: crates/core/tests/alloc.rs

/root/repo/target/debug/deps/alloc-6002b6a6381dd0a2: crates/core/tests/alloc.rs

crates/core/tests/alloc.rs:
