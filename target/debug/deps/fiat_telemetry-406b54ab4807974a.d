/root/repo/target/debug/deps/fiat_telemetry-406b54ab4807974a.d: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_telemetry-406b54ab4807974a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/attack.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/expose.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
