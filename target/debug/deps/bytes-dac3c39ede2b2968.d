/root/repo/target/debug/deps/bytes-dac3c39ede2b2968.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-dac3c39ede2b2968.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
