/root/repo/target/debug/deps/props-e12635ceaef00db7.d: crates/crypto/tests/props.rs

/root/repo/target/debug/deps/props-e12635ceaef00db7: crates/crypto/tests/props.rs

crates/crypto/tests/props.rs:
