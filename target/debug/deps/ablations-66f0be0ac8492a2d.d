/root/repo/target/debug/deps/ablations-66f0be0ac8492a2d.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-66f0be0ac8492a2d.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
