/root/repo/target/debug/deps/serde-2101a050f569c8b6.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2101a050f569c8b6.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2101a050f569c8b6.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
