/root/repo/target/debug/deps/props-da38d7e709c45988.d: crates/net/tests/props.rs

/root/repo/target/debug/deps/props-da38d7e709c45988: crates/net/tests/props.rs

crates/net/tests/props.rs:
