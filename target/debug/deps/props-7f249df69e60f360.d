/root/repo/target/debug/deps/props-7f249df69e60f360.d: tests/props.rs

/root/repo/target/debug/deps/props-7f249df69e60f360: tests/props.rs

tests/props.rs:
