/root/repo/target/debug/deps/fiat_net-b5f853ae2df84691.d: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_net-b5f853ae2df84691.rmeta: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/dns.rs:
crates/net/src/flow.rs:
crates/net/src/headers.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/time.rs:
crates/net/src/tls.rs:
crates/net/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
