/root/repo/target/debug/deps/fiat_fleet-b5bca7b7bce9a475.d: crates/fleet/src/lib.rs

/root/repo/target/debug/deps/libfiat_fleet-b5bca7b7bce9a475.rlib: crates/fleet/src/lib.rs

/root/repo/target/debug/deps/libfiat_fleet-b5bca7b7bce9a475.rmeta: crates/fleet/src/lib.rs

crates/fleet/src/lib.rs:
