/root/repo/target/debug/deps/parking_lot-a4c9fd7db7e9439e.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-a4c9fd7db7e9439e: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
