/root/repo/target/debug/deps/fiat_sensors-0bb8ddd8b1c24889.d: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/debug/deps/libfiat_sensors-0bb8ddd8b1c24889.rlib: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/debug/deps/libfiat_sensors-0bb8ddd8b1c24889.rmeta: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

crates/sensors/src/lib.rs:
crates/sensors/src/features.rs:
crates/sensors/src/humanness.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/lazy.rs:
