/root/repo/target/debug/deps/props-bae3c389677cda2b.d: crates/quic/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-bae3c389677cda2b.rmeta: crates/quic/tests/props.rs Cargo.toml

crates/quic/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
