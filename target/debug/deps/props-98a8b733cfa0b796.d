/root/repo/target/debug/deps/props-98a8b733cfa0b796.d: crates/quic/tests/props.rs

/root/repo/target/debug/deps/props-98a8b733cfa0b796: crates/quic/tests/props.rs

crates/quic/tests/props.rs:
