/root/repo/target/debug/deps/fiat_trace-f3faee5742f47d1b.d: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/debug/deps/libfiat_trace-f3faee5742f47d1b.rlib: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/debug/deps/libfiat_trace-f3faee5742f47d1b.rmeta: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

crates/trace/src/lib.rs:
crates/trace/src/datasets.rs:
crates/trace/src/device.rs:
crates/trace/src/location.rs:
crates/trace/src/testbed.rs:
