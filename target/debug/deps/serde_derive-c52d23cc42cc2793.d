/root/repo/target/debug/deps/serde_derive-c52d23cc42cc2793.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-c52d23cc42cc2793.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
