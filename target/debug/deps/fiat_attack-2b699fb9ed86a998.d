/root/repo/target/debug/deps/fiat_attack-2b699fb9ed86a998.d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/debug/deps/libfiat_attack-2b699fb9ed86a998.rlib: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/debug/deps/libfiat_attack-2b699fb9ed86a998.rmeta: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

crates/attack/src/lib.rs:
crates/attack/src/harness.rs:
crates/attack/src/scorecard.rs:
crates/attack/src/strategies.rs:
