/root/repo/target/debug/deps/criterion-7436d899fff8234f.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7436d899fff8234f.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
