/root/repo/target/debug/deps/fiat_crypto-f9763956e6a8abf9.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/fiat_crypto-f9763956e6a8abf9: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/keystore.rs:
crates/crypto/src/poly1305.rs:
crates/crypto/src/sha256.rs:
