/root/repo/target/debug/deps/fiat_net-0d17ccd93ff7c06f.d: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libfiat_net-0d17ccd93ff7c06f.rlib: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

/root/repo/target/debug/deps/libfiat_net-0d17ccd93ff7c06f.rmeta: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/dns.rs:
crates/net/src/flow.rs:
crates/net/src/headers.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/time.rs:
crates/net/src/tls.rs:
crates/net/src/trace.rs:
