/root/repo/target/debug/deps/fiat_fleet-8cc46f6b74739d5a.d: crates/fleet/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_fleet-8cc46f6b74739d5a.rmeta: crates/fleet/src/lib.rs Cargo.toml

crates/fleet/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
