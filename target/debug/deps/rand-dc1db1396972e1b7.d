/root/repo/target/debug/deps/rand-dc1db1396972e1b7.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs Cargo.toml

/root/repo/target/debug/deps/librand-dc1db1396972e1b7.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs Cargo.toml

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
