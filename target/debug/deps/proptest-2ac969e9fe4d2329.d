/root/repo/target/debug/deps/proptest-2ac969e9fe4d2329.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2ac969e9fe4d2329.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
