/root/repo/target/debug/deps/fiat_ml-354e74c245fb166e.d: crates/ml/src/lib.rs crates/ml/src/adaboost.rs crates/ml/src/cv.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/nearest_centroid.rs crates/ml/src/permutation.rs crates/ml/src/scaler.rs crates/ml/src/shapley.rs crates/ml/src/svm.rs crates/ml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_ml-354e74c245fb166e.rmeta: crates/ml/src/lib.rs crates/ml/src/adaboost.rs crates/ml/src/cv.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/nearest_centroid.rs crates/ml/src/permutation.rs crates/ml/src/scaler.rs crates/ml/src/shapley.rs crates/ml/src/svm.rs crates/ml/src/tree.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/adaboost.rs:
crates/ml/src/cv.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/mlp.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/nearest_centroid.rs:
crates/ml/src/permutation.rs:
crates/ml/src/scaler.rs:
crates/ml/src/shapley.rs:
crates/ml/src/svm.rs:
crates/ml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
