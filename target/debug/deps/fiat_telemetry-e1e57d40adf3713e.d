/root/repo/target/debug/deps/fiat_telemetry-e1e57d40adf3713e.d: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libfiat_telemetry-e1e57d40adf3713e.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libfiat_telemetry-e1e57d40adf3713e.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/attack.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/expose.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
