/root/repo/target/debug/deps/event_race-361b127607cd202c.d: tests/event_race.rs

/root/repo/target/debug/deps/event_race-361b127607cd202c: tests/event_race.rs

tests/event_race.rs:
