/root/repo/target/debug/deps/experiments-7fa869dfb178eb53.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7fa869dfb178eb53: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
