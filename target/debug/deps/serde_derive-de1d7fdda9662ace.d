/root/repo/target/debug/deps/serde_derive-de1d7fdda9662ace.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-de1d7fdda9662ace: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
