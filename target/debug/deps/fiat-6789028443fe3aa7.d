/root/repo/target/debug/deps/fiat-6789028443fe3aa7.d: src/lib.rs

/root/repo/target/debug/deps/fiat-6789028443fe3aa7: src/lib.rs

src/lib.rs:
