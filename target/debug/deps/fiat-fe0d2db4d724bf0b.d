/root/repo/target/debug/deps/fiat-fe0d2db4d724bf0b.d: src/lib.rs

/root/repo/target/debug/deps/libfiat-fe0d2db4d724bf0b.rlib: src/lib.rs

/root/repo/target/debug/deps/libfiat-fe0d2db4d724bf0b.rmeta: src/lib.rs

src/lib.rs:
