/root/repo/target/debug/deps/serde-125555bc1dc0f19b.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-125555bc1dc0f19b.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
