/root/repo/target/debug/deps/fiat_crypto-094afa03c65f7043.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libfiat_crypto-094afa03c65f7043.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/keystore.rs:
crates/crypto/src/poly1305.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
