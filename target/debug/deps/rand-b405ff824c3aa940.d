/root/repo/target/debug/deps/rand-b405ff824c3aa940.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/debug/deps/librand-b405ff824c3aa940.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/debug/deps/librand-b405ff824c3aa940.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
