/root/repo/target/debug/deps/props-08ca14562fc152d5.d: tests/props.rs

/root/repo/target/debug/deps/props-08ca14562fc152d5: tests/props.rs

tests/props.rs:
