/root/repo/target/debug/examples/latency_race-cc72a7a422378d2f.d: examples/latency_race.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_race-cc72a7a422378d2f.rmeta: examples/latency_race.rs Cargo.toml

examples/latency_race.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
