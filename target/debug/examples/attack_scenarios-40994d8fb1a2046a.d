/root/repo/target/debug/examples/attack_scenarios-40994d8fb1a2046a.d: examples/attack_scenarios.rs

/root/repo/target/debug/examples/attack_scenarios-40994d8fb1a2046a: examples/attack_scenarios.rs

examples/attack_scenarios.rs:
