/root/repo/target/debug/examples/attack_scenarios-ec788c5e603ec1d7.d: examples/attack_scenarios.rs

/root/repo/target/debug/examples/attack_scenarios-ec788c5e603ec1d7: examples/attack_scenarios.rs

examples/attack_scenarios.rs:
