/root/repo/target/debug/examples/smart_home_day-fbaaf5dd18b22c23.d: examples/smart_home_day.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_home_day-fbaaf5dd18b22c23.rmeta: examples/smart_home_day.rs Cargo.toml

examples/smart_home_day.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
