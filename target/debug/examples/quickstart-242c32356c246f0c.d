/root/repo/target/debug/examples/quickstart-242c32356c246f0c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-242c32356c246f0c: examples/quickstart.rs

examples/quickstart.rs:
