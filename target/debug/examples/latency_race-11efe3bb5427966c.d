/root/repo/target/debug/examples/latency_race-11efe3bb5427966c.d: examples/latency_race.rs

/root/repo/target/debug/examples/latency_race-11efe3bb5427966c: examples/latency_race.rs

examples/latency_race.rs:
