/root/repo/target/debug/examples/latency_race-53fbc3d3b7b9dac9.d: examples/latency_race.rs

/root/repo/target/debug/examples/latency_race-53fbc3d3b7b9dac9: examples/latency_race.rs

examples/latency_race.rs:
