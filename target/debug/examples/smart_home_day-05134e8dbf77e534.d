/root/repo/target/debug/examples/smart_home_day-05134e8dbf77e534.d: examples/smart_home_day.rs

/root/repo/target/debug/examples/smart_home_day-05134e8dbf77e534: examples/smart_home_day.rs

examples/smart_home_day.rs:
