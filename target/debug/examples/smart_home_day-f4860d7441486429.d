/root/repo/target/debug/examples/smart_home_day-f4860d7441486429.d: examples/smart_home_day.rs

/root/repo/target/debug/examples/smart_home_day-f4860d7441486429: examples/smart_home_day.rs

examples/smart_home_day.rs:
