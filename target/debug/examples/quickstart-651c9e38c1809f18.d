/root/repo/target/debug/examples/quickstart-651c9e38c1809f18.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-651c9e38c1809f18.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
