/root/repo/target/debug/examples/quickstart-611b79456ab13e44.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-611b79456ab13e44: examples/quickstart.rs

examples/quickstart.rs:
