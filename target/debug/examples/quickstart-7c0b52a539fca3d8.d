/root/repo/target/debug/examples/quickstart-7c0b52a539fca3d8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7c0b52a539fca3d8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
