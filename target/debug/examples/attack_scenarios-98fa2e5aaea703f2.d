/root/repo/target/debug/examples/attack_scenarios-98fa2e5aaea703f2.d: examples/attack_scenarios.rs Cargo.toml

/root/repo/target/debug/examples/libattack_scenarios-98fa2e5aaea703f2.rmeta: examples/attack_scenarios.rs Cargo.toml

examples/attack_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
