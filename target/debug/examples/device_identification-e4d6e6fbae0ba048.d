/root/repo/target/debug/examples/device_identification-e4d6e6fbae0ba048.d: examples/device_identification.rs

/root/repo/target/debug/examples/device_identification-e4d6e6fbae0ba048: examples/device_identification.rs

examples/device_identification.rs:
