/root/repo/target/debug/examples/device_identification-a727d50b52dc263c.d: examples/device_identification.rs Cargo.toml

/root/repo/target/debug/examples/libdevice_identification-a727d50b52dc263c.rmeta: examples/device_identification.rs Cargo.toml

examples/device_identification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
