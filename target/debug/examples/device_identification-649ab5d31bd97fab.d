/root/repo/target/debug/examples/device_identification-649ab5d31bd97fab.d: examples/device_identification.rs

/root/repo/target/debug/examples/device_identification-649ab5d31bd97fab: examples/device_identification.rs

examples/device_identification.rs:
