/root/repo/target/debug/examples/device_identification-1a15df574bf12da0.d: examples/device_identification.rs Cargo.toml

/root/repo/target/debug/examples/libdevice_identification-1a15df574bf12da0.rmeta: examples/device_identification.rs Cargo.toml

examples/device_identification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
