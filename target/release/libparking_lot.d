/root/repo/target/release/libparking_lot.rlib: /root/repo/vendor/parking_lot/src/lib.rs
