/root/repo/target/release/libserde_json.rlib: /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs /root/repo/vendor/serde_json/src/lib.rs
