/root/repo/target/release/libcriterion.rlib: /root/repo/vendor/criterion/src/lib.rs
