/root/repo/target/release/libbytes.rlib: /root/repo/vendor/bytes/src/lib.rs
