/root/repo/target/release/deps/fiat_telemetry-f1b027aa57aab0c7.d: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/fiat_telemetry-f1b027aa57aab0c7: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/attack.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/expose.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
