/root/repo/target/release/deps/fiat_quic-42efd3f0921377ae.d: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/release/deps/libfiat_quic-42efd3f0921377ae.rlib: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/release/deps/libfiat_quic-42efd3f0921377ae.rmeta: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

crates/quic/src/lib.rs:
crates/quic/src/connection.rs:
crates/quic/src/replay.rs:
