/root/repo/target/release/deps/figures-9d092ed251ba18ef.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-9d092ed251ba18ef: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
