/root/repo/target/release/deps/parking_lot-bc1d5a2ed3070e1f.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-bc1d5a2ed3070e1f.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-bc1d5a2ed3070e1f.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
