/root/repo/target/release/deps/fiat_trace-9a9aff3c4dab46fc.d: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/release/deps/fiat_trace-9a9aff3c4dab46fc: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

crates/trace/src/lib.rs:
crates/trace/src/datasets.rs:
crates/trace/src/device.rs:
crates/trace/src/location.rs:
crates/trace/src/testbed.rs:
