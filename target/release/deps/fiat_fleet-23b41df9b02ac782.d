/root/repo/target/release/deps/fiat_fleet-23b41df9b02ac782.d: crates/fleet/src/lib.rs

/root/repo/target/release/deps/fiat_fleet-23b41df9b02ac782: crates/fleet/src/lib.rs

crates/fleet/src/lib.rs:
