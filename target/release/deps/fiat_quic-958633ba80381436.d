/root/repo/target/release/deps/fiat_quic-958633ba80381436.d: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

/root/repo/target/release/deps/fiat_quic-958633ba80381436: crates/quic/src/lib.rs crates/quic/src/connection.rs crates/quic/src/replay.rs

crates/quic/src/lib.rs:
crates/quic/src/connection.rs:
crates/quic/src/replay.rs:
