/root/repo/target/release/deps/proptest-de8a0d838b478c81.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-de8a0d838b478c81.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-de8a0d838b478c81.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
