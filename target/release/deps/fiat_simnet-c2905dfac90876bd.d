/root/repo/target/release/deps/fiat_simnet-c2905dfac90876bd.d: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/release/deps/libfiat_simnet-c2905dfac90876bd.rlib: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/release/deps/libfiat_simnet-c2905dfac90876bd.rmeta: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/event.rs:
crates/simnet/src/home.rs:
crates/simnet/src/intercept.rs:
crates/simnet/src/link.rs:
crates/simnet/src/tcp.rs:
