/root/repo/target/release/deps/rand-ec0255a27bcc28ff.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/release/deps/rand-ec0255a27bcc28ff: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
