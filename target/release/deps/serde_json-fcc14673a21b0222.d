/root/repo/target/release/deps/serde_json-fcc14673a21b0222.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fcc14673a21b0222.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-fcc14673a21b0222.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
