/root/repo/target/release/deps/criterion-3086513925962bb8.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3086513925962bb8.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-3086513925962bb8.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
