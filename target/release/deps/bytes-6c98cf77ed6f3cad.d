/root/repo/target/release/deps/bytes-6c98cf77ed6f3cad.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-6c98cf77ed6f3cad: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
