/root/repo/target/release/deps/experiments-098389c6800523fd.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-098389c6800523fd: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
