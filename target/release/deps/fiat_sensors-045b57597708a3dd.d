/root/repo/target/release/deps/fiat_sensors-045b57597708a3dd.d: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/release/deps/libfiat_sensors-045b57597708a3dd.rlib: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/release/deps/libfiat_sensors-045b57597708a3dd.rmeta: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

crates/sensors/src/lib.rs:
crates/sensors/src/features.rs:
crates/sensors/src/humanness.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/lazy.rs:
