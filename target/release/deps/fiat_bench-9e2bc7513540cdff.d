/root/repo/target/release/deps/fiat_bench-9e2bc7513540cdff.d: crates/bench/src/lib.rs crates/bench/src/attack_exp.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

/root/repo/target/release/deps/libfiat_bench-9e2bc7513540cdff.rlib: crates/bench/src/lib.rs crates/bench/src/attack_exp.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

/root/repo/target/release/deps/libfiat_bench-9e2bc7513540cdff.rmeta: crates/bench/src/lib.rs crates/bench/src/attack_exp.rs crates/bench/src/corpus.rs crates/bench/src/fig1.rs crates/bench/src/fig2.rs crates/bench/src/fleet_exp.rs crates/bench/src/ml_tables.rs crates/bench/src/table6.rs crates/bench/src/table7.rs crates/bench/src/tolerance.rs

crates/bench/src/lib.rs:
crates/bench/src/attack_exp.rs:
crates/bench/src/corpus.rs:
crates/bench/src/fig1.rs:
crates/bench/src/fig2.rs:
crates/bench/src/fleet_exp.rs:
crates/bench/src/ml_tables.rs:
crates/bench/src/table6.rs:
crates/bench/src/table7.rs:
crates/bench/src/tolerance.rs:
