/root/repo/target/release/deps/fiat_sensors-5955332b6da07d8b.d: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

/root/repo/target/release/deps/fiat_sensors-5955332b6da07d8b: crates/sensors/src/lib.rs crates/sensors/src/features.rs crates/sensors/src/humanness.rs crates/sensors/src/imu.rs crates/sensors/src/lazy.rs

crates/sensors/src/lib.rs:
crates/sensors/src/features.rs:
crates/sensors/src/humanness.rs:
crates/sensors/src/imu.rs:
crates/sensors/src/lazy.rs:
