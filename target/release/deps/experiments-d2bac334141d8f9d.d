/root/repo/target/release/deps/experiments-d2bac334141d8f9d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d2bac334141d8f9d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
