/root/repo/target/release/deps/fiat-e5404a5cb16f4ad5.d: src/lib.rs

/root/repo/target/release/deps/libfiat-e5404a5cb16f4ad5.rlib: src/lib.rs

/root/repo/target/release/deps/libfiat-e5404a5cb16f4ad5.rmeta: src/lib.rs

src/lib.rs:
