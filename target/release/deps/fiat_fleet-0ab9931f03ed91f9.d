/root/repo/target/release/deps/fiat_fleet-0ab9931f03ed91f9.d: crates/fleet/src/lib.rs

/root/repo/target/release/deps/libfiat_fleet-0ab9931f03ed91f9.rlib: crates/fleet/src/lib.rs

/root/repo/target/release/deps/libfiat_fleet-0ab9931f03ed91f9.rmeta: crates/fleet/src/lib.rs

crates/fleet/src/lib.rs:
