/root/repo/target/release/deps/fiat-4c4760de6150af0c.d: src/lib.rs

/root/repo/target/release/deps/fiat-4c4760de6150af0c: src/lib.rs

src/lib.rs:
