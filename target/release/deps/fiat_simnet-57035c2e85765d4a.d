/root/repo/target/release/deps/fiat_simnet-57035c2e85765d4a.d: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

/root/repo/target/release/deps/fiat_simnet-57035c2e85765d4a: crates/simnet/src/lib.rs crates/simnet/src/arp.rs crates/simnet/src/event.rs crates/simnet/src/home.rs crates/simnet/src/intercept.rs crates/simnet/src/link.rs crates/simnet/src/tcp.rs

crates/simnet/src/lib.rs:
crates/simnet/src/arp.rs:
crates/simnet/src/event.rs:
crates/simnet/src/home.rs:
crates/simnet/src/intercept.rs:
crates/simnet/src/link.rs:
crates/simnet/src/tcp.rs:
