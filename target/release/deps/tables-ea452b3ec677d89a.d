/root/repo/target/release/deps/tables-ea452b3ec677d89a.d: crates/bench/benches/tables.rs

/root/repo/target/release/deps/tables-ea452b3ec677d89a: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
