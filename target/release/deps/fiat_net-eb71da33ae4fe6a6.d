/root/repo/target/release/deps/fiat_net-eb71da33ae4fe6a6.d: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libfiat_net-eb71da33ae4fe6a6.rlib: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

/root/repo/target/release/deps/libfiat_net-eb71da33ae4fe6a6.rmeta: crates/net/src/lib.rs crates/net/src/dns.rs crates/net/src/flow.rs crates/net/src/headers.rs crates/net/src/packet.rs crates/net/src/pcap.rs crates/net/src/time.rs crates/net/src/tls.rs crates/net/src/trace.rs

crates/net/src/lib.rs:
crates/net/src/dns.rs:
crates/net/src/flow.rs:
crates/net/src/headers.rs:
crates/net/src/packet.rs:
crates/net/src/pcap.rs:
crates/net/src/time.rs:
crates/net/src/tls.rs:
crates/net/src/trace.rs:
