/root/repo/target/release/deps/serde-81ec244036ab9bb6.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-81ec244036ab9bb6: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
