/root/repo/target/release/deps/fiat_core-89e1d73971329708.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs

/root/repo/target/release/deps/fiat_core-89e1d73971329708: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/audit.rs crates/core/src/classifier.rs crates/core/src/client.rs crates/core/src/events.rs crates/core/src/features.rs crates/core/src/identify.rs crates/core/src/interactions.rs crates/core/src/notify.rs crates/core/src/pairing.rs crates/core/src/pipeline.rs crates/core/src/predict.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/audit.rs:
crates/core/src/classifier.rs:
crates/core/src/client.rs:
crates/core/src/events.rs:
crates/core/src/features.rs:
crates/core/src/identify.rs:
crates/core/src/interactions.rs:
crates/core/src/notify.rs:
crates/core/src/pairing.rs:
crates/core/src/pipeline.rs:
crates/core/src/predict.rs:
