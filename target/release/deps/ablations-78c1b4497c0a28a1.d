/root/repo/target/release/deps/ablations-78c1b4497c0a28a1.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-78c1b4497c0a28a1: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
