/root/repo/target/release/deps/proptest-d09eda8991f34e85.d: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-d09eda8991f34e85: vendor/proptest/src/lib.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
