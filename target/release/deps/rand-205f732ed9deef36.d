/root/repo/target/release/deps/rand-205f732ed9deef36.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/release/deps/librand-205f732ed9deef36.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

/root/repo/target/release/deps/librand-205f732ed9deef36.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs vendor/rand/src/chacha.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
vendor/rand/src/chacha.rs:
