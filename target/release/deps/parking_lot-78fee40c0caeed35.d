/root/repo/target/release/deps/parking_lot-78fee40c0caeed35.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-78fee40c0caeed35: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
