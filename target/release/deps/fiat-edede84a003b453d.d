/root/repo/target/release/deps/fiat-edede84a003b453d.d: src/lib.rs

/root/repo/target/release/deps/fiat-edede84a003b453d: src/lib.rs

src/lib.rs:
