/root/repo/target/release/deps/fiat_attack-78c86f8f3129343d.d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/release/deps/fiat_attack-78c86f8f3129343d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

crates/attack/src/lib.rs:
crates/attack/src/harness.rs:
crates/attack/src/scorecard.rs:
crates/attack/src/strategies.rs:
