/root/repo/target/release/deps/serde_derive-dc613b375bc99511.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-dc613b375bc99511.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
