/root/repo/target/release/deps/fiat_ml-60f41017e6807ab0.d: crates/ml/src/lib.rs crates/ml/src/adaboost.rs crates/ml/src/cv.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/nearest_centroid.rs crates/ml/src/permutation.rs crates/ml/src/scaler.rs crates/ml/src/shapley.rs crates/ml/src/svm.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/fiat_ml-60f41017e6807ab0: crates/ml/src/lib.rs crates/ml/src/adaboost.rs crates/ml/src/cv.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/knn.rs crates/ml/src/metrics.rs crates/ml/src/mlp.rs crates/ml/src/naive_bayes.rs crates/ml/src/nearest_centroid.rs crates/ml/src/permutation.rs crates/ml/src/scaler.rs crates/ml/src/shapley.rs crates/ml/src/svm.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/adaboost.rs:
crates/ml/src/cv.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/knn.rs:
crates/ml/src/metrics.rs:
crates/ml/src/mlp.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/nearest_centroid.rs:
crates/ml/src/permutation.rs:
crates/ml/src/scaler.rs:
crates/ml/src/shapley.rs:
crates/ml/src/svm.rs:
crates/ml/src/tree.rs:
