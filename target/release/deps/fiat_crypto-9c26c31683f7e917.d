/root/repo/target/release/deps/fiat_crypto-9c26c31683f7e917.d: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libfiat_crypto-9c26c31683f7e917.rlib: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libfiat_crypto-9c26c31683f7e917.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aead.rs crates/crypto/src/chacha20.rs crates/crypto/src/ct.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/keystore.rs crates/crypto/src/poly1305.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aead.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/keystore.rs:
crates/crypto/src/poly1305.rs:
crates/crypto/src/sha256.rs:
