/root/repo/target/release/deps/serde-ae732261c20a5432.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ae732261c20a5432.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ae732261c20a5432.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
