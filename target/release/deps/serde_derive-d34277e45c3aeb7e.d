/root/repo/target/release/deps/serde_derive-d34277e45c3aeb7e.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-d34277e45c3aeb7e: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
