/root/repo/target/release/deps/fiat_trace-ef8c4dfcfdc2d904.d: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/release/deps/libfiat_trace-ef8c4dfcfdc2d904.rlib: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

/root/repo/target/release/deps/libfiat_trace-ef8c4dfcfdc2d904.rmeta: crates/trace/src/lib.rs crates/trace/src/datasets.rs crates/trace/src/device.rs crates/trace/src/location.rs crates/trace/src/testbed.rs

crates/trace/src/lib.rs:
crates/trace/src/datasets.rs:
crates/trace/src/device.rs:
crates/trace/src/location.rs:
crates/trace/src/testbed.rs:
