/root/repo/target/release/deps/serde_json-ed06e2da83e09946.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-ed06e2da83e09946: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
