/root/repo/target/release/deps/bytes-552f8c27a69a9b2d.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-552f8c27a69a9b2d.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-552f8c27a69a9b2d.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
