/root/repo/target/release/deps/fiat-3a39f9d77df5d0b8.d: src/lib.rs

/root/repo/target/release/deps/libfiat-3a39f9d77df5d0b8.rlib: src/lib.rs

/root/repo/target/release/deps/libfiat-3a39f9d77df5d0b8.rmeta: src/lib.rs

src/lib.rs:
