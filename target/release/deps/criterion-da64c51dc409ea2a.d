/root/repo/target/release/deps/criterion-da64c51dc409ea2a.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-da64c51dc409ea2a: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
