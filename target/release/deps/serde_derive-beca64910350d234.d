/root/repo/target/release/deps/serde_derive-beca64910350d234.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-beca64910350d234.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
