/root/repo/target/release/deps/fiat_telemetry-ab46a2c563f210cd.d: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libfiat_telemetry-ab46a2c563f210cd.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libfiat_telemetry-ab46a2c563f210cd.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/attack.rs crates/telemetry/src/clock.rs crates/telemetry/src/expose.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/attack.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/expose.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/span.rs:
