/root/repo/target/release/deps/fiat_attack-e3d3ec3efb935bce.d: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/release/deps/libfiat_attack-e3d3ec3efb935bce.rlib: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

/root/repo/target/release/deps/libfiat_attack-e3d3ec3efb935bce.rmeta: crates/attack/src/lib.rs crates/attack/src/harness.rs crates/attack/src/scorecard.rs crates/attack/src/strategies.rs

crates/attack/src/lib.rs:
crates/attack/src/harness.rs:
crates/attack/src/scorecard.rs:
crates/attack/src/strategies.rs:
