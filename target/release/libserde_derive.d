/root/repo/target/release/libserde_derive.so: /root/repo/vendor/serde_derive/src/lib.rs
