/root/repo/target/release/libserde.rlib: /root/repo/vendor/serde/src/lib.rs /root/repo/vendor/serde_derive/src/lib.rs
