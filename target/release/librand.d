/root/repo/target/release/librand.rlib: /root/repo/vendor/rand/src/chacha.rs /root/repo/vendor/rand/src/lib.rs /root/repo/vendor/rand/src/rngs.rs /root/repo/vendor/rand/src/seq.rs
