//! # FIAT — Frictionless Authentication of IoT Traffic
//!
//! A from-scratch Rust reproduction of *FIAT: Frictionless Authentication
//! of IoT Traffic* (Xiao & Varvello, CoNEXT '22): a third-party, passive
//! system that authorizes home-IoT traffic by learning its predictable
//! part and validating the human behind the unpredictable part.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`core`] (`fiat-core`) — the FIAT system: predictability engine,
//!   event grouping, event classification, access-control pipeline,
//!   client app model, pairing, audit log.
//! - [`net`] (`fiat-net`) — packets, headers, flow keys, DNS, traces.
//! - [`ml`] (`fiat-ml`) — the nine classifiers, metrics, CV, permutation
//!   importance.
//! - [`sensors`] (`fiat-sensors`) — IMU synthesis and humanness
//!   verification.
//! - [`quic`] (`fiat-quic`) — the 0-RTT secure channel.
//! - [`crypto`] (`fiat-crypto`) — SHA-256 / HMAC / HKDF /
//!   ChaCha20-Poly1305 and the TEE keystore model.
//! - [`simnet`] (`fiat-simnet`) — the deterministic home-network
//!   simulator.
//! - [`trace`] (`fiat-trace`) — testbed device models and dataset
//!   synthesis.
//! - [`telemetry`] (`fiat-telemetry`) — metrics, stage-latency spans,
//!   decision journal, and Prometheus/JSON exposition.
//! - [`fleet`] (`fiat-fleet`) — the sharded multi-home proxy runtime
//!   with deterministic fleet-wide telemetry merging.
//! - [`attack`] (`fiat-attack`) — the adversarial red-team harness:
//!   seeded attacker strategies scored against a live proxy.
//! - [`oracle`] (`fiat-oracle`) — the differential decision oracle: a
//!   naive reference pipeline plus a seeded timestamp-chaos fuzzer that
//!   checks the real proxy against it op by op.
//!
//! ## Quickstart
//!
//! ```
//! use fiat::prelude::*;
//!
//! // Generate a small testbed capture and measure predictability.
//! let capture = TestbedTrace::generate(TestbedConfig {
//!     days: 0.05,
//!     ..Default::default()
//! });
//! let engine = PredictabilityEngine::new(FlowDef::PortLess);
//! let report = engine.report(&capture.trace.packets, &capture.trace.dns);
//! let frac = report.fraction(0, TrafficClass::Control);
//! assert!(frac > 0.5, "control traffic should be mostly predictable");
//! ```

pub use fiat_attack as attack;
pub use fiat_core as core;
pub use fiat_crypto as crypto;
pub use fiat_fleet as fleet;
pub use fiat_ml as ml;
pub use fiat_net as net;
pub use fiat_oracle as oracle;
pub use fiat_probe as probe;
pub use fiat_quic as quic;
pub use fiat_sensors as sensors;
pub use fiat_simnet as simnet;
pub use fiat_telemetry as telemetry;
pub use fiat_trace as trace;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use fiat_core::{
        group_events, EventClass, EventClassifier, FiatApp, FiatProxy, PredictabilityEngine,
        ProxyConfig, ProxyDecision, RuleTable, EVENT_GAP,
    };
    pub use fiat_fleet::{
        build_workloads, run_sequential, run_sharded, FleetOutcome, PartitionPlan,
    };
    pub use fiat_net::{
        Direction, FlowDef, FlowKey, InternedFlowKey, PacketRecord, RemoteId, SimDuration, SimTime,
        Trace, TrafficClass, Transport,
    };
    pub use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
    pub use fiat_simnet::{HomeNetwork, PhoneLocation};
    pub use fiat_telemetry::{MetricRegistry, Span};
    pub use fiat_trace::{testbed_devices, Location, TestbedConfig, TestbedTrace};
}
