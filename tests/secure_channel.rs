//! Cross-crate security properties of the pairing + QUIC + keystore
//! stack, exercised through the public `fiat` API the way the app and
//! proxy use it.

use fiat::core::pipeline::AuthError;
use fiat::core::{FiatApp, FiatProxy, ProxyConfig};
use fiat::prelude::*;
use fiat::quic::QuicError;

const CEREMONY: [u8; 32] = [0x55; 32];

fn paired() -> (FiatApp, FiatProxy) {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(ProxyConfig::default(), &CEREMONY, validator);
    proxy.start(SimTime::ZERO);
    let mut app = FiatApp::new(&CEREMONY, 3);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();
    (app, proxy)
}

#[test]
fn evidence_roundtrip_verifies() {
    let (mut app, mut proxy) = paired();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 0);
    let z = app
        .authorize_zero_rtt("com.wyze.app", &imu, MotionKind::HumanTouch, 10)
        .unwrap();
    assert_eq!(proxy.on_auth_zero_rtt(&z, SimTime::from_secs(1)), Ok(true));
    assert!(proxy.human_fresh(SimTime::from_secs(20)));
    assert!(!proxy.human_fresh(SimTime::from_secs(60)));
}

#[test]
fn one_rtt_path_also_works() {
    let (mut app, mut proxy) = paired();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 1);
    let p = app
        .authorize_one_rtt("com.wyze.app", &imu, MotionKind::HumanTouch, 10)
        .unwrap();
    assert_eq!(proxy.on_auth_one_rtt(&p, SimTime::from_secs(1)), Ok(true));
}

#[test]
fn ciphertext_tampering_detected() {
    let (mut app, mut proxy) = paired();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 2);
    let mut z = app
        .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 10)
        .unwrap();
    let n = z.ciphertext.len();
    z.ciphertext[n / 2] ^= 0x80;
    assert_eq!(
        proxy.on_auth_zero_rtt(&z, SimTime::from_secs(1)),
        Err(AuthError::Transport(QuicError::DecryptFailed))
    );
}

#[test]
fn replay_detected_across_long_sessions() {
    let (mut app, mut proxy) = paired();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 3);
    let mut packets = Vec::new();
    for k in 0..50 {
        packets.push(
            app.authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, k)
                .unwrap(),
        );
    }
    for (k, z) in packets.iter().enumerate() {
        assert!(proxy
            .on_auth_zero_rtt(z, SimTime::from_secs(k as u64 + 1))
            .is_ok());
    }
    // Every single one of them replays to an error.
    for z in &packets {
        assert_eq!(
            proxy.on_auth_zero_rtt(z, SimTime::from_secs(1000)),
            Err(AuthError::Transport(QuicError::Replayed))
        );
    }
}

#[test]
fn cross_household_evidence_rejected() {
    // Two households, each with their own ceremony; evidence never
    // crosses.
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy_b = FiatProxy::new(ProxyConfig::default(), &[0xEE; 32], validator);
    proxy_b.start(SimTime::ZERO);

    let (mut app_a, _) = paired();
    let hello = app_a.handshake_request();
    let sh = proxy_b.accept_handshake(&hello);
    app_a.complete_handshake(&sh).unwrap();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 4);
    let z = app_a
        .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 10)
        .unwrap();
    assert!(matches!(
        proxy_b.on_auth_zero_rtt(&z, SimTime::from_secs(1)),
        Err(AuthError::Transport(_))
    ));
}

#[test]
fn keystore_never_reveals_material() {
    // The public API never exposes key bytes: pairing returns handles and
    // operations happen inside the store. This is a compile-time property
    // mostly; assert the handle type carries nothing recoverable.
    let store = fiat::crypto::TeeKeystore::new();
    let (paired, _) = fiat::core::pair(&store, &CEREMONY);
    let h = paired.sign_key;
    let dbg = format!("{h:?}");
    // The debug representation is an opaque id, far too short to encode
    // 32 bytes of key material.
    assert!(dbg.len() < 32, "{dbg}");
}

#[test]
fn evidence_binds_the_app_package() {
    // The signed message carries which companion app was in the
    // foreground; decoding surfaces it faithfully after the full
    // seal/open cycle.
    let (mut app, _) = paired();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 600, 5);
    let z = app
        .authorize_zero_rtt("com.google.home", &imu, MotionKind::HumanTouch, 10)
        .unwrap();
    // A second proxy paired with the same ceremony can open and inspect.
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy2 = FiatProxy::new(ProxyConfig::default(), &CEREMONY, validator);
    proxy2.start(SimTime::ZERO);
    // 0-RTT tickets are per-server; a different server instance rejects
    // the unknown ticket rather than accepting cross-instance evidence.
    assert!(matches!(
        proxy2.on_auth_zero_rtt(&z, SimTime::from_secs(1)),
        Err(AuthError::Transport(QuicError::UnknownTicket))
    ));
}
