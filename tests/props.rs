//! Property-based tests on the core invariants, via proptest.

use fiat::core::analysis::ErrorModel;
use fiat::core::{group_events, EventClassifier, FiatProxy, PredictabilityEngine, ProxyConfig};
use fiat::crypto::{open, seal};
use fiat::fleet::{build_workloads, run_sequential, run_sharded};
use fiat::ml::data::{fold_complement, stratified_kfold};
use fiat::ml::StandardScaler;
use fiat::net::{
    Direction, DnsTable, FlowDef, PacketRecord, SimDuration, SimTime, TcpFlags, TlsVersion,
    TrafficClass, Transport,
};
use fiat::sensors::HumannessValidator;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

fn pkt(ts_us: u64, size: u16, port: u16) -> PacketRecord {
    PacketRecord {
        ts: SimTime::from_micros(ts_us),
        device: 0,
        direction: Direction::FromDevice,
        local_ip: Ipv4Addr::new(192, 168, 1, 2),
        remote_ip: Ipv4Addr::new(34, 9, 9, 9),
        local_port: port,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::ack(),
        tls: TlsVersion::None,
        size,
        label: TrafficClass::Control,
    }
}

/// A proxy with three registered devices (varying first-N allowances)
/// started at time zero; device 3 stays unregistered to cover the
/// incremental-deployment fail-open path.
fn fuzz_proxy() -> FiatProxy {
    let mut proxy = FiatProxy::new(
        ProxyConfig::default(),
        &[0x42; 32],
        HumannessValidator::with_operating_point(1.0, 1.0, 0),
    );
    for dev in 0..3u16 {
        proxy.register_device(dev, EventClassifier::simple_rule(235), 1 + dev as usize * 3);
    }
    proxy.start(SimTime::ZERO);
    proxy
}

proptest! {
    /// AEAD: whatever the key, nonce, AAD, and payload, open(seal(x)) == x,
    /// and any single-byte corruption is rejected.
    #[test]
    fn aead_roundtrip_and_tamper(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        data in prop::collection::vec(any::<u8>(), 0..512),
        flip in any::<usize>(),
    ) {
        let sealed = seal(&key, &nonce, &aad, &data);
        prop_assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), data);
        let mut bad = sealed.clone();
        let i = flip % bad.len();
        bad[i] ^= 0x01;
        prop_assert!(open(&key, &nonce, &aad, &bad).is_err());
    }

    /// Any strictly periodic flow with >= 3 packets is fully predictable,
    /// whatever its period and size.
    #[test]
    fn periodic_flows_always_predictable(
        period_us in 1_000u64..600_000_000,
        n in 3usize..40,
        size in 40u16..1500,
    ) {
        let packets: Vec<PacketRecord> =
            (0..n).map(|i| pkt(i as u64 * period_us, size, 40_000)).collect();
        let engine = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = engine.analyze(&packets, &DnsTable::new());
        prop_assert!(flags.iter().all(|&f| f));
    }

    /// Two-packet buckets are never predictable (there is nothing for the
    /// single interval to match).
    #[test]
    fn two_packet_buckets_never_predictable(
        gap_us in 1u64..1_000_000_000,
        size in 40u16..1500,
    ) {
        let packets = vec![pkt(0, size, 40_000), pkt(gap_us, size, 40_000)];
        let engine = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = engine.analyze(&packets, &DnsTable::new());
        prop_assert!(flags.iter().all(|&f| !f));
    }

    /// Event grouping partitions exactly the unpredictable packets: every
    /// unpredictable index appears in exactly one event, predictable
    /// indices in none, and intra-event gaps stay below the threshold.
    #[test]
    fn event_grouping_is_a_partition(
        ts in prop::collection::vec(0u64..200_000_000, 1..80),
        gap_ms in 100u64..20_000,
    ) {
        let mut ts = ts;
        ts.sort_unstable();
        let packets: Vec<PacketRecord> =
            ts.iter().map(|&t| pkt(t, 100, 40_000)).collect();
        // Arbitrary flags: mark every third packet predictable.
        let flags: Vec<bool> = (0..packets.len()).map(|i| i % 3 == 0).collect();
        let gap = SimDuration::from_millis(gap_ms);
        let events = group_events(&packets, &flags, gap);

        let mut seen = vec![0u32; packets.len()];
        for e in &events {
            prop_assert!(!e.is_empty());
            for &i in &e.packets {
                seen[i] += 1;
                prop_assert!(!flags[i], "predictable packet grouped");
            }
            // Gaps within an event are < gap.
            for w in e.packets.windows(2) {
                prop_assert!(packets[w[1]].ts - packets[w[0]].ts < gap);
            }
            prop_assert_eq!(e.start, packets[e.packets[0]].ts);
            prop_assert_eq!(e.end, packets[*e.packets.last().unwrap()].ts);
        }
        for (i, &count) in seen.iter().enumerate() {
            prop_assert_eq!(count, u32::from(!flags[i]), "index {}", i);
        }
    }

    /// Stratified k-fold always partitions the sample indices and keeps
    /// per-fold class counts within 1 of each other.
    #[test]
    fn stratified_kfold_partitions(
        labels in prop::collection::vec(0usize..4, 10..100),
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let folds = stratified_kfold(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        // Class balance within 1 across folds.
        for class in 0..4 {
            let counts: Vec<usize> = folds
                .iter()
                .map(|f| f.iter().filter(|&&i| labels[i] == class).count())
                .collect();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            prop_assert!(max - min <= 1, "class {} counts {:?}", class, counts);
        }
        // Complement really is the complement.
        let comp = fold_complement(&folds[0], labels.len());
        prop_assert_eq!(comp.len() + folds[0].len(), labels.len());
    }

    /// StandardScaler output always has ~zero mean and unit (or zero)
    /// variance per feature.
    #[test]
    fn scaler_normalizes(
        rows in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 3), 2..50),
    ) {
        let (_, t) = StandardScaler::fit_transform(&rows);
        for j in 0..3 {
            let n = t.len() as f64;
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / n;
            let var: f64 = t.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "mean {}", mean);
            prop_assert!(var < 1.0 + 1e-6, "var {}", var);
            // Variance is either ~1 (varying feature) or ~0 (constant).
            prop_assert!((var - 1.0).abs() < 1e-6 || var < 1e-9, "var {}", var);
        }
    }

    /// Appendix A closed forms agree with a Monte-Carlo simulation of the
    /// two-stage decision process.
    #[test]
    fn appendix_a_matches_monte_carlo(
        r_manual in 0.5f64..1.0,
        r_non_manual in 0.5f64..1.0,
        r_human in 0.5f64..1.0,
        r_non_human in 0.5f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = ErrorModel::new(r_manual, r_non_manual, r_human, r_non_human);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 60_000;
        // FN: attacker manual events with non-human evidence.
        let mut fn_count = 0u32;
        for _ in 0..n {
            let classified_manual = rng.gen_range(0.0..1.0) < r_manual;
            if !classified_manual {
                fn_count += 1; // misclassified -> allowed
            } else {
                let validated_human = rng.gen_range(0.0..1.0) >= r_non_human;
                if validated_human {
                    fn_count += 1; // mis-validated -> allowed
                }
            }
        }
        let mc_fn = fn_count as f64 / n as f64;
        prop_assert!((mc_fn - model.false_negative()).abs() < 0.02,
            "MC {} vs analytic {}", mc_fn, model.false_negative());

        // FP-M: legit manual events with human evidence.
        let mut fpm = 0u32;
        for _ in 0..n {
            let classified_manual = rng.gen_range(0.0..1.0) < r_manual;
            if classified_manual {
                let validated_human = rng.gen_range(0.0..1.0) < r_human;
                if !validated_human {
                    fpm += 1;
                }
            }
        }
        let mc_fpm = fpm as f64 / n as f64;
        prop_assert!((mc_fpm - model.fp_manual()).abs() < 0.02,
            "MC {} vs analytic {}", mc_fpm, model.fp_manual());
    }

    /// SimTime arithmetic: associativity-ish and saturating subtraction.
    #[test]
    fn simtime_arithmetic(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let t = SimTime::from_micros(a);
        let d1 = SimDuration::from_micros(b);
        let d2 = SimDuration::from_micros(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        prop_assert_eq!((t + d1) - t, d1);
        // Saturation: subtracting a later time yields zero.
        prop_assert_eq!(t - (t + d1 + SimDuration::from_micros(1)), SimDuration::ZERO);
    }

    /// The decision pipeline never panics and its stats exactly
    /// partition the packets fed to it, even when timestamps arrive out
    /// of order, duplicated, or straddling the bootstrap boundary
    /// (SimTime subtraction saturates rather than underflowing).
    #[test]
    fn proxy_stats_partition_under_timestamp_chaos(
        pkts in prop::collection::vec(
            (0u64..2_000_000_000, 40u16..1400, 0u16..4, 30_000u16..30_004),
            1..120),
    ) {
        let mut proxy = fuzz_proxy();
        let mut allowed = 0u64;
        let mut dropped = 0u64;
        for &(ts, size, dev, port) in &pkts {
            let mut p = pkt(ts, size, port);
            p.device = dev;
            if proxy.on_packet(&p).is_allow() {
                allowed += 1;
            } else {
                dropped += 1;
            }
        }
        let s = proxy.stats();
        prop_assert_eq!(s.total(), pkts.len() as u64);
        prop_assert_eq!(s.dropped(), dropped);
        prop_assert_eq!(s.total() - s.dropped(), allowed);
        prop_assert!((0.0..=1.0).contains(&s.rule_fraction()));
    }
}

/// Seeded-rng fuzz of the same pipeline invariants as
/// `proxy_stats_partition_under_timestamp_chaos`, with longer runs that
/// repeatedly cross the bootstrap/rule-learning boundary. Runs in
/// environments where the proptest cases cannot.
#[test]
fn proxy_fuzz_seeded_timestamp_chaos() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut proxy = fuzz_proxy();
        let mut allowed = 0u64;
        let mut dropped = 0u64;
        let n = 4_000u64;
        let mut last = 0u64;
        for i in 0..n {
            // Mostly advancing, sometimes jumping backwards in time or
            // repeating the previous timestamp exactly.
            last = match i % 7 {
                0 => last.saturating_sub(rng.gen_range(0..5_000_000)),
                1 => last,
                _ => last + rng.gen_range(0..2_000_000),
            };
            let mut p = pkt(last, rng.gen_range(40..1400), 30_000 + rng.gen_range(0..4));
            p.device = rng.gen_range(0..4);
            if proxy.on_packet(&p).is_allow() {
                allowed += 1;
            } else {
                dropped += 1;
            }
        }
        let s = proxy.stats();
        assert_eq!(s.total(), n, "seed {seed}");
        assert_eq!(s.dropped(), dropped, "seed {seed}");
        assert_eq!(s.total() - s.dropped(), allowed, "seed {seed}");
    }
}

/// Sharding the fleet never changes the answer: merged stats, packet
/// counts, and the rendered metric exposition are identical for every
/// worker-thread count.
#[test]
fn fleet_sharding_is_deterministic() {
    let workloads = build_workloads(3, 0.05, 7);
    let reference = run_sequential(&workloads);
    assert!(reference.packets > 0);
    for shards in 1..=4 {
        let fleet = run_sharded(&workloads, shards);
        assert_eq!(fleet.stats, reference.stats, "{shards} shards");
        assert_eq!(fleet.packets, reference.packets, "{shards} shards");
        assert_eq!(
            fleet.registry.render_prometheus(),
            reference.registry.render_prometheus(),
            "{shards} shards"
        );
    }
}
