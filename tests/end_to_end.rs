//! Cross-crate integration: capture generation → predictability analysis
//! → classifier training → live proxy enforcement → audit.

use fiat::core::classifier::event_dataset;
use fiat::core::FiatProxy;
use fiat::prelude::*;

const CEREMONY: [u8; 32] = [0x10; 32];

fn trained_proxy(train_seed: u64, validator: HumannessValidator) -> (FiatProxy, TestbedTrace) {
    let train = TestbedTrace::generate(TestbedConfig {
        days: 2.0,
        seed: train_seed,
        manual_per_day: 6.0,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&train.trace.packets, &train.trace.dns);
    let events = group_events(&train.trace.packets, &flags, EVENT_GAP);
    let mut proxy = FiatProxy::new(ProxyConfig::default(), &CEREMONY, validator);
    for (i, dev) in train.devices.iter().enumerate() {
        let clf = match dev.simple_rule_size {
            Some(size) => EventClassifier::simple_rule(size),
            None => {
                let evs: Vec<_> = events
                    .iter()
                    .filter(|e| e.device == i as u16)
                    .cloned()
                    .collect();
                EventClassifier::train_bernoulli(&event_dataset(&evs, &train.trace.packets))
            }
        };
        proxy.register_device(i as u16, clf, dev.min_packets_to_complete);
    }
    (proxy, train)
}

#[test]
fn full_day_enforcement_allows_control_traffic() {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let (mut proxy, _) = trained_proxy(1, validator);
    let day = TestbedTrace::generate(TestbedConfig {
        days: 0.5,
        seed: 2,
        ..Default::default()
    });
    proxy.set_dns(day.trace.dns.clone());
    proxy.start(SimTime::ZERO);

    let mut control_total = 0u64;
    let mut control_dropped = 0u64;
    for p in &day.trace.packets {
        let d = proxy.on_packet(p);
        if p.label == TrafficClass::Control {
            control_total += 1;
            if !d.is_allow() {
                control_dropped += 1;
            }
        }
    }
    let drop_rate = control_dropped as f64 / control_total as f64;
    assert!(
        drop_rate < 0.01,
        "control traffic drop rate {drop_rate:.4} ({control_dropped}/{control_total})"
    );
    assert!(proxy.rule_count() > 10, "rules: {}", proxy.rule_count());
    assert!(proxy.audit().verify());
}

#[test]
fn attacks_without_evidence_are_blocked() {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let (mut proxy, _) = trained_proxy(3, validator);
    let day = TestbedTrace::generate(TestbedConfig {
        days: 0.5,
        seed: 4,
        confusion_scale: 0.15,
        ..Default::default()
    });
    proxy.set_dns(day.trace.dns.clone());
    proxy.start(SimTime::ZERO);

    let bootstrap_end = SimTime::ZERO + SimDuration::from_mins(20);
    let mut manual_events = 0u64;
    let mut manual_blocked = 0u64;
    let mut blocked_spans: Vec<(u16, SimTime)> = Vec::new();
    for p in &day.trace.packets {
        let d = proxy.on_packet(p);
        if !d.is_allow() {
            blocked_spans.push((p.device, p.ts));
        }
    }
    for gt in &day.events {
        if gt.class != TrafficClass::Manual || gt.start < bootstrap_end {
            continue;
        }
        manual_events += 1;
        let hit = blocked_spans.iter().any(|(dev, ts)| {
            *dev == gt.device && *ts >= gt.start && *ts <= gt.start + SimDuration::from_secs(25)
        });
        if hit {
            manual_blocked += 1;
        }
    }
    assert!(
        manual_events >= 5,
        "not enough manual events: {manual_events}"
    );
    let block_rate = manual_blocked as f64 / manual_events as f64;
    assert!(
        block_rate > 0.85,
        "only {manual_blocked}/{manual_events} unauthorized manual events blocked"
    );
}

#[test]
fn portless_beats_classic_on_the_testbed() {
    let capture = TestbedTrace::generate(TestbedConfig {
        days: 0.5,
        seed: 5,
        ..Default::default()
    });
    let frac = |def: FlowDef| {
        let flags =
            PredictabilityEngine::new(def).analyze(&capture.trace.packets, &capture.trace.dns);
        flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64
    };
    let portless = frac(FlowDef::PortLess);
    let classic = frac(FlowDef::Classic);
    assert!(
        portless > classic,
        "PortLess {portless:.3} <= Classic {classic:.3}"
    );
    assert!(portless > 0.8, "PortLess fraction {portless:.3}");
}

#[test]
fn trained_humanness_validator_works_end_to_end() {
    // The fully-trained (not calibrated) validator in the real pipeline.
    let (validator, report) = HumannessValidator::train(60, 9);
    assert!(report.recall_human > 0.9);
    let (mut proxy, _) = trained_proxy(6, validator);
    proxy.start(SimTime::ZERO);

    let mut app = FiatApp::new(&CEREMONY, 1);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();

    let t = SimTime::ZERO + SimDuration::from_mins(25);
    // Real human motion: verified.
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 700, 100);
    let z = app
        .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t.as_micros())
        .unwrap();
    assert!(proxy.on_auth_zero_rtt(&z, t).unwrap());

    // Synthetic sway injected by an attacker: rejected.
    let sway = ImuTrace::synthesize(MotionKind::SyntheticSway, 700, 101);
    let z = app
        .authorize_zero_rtt("app", &sway, MotionKind::SyntheticSway, t.as_micros() + 1)
        .unwrap();
    assert!(!proxy
        .on_auth_zero_rtt(&z, t + SimDuration::from_secs(40))
        .unwrap());
}

#[test]
fn deterministic_end_to_end() {
    // The same seeds must produce bit-identical audit trails.
    let run = || {
        let validator = HumannessValidator::with_operating_point(0.9, 0.9, 7);
        let (mut proxy, _) = trained_proxy(8, validator);
        let day = TestbedTrace::generate(TestbedConfig {
            days: 0.25,
            seed: 9,
            ..Default::default()
        });
        proxy.set_dns(day.trace.dns.clone());
        proxy.start(SimTime::ZERO);
        for p in &day.trace.packets {
            proxy.on_packet(p);
        }
        proxy.audit().head()
    };
    assert_eq!(run(), run());
}
