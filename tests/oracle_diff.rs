//! Workspace-level smoke of the differential decision oracle: the naive
//! reference in `fiat-oracle` and the real `FiatProxy` must agree on
//! chaos-mutated testbed traffic, and the oracle must actually be able
//! to tell them apart when they differ.

use fiat::core::ProxyConfig;
use fiat::net::SimDuration;
use fiat::oracle::{build_scenario, run_differential, run_scenario_with_real_config};

#[test]
fn differential_oracle_agrees_across_seeds() {
    for seed in [42u64, 7, 1234] {
        let report = run_differential(seed, true, 800);
        assert!(report.packets >= 800);
        assert!(
            report.passed(),
            "seed {seed} diverged: {:?}",
            report.divergences
        );
    }
}

#[test]
fn oracle_is_sensitive_to_decision_path_drift() {
    // The oracle is only worth its CI minutes if it actually trips when
    // the real proxy's semantics move. Shrink the event gap and widen
    // the humanness window: both must be flagged.
    let (sc, _) = build_scenario(42, true);
    for drifted in [
        ProxyConfig {
            event_gap: SimDuration::from_secs(2),
            ..sc.config.clone()
        },
        ProxyConfig {
            human_valid_window: SimDuration::from_secs(300),
            ..sc.config.clone()
        },
    ] {
        assert!(
            run_scenario_with_real_config(&sc, &drifted).is_some(),
            "oracle missed a config drift: {drifted:?}"
        );
    }
}
