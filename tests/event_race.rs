//! Event-driven staging of the Table 7 race on the discrete-event
//! scheduler: for each user interaction, two events enter the queue —
//! the 0-RTT humanness evidence (phone → proxy) and the IoT command
//! (phone → cloud → proxy) — and the proxy decides the command whenever
//! it actually arrives. Exercises `Scheduler`, `HomeNetwork`, the QUIC
//! channel, and the access-control pipeline together.

use fiat::core::client::{ML_VALIDATION, ZERO_RTT_PROC};
use fiat::core::{FiatProxy, ProxyConfig};
use fiat::net::{Direction, TcpFlags, TlsVersion, Transport};
use fiat::prelude::*;
use fiat::quic::ZeroRttPacket;
use fiat::simnet::Scheduler;
use std::net::Ipv4Addr;

const CEREMONY: [u8; 32] = [0x61; 32];
const PLUG: u16 = 3;

enum Event {
    /// Evidence packet reaches the proxy.
    Evidence(Box<ZeroRttPacket>),
    /// The IoT command's first packet reaches the proxy.
    Command,
}

fn plug_command(ts: SimTime) -> PacketRecord {
    PacketRecord {
        ts,
        device: PLUG,
        direction: Direction::ToDevice,
        local_ip: Ipv4Addr::new(192, 168, 1, 13),
        remote_ip: Ipv4Addr::new(34, 0, 190, 0),
        local_port: 50_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::psh_ack(),
        tls: TlsVersion::Tls12,
        size: 235,
        label: TrafficClass::Manual,
    }
}

fn run_scenario(loc: PhoneLocation, interactions: usize) -> (usize, usize) {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(ProxyConfig::default(), &CEREMONY, validator);
    proxy.register_device(PLUG, EventClassifier::simple_rule(235), 1);
    proxy.start(SimTime::ZERO);

    let mut app = FiatApp::new(&CEREMONY, 9);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();

    let mut net = HomeNetwork::new(17);
    let mut sched: Scheduler<Event> = Scheduler::new();

    // Interactions spaced a minute apart, starting after bootstrap.
    let bootstrap_end = SimTime::ZERO + SimDuration::from_mins(20);
    for k in 0..interactions {
        let tap = bootstrap_end + SimDuration::from_secs(60 * (k as u64 + 1));
        // The app's client-side critical path, then one flight to the
        // proxy, then 0-RTT processing and inference.
        let comp = app.sample_latency();
        let evidence_arrival =
            tap + comp.critical_path() + net.phone_to_proxy(loc) + ZERO_RTT_PROC + ML_VALIDATION;
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 400 + k as u64);
        let z = app
            .authorize_zero_rtt("plug.app", &imu, MotionKind::HumanTouch, tap.as_micros())
            .unwrap();
        sched.schedule(evidence_arrival, Event::Evidence(Box::new(z)));
        // The command goes phone → vendor cloud → device push.
        let command_arrival = tap + net.command_first_packet(loc);
        sched.schedule(command_arrival, Event::Command);
    }

    let mut allowed = 0usize;
    let mut total = 0usize;
    sched.run(|_, now, event| match event {
        Event::Evidence(z) => {
            proxy.on_auth_zero_rtt(&z, now).expect("evidence accepted");
        }
        Event::Command => {
            total += 1;
            if proxy.on_packet(&plug_command(now)).is_allow() {
                allowed += 1;
            }
        }
    });
    (allowed, total)
}

#[test]
fn evidence_always_wins_the_race_on_lan() {
    let (allowed, total) = run_scenario(PhoneLocation::Lan, 20);
    assert_eq!(total, 20);
    assert_eq!(allowed, 20, "every LAN command should be pre-authorized");
}

#[test]
fn evidence_always_wins_the_race_on_mobile() {
    let (allowed, total) = run_scenario(PhoneLocation::Mobile, 20);
    assert_eq!(total, 20);
    assert_eq!(allowed, 20, "every mobile command should be pre-authorized");
}

#[test]
fn without_evidence_the_same_commands_drop() {
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(
        ProxyConfig {
            lockout_threshold: u32::MAX,
            ..ProxyConfig::default()
        },
        &CEREMONY,
        validator,
    );
    proxy.register_device(PLUG, EventClassifier::simple_rule(235), 1);
    proxy.start(SimTime::ZERO);
    let mut net = HomeNetwork::new(17);
    let mut sched: Scheduler<Event> = Scheduler::new();
    let bootstrap_end = SimTime::ZERO + SimDuration::from_mins(20);
    for k in 0..10 {
        let tap = bootstrap_end + SimDuration::from_secs(60 * (k + 1));
        sched.schedule(
            tap + net.command_first_packet(PhoneLocation::Lan),
            Event::Command,
        );
    }
    let mut dropped = 0;
    sched.run(|_, now, event| {
        if let Event::Command = event {
            if !proxy.on_packet(&plug_command(now)).is_allow() {
                dropped += 1;
            }
        }
    });
    assert_eq!(dropped, 10);
}
