#!/usr/bin/env bash
# Mirror the repo into an offline build sandbox (path-stubbed external
# deps under /tmp/stubs) and run the tier-1 gate there. Usage:
#   scripts/verify.sh [extra cargo test args]
set -euo pipefail

SANDBOX=${SANDBOX:-/tmp/fiat-check}
STUBS=${STUBS:-/tmp/stubs}

# Mirror the tree (no rsync in the image): delete everything except the
# warm target dir, then copy afresh.
mkdir -p "$SANDBOX"
find "$SANDBOX" -mindepth 1 -maxdepth 1 ! -name target -exec rm -rf {} +
(cd /root/repo && tar cf - --exclude=.git --exclude=target .) | tar xf - -C "$SANDBOX"

# Point the workspace's external deps at the offline stubs.
python3 - "$SANDBOX/Cargo.toml" "$STUBS" <<'EOF'
import re, sys
path, stubs = sys.argv[1], sys.argv[2]
text = open(path).read()
for name, extra in [
    ("rand", ""),
    ("proptest", ""),
    ("criterion", ""),
    ("parking_lot", ""),
    ("bytes", ""),
    ("serde", ', features = ["derive"]'),
    ("serde_json", ""),
]:
    text = re.sub(
        rf'^{name} = .*$',
        f'{name} = {{ path = "{stubs}/{name}"{extra} }}',
        text, count=1, flags=re.M)
open(path, "w").write(text)
EOF

cd "$SANDBOX"
cargo build --release --offline
cargo test -q --offline "$@"
