//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` API surface the
//! workspace's benches use, with a deliberately small measurement loop
//! (a few timed iterations, one summary line per benchmark) so that
//! `cargo bench` completes quickly. CI only compiles benches
//! (`--no-run`); the numbers here are indicative, not statistical.

use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const MEASURE_ITERS: u64 = 10;

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name.as_ref(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Recorded for interface compatibility; the stand-in reports plain
    /// per-iteration times only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<N, F>(&mut self, name: N, f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name.as_ref()), f);
        self
    }

    pub fn finish(self) {}
}

/// Declared throughput of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How per-iteration inputs are batched in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = MEASURE_ITERS;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut elapsed = 0u128;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed().as_nanos();
        }
        self.elapsed_ns = elapsed;
        self.iters = MEASURE_ITERS;
    }
}

fn run_benchmark<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        elapsed_ns: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let per_iter = b.elapsed_ns / b.iters as u128;
        println!("bench {name:<50} {per_iter:>12} ns/iter");
    } else {
        println!("bench {name:<50} (no measurement)");
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
