//! Offline stand-in for the `bytes` crate.
//!
//! `BytesMut` is a thin wrapper over `Vec<u8>` exposing the growable
//! buffer API this workspace uses (`BufMut` put methods, slice indexing
//! via `Deref`, `freeze`). No refcounted views — `Bytes` is an owned
//! boxed slice.

/// Growable byte buffer.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        Self(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0.into_boxed_slice())
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self(s.to_vec())
    }
}

/// Immutable byte container.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct Bytes(Box<[u8]>);

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side buffer methods (big-endian puts, as upstream `BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_are_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn index_and_freeze() {
        let mut b = BytesMut::new();
        b.put_slice(&[9, 8, 7]);
        b[0] = 1;
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 8, 7]);
    }
}
