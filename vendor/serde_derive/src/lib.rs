//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde`'s `Serialize`/`Deserialize` traits (a
//! tree-`Value` data model rather than upstream's visitor machinery) for
//! the shapes this workspace uses: named structs, tuple/newtype structs,
//! enums with unit/named/tuple variants, and the
//! `#[serde(from = "T", into = "T")]` container attribute. No generics.
//!
//! The parser walks raw `proc_macro` token trees (this crate cannot
//! depend on `syn`/`quote` offline) and the generated impls are emitted
//! as source strings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
    from: Option<String>,
    into: Option<String>,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated impl failed to parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from = None;
    let mut into = None;

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_serde_attr(g.stream(), &mut from, &mut into);
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive: expected type name, got {t:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Kind::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde_derive: expected enum body, got {t:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        kind,
        from,
        into,
    }
}

fn parse_serde_attr(attr: TokenStream, from: &mut Option<String>, into: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        if matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                let value = lit.to_string().trim_matches('"').to_string();
                match key.as_str() {
                    "from" => *from = Some(value),
                    "into" => *into = Some(value),
                    other => panic!("serde_derive (vendored): unsupported attribute `{other}`"),
                }
            }
            i += 3;
        } else {
            panic!("serde_derive (vendored): unsupported attribute `{key}`");
        }
        if matches!(args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes (doc comments arrive as `#[doc = ...]`).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 2; // name + ':'

        // Skip the type: everything up to a comma at angle-bracket depth 0
        // (commas inside parens/brackets are already hidden inside groups).
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut depth = 0i32;
    let mut segment_has_tokens = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
                continue;
            }
            _ => {}
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// --------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.into {
        format!(
            "let repr: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self)); \
             ::serde::Serialize::to_value(&repr)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => serialize_fields(fields, &FieldAccess::SelfDot),
            Kind::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|(variant, fields)| match fields {
                        Fields::Unit => format!(
                            "{name}::{variant} => \
                             ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                        ),
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let payload =
                                serialize_fields(fields, &FieldAccess::Bound);
                            format!(
                                "{name}::{variant} {{ {binds} }} => ::serde::Value::Obj(\
                                 ::std::vec![(::std::string::String::from(\"{variant}\"), {payload})]),"
                            )
                        }
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let payload = serialize_fields(fields, &FieldAccess::Bound);
                            format!(
                                "{name}::{variant}({}) => ::serde::Value::Obj(\
                                 ::std::vec![(::std::string::String::from(\"{variant}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                    })
                    .collect();
                format!("match self {{ {arms} }}")
            }
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

enum FieldAccess {
    SelfDot,
    Bound,
}

fn serialize_fields(fields: &Fields, access: &FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let entries: Vec<String> = fs
                .iter()
                .map(|f| {
                    let expr = match access {
                        FieldAccess::SelfDot => format!("&self.{f}"),
                        FieldAccess::Bound => f.clone(),
                    };
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({expr}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => match access {
            FieldAccess::SelfDot => "::serde::Serialize::to_value(&self.0)".to_string(),
            FieldAccess::Bound => "::serde::Serialize::to_value(__f0)".to_string(),
        },
        Fields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|k| match access {
                    FieldAccess::SelfDot => {
                        format!("::serde::Serialize::to_value(&self.{k})")
                    }
                    FieldAccess::Bound => format!("::serde::Serialize::to_value(__f{k})"),
                })
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", entries.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from) = &item.from {
        format!(
            "let repr: {from} = ::serde::Deserialize::from_value(v)?; \
             ::std::result::Result::Ok(::std::convert::From::from(repr))"
        )
    } else {
        match &item.kind {
            Kind::Struct(Fields::Named(fs)) => {
                let inits: Vec<String> = fs.iter().map(|f| named_field_init(name, f)).collect();
                format!(
                    "let obj = v.as_obj().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected object\"))?; \
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Kind::Struct(Fields::Tuple(1)) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Kind::Struct(Fields::Tuple(n)) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_value(arr.get({k}).ok_or_else(|| \
                             ::serde::Error::custom(\"{name}: missing tuple field {k}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let arr = v.as_arr().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}: expected array\"))?; \
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Kind::Struct(Fields::Unit) => {
                format!("::std::result::Result::Ok({name})")
            }
            Kind::Enum(variants) => gen_deserialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
}

fn named_field_init(type_name: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(::serde::Value::field(obj, \"{field}\")\
         .ok_or_else(|| ::serde::Error::custom(\"{type_name}: missing field {field}\"))?)?"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter(|(_, f)| !matches!(f, Fields::Unit))
        .map(|(variant, fields)| match fields {
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| named_field_init(&format!("{name}::{variant}"), f))
                    .collect();
                format!(
                    "\"{variant}\" => {{ let obj = payload.as_obj().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}::{variant}: expected object\"))?; \
                     ::std::result::Result::Ok({name}::{variant} {{ {} }}) }}",
                    inits.join(", ")
                )
            }
            Fields::Tuple(1) => format!(
                "\"{variant}\" => ::std::result::Result::Ok(\
                 {name}::{variant}(::serde::Deserialize::from_value(payload)?)),"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_value(arr.get({k}).ok_or_else(|| \
                             ::serde::Error::custom(\"{name}::{variant}: missing field {k}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "\"{variant}\" => {{ let arr = payload.as_arr().ok_or_else(|| \
                     ::serde::Error::custom(\"{name}::{variant}: expected array\"))?; \
                     ::std::result::Result::Ok({name}::{variant}({})) }}",
                    inits.join(", ")
                )
            }
            Fields::Unit => unreachable!(),
        })
        .collect();

    let mut arms = String::new();
    if !unit_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} _ => \
             ::std::result::Result::Err(::serde::Error::custom(\"{name}: unknown variant\")) }},"
        ));
    }
    if !payload_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Obj(entries) if entries.len() == 1 => {{ \
             let (tag, payload) = &entries[0]; match tag.as_str() {{ {payload_arms} _ => \
             ::std::result::Result::Err(::serde::Error::custom(\"{name}: unknown variant\")) }} }},"
        ));
    }
    format!(
        "match v {{ {arms} _ => ::std::result::Result::Err(\
         ::serde::Error::custom(\"{name}: expected enum representation\")) }}"
    )
}
