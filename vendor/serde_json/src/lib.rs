//! Offline stand-in for `serde_json`, built on the vendored `serde`'s
//! [`Value`] data model: `to_string`/`to_vec` render a `Value` tree as
//! JSON, `from_str` parses JSON back into a tree and lifts it via
//! `Deserialize`.

use serde::{Deserialize, Serialize, Value};

/// JSON error (serialization or parse).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?;
    from_str(s)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(Error::new("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new("bad number"))
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v: Vec<(u32, String)> = vec![(1, "a\"b\\c".into()), (2, "x\ny".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_and_float_numbers() {
        let json = "[-3, 2.5, 10]";
        let back: Vec<f64> = from_str(json).unwrap();
        assert_eq!(back, vec![-3.0, 2.5, 10.0]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let json = "{\"b\": 1, \"a\": 2}";
        let v: Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
    }
}
