//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Admissible lengths for a generated collection.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// `Vec` strategy: a length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..self.size.max_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
