//! Fixed-size array strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;

pub struct ArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

/// `[T; 32]` with every element from `element`.
pub fn uniform32<S: Strategy>(element: S) -> ArrayStrategy<S, 32> {
    ArrayStrategy { element }
}

/// `[T; 12]` with every element from `element`.
pub fn uniform12<S: Strategy>(element: S) -> ArrayStrategy<S, 12> {
    ArrayStrategy { element }
}
