//! Test execution: run a case closure a configured number of times with
//! a deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hash::{Hash, Hasher};

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input is outside the property's domain (`prop_assume!`).
    Reject(String),
    /// The property is false for this input (`prop_assert!`).
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run `case` until `config.cases` successes; panic on the first failure.
/// The RNG seed is derived from the test name, so runs are deterministic.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish());
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(8) + 1024,
                    "proptest `{name}`: too many rejected inputs ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed}: {msg}");
            }
        }
    }
}
