//! Value-generation strategies.
//!
//! Unlike upstream proptest there is no shrinking: a strategy is just a
//! seeded sampler. Failing cases report the case number; re-running with
//! the same binary reproduces them (seeds are derived from the test
//! name).

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

// Integer and float ranges sample uniformly via the vendored rand.
macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

// String strategies from a pattern literal. Only the tiny regex subset
// the workspace uses is supported: a char class `[a-z...]` (ranges and
// literal chars) followed by an optional `{n}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = Vec::new();
    let class: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        match counts.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        }
    };
    Some((chars, min, max))
}
