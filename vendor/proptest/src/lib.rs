//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! seeded random-sampling framework: `Strategy` combinators, collection
//! and array strategies, `any::<T>()`, and the `proptest!` family of
//! macros. There is no shrinking — a failing case panics with the case
//! number, and the per-test seed (derived from the test name) makes
//! every run reproducible.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` — uniform sampling over a type's whole domain.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    pub struct Any<T>(PhantomData<T>);

    impl<T: rand::Standard0> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen::<T>()
        }
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: rand::Standard0>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |__rng| {
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::strategy::Strategy::sample(&($strat), __rng);
                )+
                let __case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a property inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Assert two expressions are not equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Discard the current case when the input falls outside the property's
/// domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn arrays_and_oneof(
            key in prop::array::uniform32(any::<u8>()),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert_eq!(key.len(), 32);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn map_and_flat_map(
            v in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(7u8), n)),
            doubled in (0u16..100).prop_map(|x| x * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&b| b == 7));
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn string_pattern(label in "[ -~]{0,24}") {
            prop_assert!(label.len() <= 24);
            prop_assert!(label.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments on cases must parse.
        #[test]
        fn config_applies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..1000, 5..20);
        let a: Vec<Vec<u32>> = (0..10)
            .map(|_| s.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        let b: Vec<Vec<u32>> = (0..10)
            .map(|_| s.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        assert_eq!(a, b);
    }
}
