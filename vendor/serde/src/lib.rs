//! Offline stand-in for the `serde` crate.
//!
//! Upstream serde's visitor-based serializer machinery is replaced with a
//! simple tree data model: `Serialize` lowers a value into a [`Value`],
//! `Deserialize` lifts it back. The vendored `serde_json` renders and
//! parses `Value` trees, and the vendored `serde_derive` generates the
//! trait impls, so `#[derive(Serialize, Deserialize)]` + `serde_json`
//! round-trips work exactly as the workspace expects.

pub use serde_derive::{Deserialize, Serialize};

use std::net::Ipv4Addr;

/// The serialization data model: what any self-describing format
/// (JSON in this workspace) can represent.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in an object's entry list.
    pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift a value back out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => {
                        i64::try_from(*n).map_err(|_| Error::custom("integer out of range"))?
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($ty)))),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(concat!(stringify!($ty), " out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::custom("expected IPv4 string"))?
            .parse()
            .map_err(|_| Error::custom("invalid IPv4 address"))
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($(
                    $name::from_value(
                        arr.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let ip = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(Ipv4Addr::from_value(&ip.to_value()).unwrap(), ip);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, String::from("a")), (2, String::from("b"))];
        let back: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn range_errors_reported() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(String::from_value(&Value::U64(1)).is_err());
    }
}
