//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronization primitives behind `parking_lot`'s
//! poison-free API: `lock()` returns the guard directly, and a lock held
//! by a panicking thread is recovered instead of poisoning the mutex.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Mutual exclusion primitive (poison-free `lock()`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader–writer lock (poison-free `read()`/`write()`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
