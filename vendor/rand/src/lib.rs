//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This workspace builds in environments with no crates.io access, so the
//! external RNG dependency is replaced by this vendored implementation.
//! It is written to be *stream-compatible* with `rand` 0.8 + `rand_chacha`
//! for every method the workspace uses: `StdRng` is ChaCha12 with the
//! `rand_core` block-buffer semantics, `seed_from_u64` uses the same PCG32
//! seed expansion, and `gen_range` / `gen_bool` / `shuffle` reproduce the
//! exact sampling algorithms (widening-multiply rejection, 64-bit
//! Bernoulli, Fisher–Yates over 32-bit indices). Seeded experiments and
//! tolerance-tuned statistical tests therefore see the same streams they
//! were written against.

pub mod rngs;
pub mod seq;

mod chacha;

/// Core RNG interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with the same PCG32-based scheme
    /// as `rand_core` so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard0: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard0 for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard0 for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard0 for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard0 for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard0 for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard0 for i8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard0 for i16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard0 for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard0 for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard0 for isize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Standard0 for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() < (1 << 31)
    }
}
impl Standard0 for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1), as real rand's Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard0 for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable between two bounds (rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Sample from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`]. A single generic impl per
/// range shape (as in real rand) so the element type unifies during
/// inference instead of requiring per-type trait selection.
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_single_inclusive(start, end, rng)
    }
}

// 128-bit (or 64-bit) widening multiply, as rand's `wmul`.
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let p = (a as u128) * (b as u128);
    ((p >> 64) as u64, p as u64)
}

#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let p = (a as u64) * (b as u64);
    ((p >> 32) as u32, p as u32)
}

// Zone selection matches rand 0.8's `UniformInt::sample_single`: the
// modulo form for 8/16-bit types, the leading-zeros approximation for
// wider ones. The distinction matters for stream compatibility.
macro_rules! int_range_impl {
    ($ty:ty, $uty:ty, $lty:ty, $wmul:ident, $next:ident, $zone:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $uty as $lty;
                let zone = $zone(range);
                loop {
                    let (hi, lo) = $wmul(rng.$next(), range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let range = (high.wrapping_sub(low) as $uty as $lty).wrapping_add(1);
                if range == 0 {
                    // Range spans the whole type: draw directly.
                    return <$ty as Standard0>::draw(rng);
                }
                let zone = $zone(range);
                loop {
                    let (hi, lo) = $wmul(rng.$next(), range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

#[inline]
fn zone_mod32(range: u32) -> u32 {
    u32::MAX - ((u32::MAX - range + 1) % range)
}

#[inline]
fn zone_lz32(range: u32) -> u32 {
    (range << range.leading_zeros()).wrapping_sub(1)
}

#[inline]
fn zone_lz64(range: u64) -> u64 {
    (range << range.leading_zeros()).wrapping_sub(1)
}

int_range_impl!(u8, u8, u32, wmul32, next_u32, zone_mod32);
int_range_impl!(u16, u16, u32, wmul32, next_u32, zone_mod32);
int_range_impl!(u32, u32, u32, wmul32, next_u32, zone_lz32);
int_range_impl!(i8, u8, u32, wmul32, next_u32, zone_mod32);
int_range_impl!(i16, u16, u32, wmul32, next_u32, zone_mod32);
int_range_impl!(i32, u32, u32, wmul32, next_u32, zone_lz32);
int_range_impl!(u64, u64, u64, wmul64, next_u64, zone_lz64);
int_range_impl!(i64, u64, u64, wmul64, next_u64, zone_lz64);
int_range_impl!(usize, usize, u64, wmul64, next_u64, zone_lz64);
int_range_impl!(isize, usize, u64, wmul64, next_u64, zone_lz64);

impl SampleUniform for f64 {
    // rand 0.8 sample_single: value1_2 in [1, 2) from 52 bits, then
    // (value1_2 - 1) * scale + low, rejecting the rare res == high.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        loop {
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (low + (high - low) * u).clamp(low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let scale = high - low;
        loop {
            let fraction = rng.next_u32() >> 9;
            let value1_2 = f32::from_bits((127u32 << 23) | fraction);
            let res = (value1_2 - 1.0) * scale + low;
            if res < high {
                return res;
            }
        }
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32);
        (low + (high - low) * u).clamp(low, high)
    }
}

/// Destinations for [`Rng::fill`].
pub trait Fill {
    /// Fill `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing random-value methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over the whole domain of `T`.
    fn gen<T: Standard0>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (panics unless 0 ≤ p ≤ 1).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // rand 0.8 Bernoulli: p == 1.0 short-circuits without a draw.
        let p_int = if p == 1.0 {
            u64::MAX
        } else {
            (p * (2.0f64).powi(64)) as u64
        };
        if p_int == u64::MAX {
            return true;
        }
        self.next_u64() < p_int
    }

    /// Fill a byte buffer.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Common imports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    /// Pins the StdRng output stream so it can never drift between
    /// releases: seeded experiment results across the workspace depend
    /// on these exact values. The ChaCha core underneath is validated
    /// against the RFC 7539 ChaCha20 block-function test vector (see
    /// `chacha::tests`); the values here additionally pin the
    /// seed-expansion (rand_core PCG32) and block-buffer layout.
    #[test]
    fn stdrng_stream_is_stable() {
        let mut r = StdRng::seed_from_u64(42);
        assert_eq!(r.next_u64(), 9713269763989775522);
        assert_eq!(r.next_u64(), 10011513049433592189);
        assert_eq!(r.next_u64(), 11740708795755607249);
        let mut r = StdRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 13486662071293341567);
        assert_eq!(r.next_u64(), 14267822071968393595);
    }

    #[test]
    fn seed_from_u64_expansion_matches_rand_core() {
        // from_seed path must agree with seed_from_u64's PCG expansion.
        let a = StdRng::seed_from_u64(7);
        let mut b = a.clone();
        let mut a = a;
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_deterministic() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(0u16..4);
            assert!(i < 4);
        }
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<u32> = (0..50).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..50).map(|_| b.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_consumes_whole_words() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 32];
        a.fill(&mut buf);
        // 8 words consumed; next u32 must equal the 9th word of b.
        for _ in 0..8 {
            b.next_u32();
        }
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
