//! ChaCha12 block generation matching `rand_chacha` 0.3.
//!
//! The state layout is the IETF/djb one: 4 constant words, 8 key words,
//! a 64-bit block counter in words 12–13 and a zero stream id in words
//! 14–15. `rand_chacha` refills a wide buffer of four consecutive blocks
//! at a time, which [`generate`](ChaCha12Core::generate) reproduces so
//! the `BlockRng` indexing in [`crate::rngs::StdRng`] lands on the same
//! words as the real crate.

const BLOCK_WORDS: usize = 16;

/// Words produced per refill (four ChaCha blocks).
pub const BUFFER_WORDS: usize = 64;

#[derive(Clone)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
}

impl ChaCha12Core {
    pub fn new(seed: &[u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self { key, counter: 0 }
    }

    /// Produce four consecutive blocks into `out` and advance the counter.
    pub fn generate(&mut self, out: &mut [u32; BUFFER_WORDS]) {
        for b in 0..4u64 {
            let counter = self.counter.wrapping_add(b);
            let mut state = [0u32; BLOCK_WORDS];
            state[0] = 0x6170_7865; // "expa"
            state[1] = 0x3320_646e; // "nd 3"
            state[2] = 0x7962_2d32; // "2-by"
            state[3] = 0x6b20_6574; // "te k"
            state[4..12].copy_from_slice(&self.key);
            state[12] = counter as u32;
            state[13] = (counter >> 32) as u32;
            let mut w = state;
            for _ in 0..6 {
                // Column round.
                quarter(&mut w, 0, 4, 8, 12);
                quarter(&mut w, 1, 5, 9, 13);
                quarter(&mut w, 2, 6, 10, 14);
                quarter(&mut w, 3, 7, 11, 15);
                // Diagonal round.
                quarter(&mut w, 0, 5, 10, 15);
                quarter(&mut w, 1, 6, 11, 12);
                quarter(&mut w, 2, 7, 8, 13);
                quarter(&mut w, 3, 4, 9, 14);
            }
            let base = b as usize * BLOCK_WORDS;
            for i in 0..BLOCK_WORDS {
                out[base + i] = w[i].wrapping_add(state[i]);
            }
        }
        self.counter = self.counter.wrapping_add(4);
    }
}

#[inline(always)]
fn quarter(w: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(16);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(12);
    w[a] = w[a].wrapping_add(w[b]);
    w[d] = (w[d] ^ w[a]).rotate_left(8);
    w[c] = w[c].wrapping_add(w[d]);
    w[b] = (w[b] ^ w[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 ChaCha20 block-function test vector, driven through
    /// this module's quarter-round and state construction (ten double
    /// rounds and the RFC's counter/nonce layout instead of ChaCha12's
    /// six and zero nonce). Validates the round function, constants, and
    /// little-endian key schedule against the published keystream.
    #[test]
    fn quarter_round_matches_rfc7539_block() {
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        let key: Vec<u8> = (0u8..32).collect();
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        state[12] = 1; // block counter
        state[13] = 0x0900_0000; // nonce 00 00 00 09 ...
        state[14] = 0x4a00_0000; // ... 00 00 00 4a ...
        state[15] = 0; // ... 00 00 00 00
        let mut w = state;
        for _ in 0..10 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for i in 0..BLOCK_WORDS {
            w[i] = w[i].wrapping_add(state[i]);
        }
        let expected: [u32; BLOCK_WORDS] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(w, expected);
    }

    /// `generate` must emit four consecutive blocks per refill and
    /// advance the counter by four, so `StdRng`'s buffer indexing lands
    /// on a contiguous keystream.
    #[test]
    fn generate_produces_consecutive_blocks() {
        let seed = [7u8; 32];
        let mut wide = ChaCha12Core::new(&seed);
        let mut buf = [0u32; BUFFER_WORDS];
        wide.generate(&mut buf);
        assert_eq!(wide.counter, 4);

        // A core advanced one block at a time must see the same stream.
        for b in 0..4u64 {
            let mut single = ChaCha12Core::new(&seed);
            single.counter = b;
            let mut one = [0u32; BUFFER_WORDS];
            single.generate(&mut one);
            assert_eq!(
                &one[..BLOCK_WORDS],
                &buf[b as usize * BLOCK_WORDS..][..BLOCK_WORDS]
            );
        }
    }
}
