//! Slice helpers (the `rand::seq::SliceRandom` subset used here).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle, stream-compatible with `rand` 0.8
    /// (descending index, 32-bit draws for small bounds).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound as u64) as usize
    }
}
