//! RNG types. `StdRng` is ChaCha12 behind `rand_core`'s `BlockRng`
//! buffering semantics, so word consumption (and therefore every seeded
//! stream) matches `rand` 0.8.

use crate::chacha::{ChaCha12Core, BUFFER_WORDS};
use crate::{RngCore, SeedableRng};

/// The standard seeded RNG (ChaCha12, as `rand` 0.8's `StdRng`).
#[derive(Clone)]
pub struct StdRng {
    core: ChaCha12Core,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StdRng").finish_non_exhaustive()
    }
}

impl StdRng {
    fn generate_and_set(&mut self, index: usize) {
        self.core.generate(&mut self.results);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self {
            core: ChaCha12Core::new(&seed),
            results: [0; BUFFER_WORDS],
            // Empty buffer: first use triggers a refill, as BlockRng.
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // BlockRng::next_u64: pair of words little-end first, with the
        // straddle case keeping the last word of the old buffer as the
        // low half.
        let read = |results: &[u32; BUFFER_WORDS], i: usize| {
            (results[i + 1] as u64) << 32 | results[i] as u64
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.generate_and_set(2);
            read(&self.results, 0)
        } else {
            let low = self.results[BUFFER_WORDS - 1] as u64;
            self.generate_and_set(1);
            low | (self.results[0] as u64) << 32
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0;
        while written < dest.len() {
            if self.index >= BUFFER_WORDS {
                self.generate_and_set(0);
            }
            // fill_via_u32_chunks: whole words are consumed even when
            // only part of the final word is used.
            let src = &self.results[self.index..];
            let out = &mut dest[written..];
            let byte_len = (src.len() * 4).min(out.len());
            let words = byte_len.div_ceil(4);
            for (i, chunk) in out[..byte_len].chunks_mut(4).enumerate() {
                chunk.copy_from_slice(&src[i].to_le_bytes()[..chunk.len()]);
            }
            self.index += words;
            written += byte_len;
        }
    }
}
