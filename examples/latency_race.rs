//! The authentication race (§6, Table 7): FIAT's humanness proof must
//! reach the proxy before the IoT command does. This example stages the
//! race on the discrete-event home network for LAN and mobile scenarios
//! and prints per-scenario win margins.
//!
//! Run: `cargo run --release --example latency_race`

use fiat::core::client::{LatencyBreakdown, ML_VALIDATION, ZERO_RTT_PROC};
use fiat::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let reps = 1000;
    for loc in [PhoneLocation::Lan, PhoneLocation::Mobile] {
        let mut net = HomeNetwork::new(11);
        let mut rng = StdRng::seed_from_u64(3);
        let mut wins = 0u32;
        let mut total_margin_ms = 0.0;
        let mut worst_margin_ms = f64::INFINITY;
        for _ in 0..reps {
            let comp = LatencyBreakdown::sample(&mut rng);
            let auth =
                comp.critical_path() + net.phone_to_proxy(loc) + ZERO_RTT_PROC + ML_VALIDATION;
            let command = net.command_first_packet(loc);
            let margin = command.as_millis_f64() - auth.as_millis_f64();
            if margin > 0.0 {
                wins += 1;
            }
            total_margin_ms += margin;
            worst_margin_ms = worst_margin_ms.min(margin);
        }
        println!(
            "{loc}: auth wins {wins}/{reps} races; mean margin {:.0} ms, worst {:.0} ms",
            total_margin_ms / reps as f64,
            worst_margin_ms
        );
    }

    // How much extra slack does the TCP retransmission model add?
    let tcp = fiat::simnet::tcp::TcpRetransmitModel::default();
    println!(
        "TCP absorbs up to {:.1} s of validation delay before the app-level deadline",
        tcp.max_tolerated_delay().as_secs_f64()
    );
}
