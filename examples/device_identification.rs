//! §7 "Road to Production": a new device joins the home; FIAT identifies
//! it passively from an hour of traffic and pulls the right classifier
//! from the model registry — no manual configuration.
//!
//! Run: `cargo run --release --example device_identification`

use fiat::core::classifier::event_dataset;
use fiat::core::identify::{DeviceIdentifier, ModelRegistry};
use fiat::prelude::*;

fn window(c: &TestbedTrace, device: u16, start_min: u64) -> Vec<PacketRecord> {
    let lo = SimTime::ZERO + SimDuration::from_mins(start_min);
    let hi = lo + SimDuration::from_mins(60);
    c.trace
        .packets
        .iter()
        .filter(|p| p.device == device && p.ts >= lo && p.ts < hi)
        .cloned()
        .collect()
}

fn main() {
    // The vendor-side lab: captures of known device types, used to train
    // both the identifier and the per-type event classifiers.
    let lab = TestbedTrace::generate(TestbedConfig {
        days: 3.0,
        seed: 31,
        manual_per_day: 6.0,
        ..Default::default()
    });
    let mut samples = Vec::new();
    for (i, dev) in lab.devices.iter().enumerate() {
        for start in [0u64, 60, 120] {
            samples.push((dev.name.clone(), window(&lab, i as u16, start)));
        }
    }
    let identifier = DeviceIdentifier::train(&samples, &lab.trace.dns);
    println!(
        "identifier knows {} device types",
        identifier.known_devices().len()
    );

    // Publish one classifier model per device type (version 1), with a
    // version-2 refresh for the plugs.
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&lab.trace.packets, &lab.trace.dns);
    let events = group_events(&lab.trace.packets, &flags, EVENT_GAP);
    let mut registry = ModelRegistry::new();
    for (i, dev) in lab.devices.iter().enumerate() {
        let model = match dev.simple_rule_size {
            Some(size) => EventClassifier::simple_rule(size),
            None => {
                let evs: Vec<_> = events
                    .iter()
                    .filter(|e| e.device == i as u16)
                    .cloned()
                    .collect();
                EventClassifier::train_bernoulli(&event_dataset(&evs, &lab.trace.packets))
            }
        };
        registry.publish(dev.name.clone(), 1, model);
    }
    registry.publish("SP10", 2, EventClassifier::simple_rule(235));
    println!("registry holds {} models", registry.len());

    // A different household, a year later: fresh captures, same device
    // types. Identify each and resolve its newest model.
    let home = TestbedTrace::generate(TestbedConfig {
        days: 1.0,
        seed: 77,
        ..Default::default()
    });
    println!("\n{:<10} {:<12} model", "actual", "identified");
    let mut correct = 0;
    for (i, dev) in home.devices.iter().enumerate() {
        let w = window(&home, i as u16, 0);
        match registry.resolve_for_capture(&identifier, &w, &home.trace.dns) {
            Some((name, version, _)) => {
                if name == dev.name {
                    correct += 1;
                }
                println!("{:<10} {:<12} v{version}", dev.name, name);
            }
            None => println!("{:<10} {:<12} -", dev.name, "?"),
        }
    }
    println!("\nidentified {correct}/10 devices correctly");
    println!(
        "(residual confusions are generation-level twins — Echo Dot 3 vs 4,\n\
         Home vs Home Mini — which even the Mon(IoT)r dataset does not\n\
         label apart; Appendix B of the paper notes the same.)"
    );
    assert!(correct >= 8, "identification accuracy too low");
}
