//! Quickstart: the whole FIAT loop in one file.
//!
//! 1. Generate a labeled home-IoT capture (10 testbed devices).
//! 2. Measure traffic predictability (the §2 heuristic).
//! 3. Train per-device event classifiers.
//! 4. Pair a phone app with the proxy and authorize a manual command
//!    with real humanness evidence over 0-RTT.
//!
//! Run: `cargo run --release --example quickstart`

use fiat::core::classifier::event_dataset;
use fiat::prelude::*;

fn main() {
    // --- 1. A day of home traffic -------------------------------------
    let capture = TestbedTrace::generate(TestbedConfig {
        days: 1.0,
        seed: 7,
        ..Default::default()
    });
    println!(
        "capture: {} packets from {} devices over {:.1} h",
        capture.trace.len(),
        capture.trace.devices().len(),
        capture.trace.duration().as_secs_f64() / 3600.0
    );

    // --- 2. Predictability --------------------------------------------
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let report = engine.report(&capture.trace.packets, &capture.trace.dns);
    println!("\nper-device control-traffic predictability (PortLess):");
    for (i, dev) in capture.devices.iter().enumerate() {
        println!(
            "  {:<10} {:>5.1}%",
            dev.name,
            report.fraction(i as u16, TrafficClass::Control) * 100.0
        );
    }

    // --- 3. Event classification --------------------------------------
    let events = group_events(&capture.trace.packets, &report.flags, EVENT_GAP);
    println!(
        "\n{} unpredictable events grouped (5 s gap rule)",
        events.len()
    );
    let dev0_events: Vec<_> = events.iter().filter(|e| e.device == 0).cloned().collect();
    let data = event_dataset(&dev0_events, &capture.trace.packets);
    let _classifier = EventClassifier::train_bernoulli(&data);
    println!(
        "trained BernoulliNB for {} on {} events / {} features",
        capture.devices[0].name,
        data.len(),
        data.n_features()
    );

    // --- 4. Frictionless authorization ---------------------------------
    let ceremony = [0x42u8; 32]; // the QR code scanned at install time
                                 // A deterministic validator keeps the demo reproducible.
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 1);
    let mut proxy = fiat::core::FiatProxy::new(ProxyConfig::default(), &ceremony, validator);
    proxy.set_dns(capture.trace.dns.clone());
    for (i, dev) in capture.devices.iter().enumerate() {
        let clf = match dev.simple_rule_size {
            Some(size) => EventClassifier::simple_rule(size),
            None => EventClassifier::train_bernoulli(&data),
        };
        proxy.register_device(i as u16, clf, dev.min_packets_to_complete);
    }
    proxy.start(SimTime::ZERO);

    // Bootstrap on the first 20 minutes of the capture.
    let bootstrap_end = SimTime::ZERO + SimDuration::from_mins(20);
    let mut fed = 0;
    for p in &capture.trace.packets {
        if p.ts >= bootstrap_end {
            break;
        }
        proxy.on_packet(p);
        fed += 1;
    }
    println!("\nbootstrap: fed {fed} packets");

    // The user opens the smart-plug app and taps "on": the FIAT app ships
    // signed IMU evidence, then the 235 B command arrives.
    let mut app = FiatApp::new(&ceremony, 9);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();

    let t = bootstrap_end + SimDuration::from_secs(60);
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
    let evidence = app
        .authorize_zero_rtt(
            "com.teckin.smartplug",
            &imu,
            MotionKind::HumanTouch,
            t.as_micros(),
        )
        .unwrap();
    let verified = proxy.on_auth_zero_rtt(&evidence, t).unwrap();
    println!("humanness evidence verified: {verified}");

    let mut command = capture.trace.packets[0].clone();
    command.device = 3; // SP10
    command.size = 235;
    command.ts = t + SimDuration::from_millis(400);
    let decision = proxy.on_packet(&command);
    println!("plug command decision: {decision:?}");
    assert!(decision.is_allow(), "human-backed command must pass");

    // The same command an hour later, with no human behind it: dropped.
    command.ts = t + SimDuration::from_mins(60);
    let decision = proxy.on_packet(&command);
    println!("attacker command decision: {decision:?}");
    assert!(!decision.is_allow(), "unverified manual command must drop");
    println!(
        "\naudit log: {} entries, chain valid: {}",
        proxy.audit().len(),
        proxy.audit().verify()
    );
}
