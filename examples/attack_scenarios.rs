//! Threat-model walkthrough (§5.1, §7): each attacker from the paper
//! tries to actuate a smart plug through the FIAT proxy.
//!
//! 1. Remote account compromise — command injected from the cloud with no
//!    phone interaction: **blocked** (manual event, no humanness).
//! 2. Spyware on the paired phone, phone resting on a table — evidence is
//!    real but shows no motion: **blocked**.
//! 3. LAN attacker replaying a captured 0-RTT evidence packet: **blocked**
//!    by the replay store.
//! 4. Unpaired device forging evidence: **blocked** by the channel keys.
//! 5. Brute force — repeated injections: **device locked out**.
//! 6. The paper's residual risk: spyware that piggybacks on a genuine
//!    user interaction **succeeds** (§7 "Potential Attack").
//!
//! Run: `cargo run --release --example attack_scenarios`

use fiat::core::FiatProxy;
use fiat::prelude::*;
use std::net::Ipv4Addr;

const PLUG: u16 = 3;

fn plug_command(t: SimTime) -> PacketRecord {
    PacketRecord {
        ts: t,
        device: PLUG,
        direction: Direction::ToDevice,
        local_ip: Ipv4Addr::new(192, 168, 1, 13),
        remote_ip: Ipv4Addr::new(34, 0, 190, 0),
        local_port: 50_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: fiat::net::TcpFlags::psh_ack(),
        tls: fiat::net::TlsVersion::Tls12,
        size: 235,
        label: TrafficClass::Manual,
    }
}

fn main() {
    let ceremony = [0x31u8; 32];
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(ProxyConfig::default(), &ceremony, validator);
    proxy.register_device(PLUG, EventClassifier::simple_rule(235), 1);
    proxy.start(SimTime::ZERO);

    // Skip bootstrap (nothing to learn for this demo).
    let t0 = SimTime::ZERO + SimDuration::from_mins(21);
    // Prime rule learning with an empty bootstrap.
    proxy.on_packet(&{
        let mut p = plug_command(t0);
        p.size = 60; // keepalive-sized, lands in the event path harmlessly
        p
    });

    let mut app = FiatApp::new(&ceremony, 0);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();

    println!("=== 1. Remote account compromise (no phone interaction) ===");
    let t = t0 + SimDuration::from_mins(1);
    let d = proxy.on_packet(&plug_command(t));
    println!("command verdict: {d:?}");
    assert!(!d.is_allow());

    println!("\n=== 2. Spyware with a resting phone ===");
    let t = t + SimDuration::from_mins(2);
    let imu = ImuTrace::synthesize(MotionKind::Resting, 500, 1);
    let z = app
        .authorize_zero_rtt("plug.app", &imu, MotionKind::Resting, t.as_micros())
        .unwrap();
    let human = proxy.on_auth_zero_rtt(&z, t).unwrap();
    println!("evidence verdict: human = {human}");
    let d = proxy.on_packet(&plug_command(t + SimDuration::from_millis(300)));
    println!("command verdict: {d:?}");
    assert!(!d.is_allow());

    println!("\n=== 3. LAN replay of captured evidence ===");
    let t = t + SimDuration::from_mins(3);
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 2);
    let z = app
        .authorize_zero_rtt("plug.app", &imu, MotionKind::HumanTouch, t.as_micros())
        .unwrap();
    assert!(proxy.on_auth_zero_rtt(&z, t).unwrap());
    let replay_at = t + SimDuration::from_mins(10);
    let replayed = proxy.on_auth_zero_rtt(&z, replay_at);
    println!("replayed evidence: {replayed:?}");
    assert!(replayed.is_err());

    println!("\n=== 4. Unpaired device forging evidence ===");
    let mut rogue = FiatApp::new(&[0x99u8; 32], 1);
    let hello = rogue.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    rogue.complete_handshake(&sh).unwrap();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
    let z = rogue
        .authorize_zero_rtt(
            "plug.app",
            &imu,
            MotionKind::HumanTouch,
            replay_at.as_micros(),
        )
        .unwrap();
    let forged = proxy.on_auth_zero_rtt(&z, replay_at + SimDuration::from_secs(1));
    println!("forged evidence: {forged:?}");
    assert!(forged.is_err());

    println!("\n=== 5. Brute force triggers lockout ===");
    let mut t = replay_at + SimDuration::from_mins(5);
    for _ in 0..3 {
        let d = proxy.on_packet(&plug_command(t));
        println!("injection verdict: {d:?}");
        t += SimDuration::from_secs(10);
    }
    println!("plug locked out: {}", proxy.is_locked(PLUG));
    assert!(proxy.is_locked(PLUG));
    proxy.clear_lockout(PLUG);
    println!("owner cleared the lockout");

    println!("\n=== 6. Residual risk: piggybacking on a real interaction ===");
    // The user genuinely opens the plug app (spyware observes this) and
    // the attacker fires a command inside the humanness window.
    let t = t + SimDuration::from_mins(5);
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 4);
    let z = app
        .authorize_zero_rtt("plug.app", &imu, MotionKind::HumanTouch, t.as_micros())
        .unwrap();
    proxy.on_auth_zero_rtt(&z, t).unwrap();
    let d = proxy.on_packet(&plug_command(t + SimDuration::from_secs(2)));
    println!("piggybacked command verdict: {d:?} (the paper's acknowledged limitation)");
    assert!(d.is_allow());

    println!(
        "\naudit trail: {} entries, tamper-evident chain valid: {}",
        proxy.audit().len(),
        proxy.audit().verify()
    );
}
