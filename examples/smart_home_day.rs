//! A full simulated day of a ten-device smart home behind the FIAT proxy.
//!
//! Trains per-device classifiers on an earlier capture, then replays a
//! fresh day: every ground-truth manual interaction is accompanied by
//! real signed sensor evidence; routines and control chatter run
//! unattended. Prints the per-device allow/drop ledger and the audit
//! trail summary.
//!
//! Run: `cargo run --release --example smart_home_day`

use fiat::core::classifier::event_dataset;
use fiat::prelude::*;
use std::collections::HashMap;

fn main() {
    let ceremony = [0x77u8; 32];

    // Train on three days of history.
    let train = TestbedTrace::generate(TestbedConfig {
        days: 3.0,
        seed: 21,
        manual_per_day: 6.0,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&train.trace.packets, &train.trace.dns);
    let events = group_events(&train.trace.packets, &flags, EVENT_GAP);

    let validator = HumannessValidator::with_operating_point(0.934, 0.982, 5);
    let mut proxy = fiat::core::FiatProxy::new(ProxyConfig::default(), &ceremony, validator);
    for (i, dev) in train.devices.iter().enumerate() {
        let clf = match dev.simple_rule_size {
            Some(size) => EventClassifier::simple_rule(size),
            None => {
                let evs: Vec<_> = events
                    .iter()
                    .filter(|e| e.device == i as u16)
                    .cloned()
                    .collect();
                EventClassifier::train_bernoulli(&event_dataset(&evs, &train.trace.packets))
            }
        };
        proxy.register_device(i as u16, clf, dev.min_packets_to_complete);
    }

    // The day to protect.
    let day = TestbedTrace::generate(TestbedConfig {
        days: 1.0,
        seed: 22,
        ..Default::default()
    });
    proxy.set_dns(day.trace.dns.clone());
    proxy.start(SimTime::ZERO);

    let mut app = FiatApp::new(&ceremony, 6);
    let hello = app.handshake_request();
    let sh = proxy.accept_handshake(&hello);
    app.complete_handshake(&sh).unwrap();

    // Evidence rides 300 ms ahead of each manual interaction.
    let mut evidence: Vec<SimTime> = day
        .events
        .iter()
        .filter(|e| e.class == TrafficClass::Manual)
        .map(|e| {
            e.start
                .checked_sub(SimDuration::from_millis(300))
                .unwrap_or(SimTime::ZERO)
        })
        .collect();
    evidence.sort();
    let mut next = 0usize;

    let mut allowed: HashMap<u16, u64> = HashMap::new();
    let mut dropped: HashMap<u16, u64> = HashMap::new();
    for (k, p) in day.trace.packets.iter().enumerate() {
        while next < evidence.len() && evidence[next] <= p.ts {
            let at = evidence[next];
            next += 1;
            let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 1000 + k as u64);
            let z = app
                .authorize_zero_rtt(
                    "iot.companion",
                    &imu,
                    MotionKind::HumanTouch,
                    at.as_micros(),
                )
                .unwrap();
            let _ = proxy.on_auth_zero_rtt(&z, at);
        }
        match proxy.on_packet(p) {
            ProxyDecision::Allow(_) => *allowed.entry(p.device).or_default() += 1,
            ProxyDecision::Drop(_) => *dropped.entry(p.device).or_default() += 1,
            // No proof_deadline configured, so nothing is ever quarantined.
            ProxyDecision::Quarantine => {}
        }
    }

    println!(
        "{:<10} {:>9} {:>9} {:>8}",
        "device", "allowed", "dropped", "drop %"
    );
    for (i, dev) in day.devices.iter().enumerate() {
        let a = allowed.get(&(i as u16)).copied().unwrap_or(0);
        let d = dropped.get(&(i as u16)).copied().unwrap_or(0);
        println!(
            "{:<10} {:>9} {:>9} {:>7.2}%",
            dev.name,
            a,
            d,
            100.0 * d as f64 / (a + d).max(1) as f64
        );
    }

    let audit = proxy.audit();
    let verified = audit
        .entries()
        .iter()
        .filter(|e| e.verdict == fiat::core::audit::AuditVerdict::AllowedManualVerified)
        .count();
    let dropped_ev = audit
        .entries()
        .iter()
        .filter(|e| e.verdict == fiat::core::audit::AuditVerdict::DroppedUnverified)
        .count();
    println!(
        "\naudit: {} events decided — {} manual verified, {} dropped unverified; chain valid: {}",
        audit.len(),
        verified,
        dropped_ev,
        audit.verify()
    );
    println!("learned rules: {}", proxy.rule_count());
    let stats = proxy.stats();
    println!(
        "proxy stats: {} packets, {:.1}% handled by rules alone, {} dropped",
        stats.total(),
        stats.rule_fraction() * 100.0,
        stats.dropped()
    );
}
