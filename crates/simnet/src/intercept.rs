//! NFQUEUE-style interception point (§5.4 "Traffic Intercept").
//!
//! The proxy ARP-spoofs the LAN so all IoT traffic flows through it; an
//! iptables NFQUEUE rule holds each forwarded packet until a userspace
//! verdict. [`InterceptQueue`] models exactly that: packets are enqueued
//! with their arrival time, a decision function issues
//! [`Verdict::Allow`]/[`Verdict::Drop`], and the queue tracks verdict
//! latency and drop accounting.

use fiat_net::{PacketRecord, SimDuration, SimTime};
use std::collections::VecDeque;

/// Decision for one held packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet into the home network.
    Allow,
    /// Drop the packet.
    Drop,
}

/// One packet awaiting or having received a verdict.
#[derive(Debug, Clone)]
pub struct HeldPacket {
    /// The packet.
    pub packet: PacketRecord,
    /// When it entered the queue.
    pub enqueued_at: SimTime,
}

/// Statistics kept by the interception point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterceptStats {
    /// Packets allowed.
    pub allowed: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Sum of verdict latencies (for mean computation).
    pub total_verdict_latency: SimDuration,
}

impl InterceptStats {
    /// Total packets decided.
    pub fn total(&self) -> u64 {
        self.allowed + self.dropped
    }

    /// Mean verdict latency.
    pub fn mean_verdict_latency(&self) -> SimDuration {
        let t = self.total();
        if t == 0 {
            SimDuration::ZERO
        } else {
            self.total_verdict_latency / t
        }
    }

    /// Fraction of packets dropped.
    pub fn drop_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.dropped as f64 / t as f64
        }
    }
}

/// A fault model sitting between the wire and the interception queue.
///
/// Given one arriving packet, an injector returns the packets that
/// actually reach the queue, each with its (possibly delayed) arrival
/// time: an empty vector models a drop, two copies a duplication, a
/// mutated record corruption. The identity injector returns
/// `vec![(now, pkt)]`, and the plain [`InterceptQueue::enqueue`] path
/// does not consult an injector at all — fault injection is strictly
/// opt-in and costs nothing when unused.
pub trait FaultInjector {
    /// Map one arriving packet to what the queue actually sees.
    fn inject(&mut self, pkt: PacketRecord, now: SimTime) -> Vec<(SimTime, PacketRecord)>;
}

/// FIFO interception queue.
#[derive(Debug, Default)]
pub struct InterceptQueue {
    held: VecDeque<HeldPacket>,
    stats: InterceptStats,
}

impl InterceptQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hold a packet arriving at `now`.
    pub fn enqueue(&mut self, packet: PacketRecord, now: SimTime) {
        self.held.push_back(HeldPacket {
            packet,
            enqueued_at: now,
        });
    }

    /// Hold whatever `injector` makes of a packet arriving at `now` —
    /// possibly nothing (dropped), several copies (duplicated), or a
    /// delayed/corrupted version. Returns how many packets entered the
    /// queue.
    pub fn enqueue_with(
        &mut self,
        injector: &mut dyn FaultInjector,
        packet: PacketRecord,
        now: SimTime,
    ) -> usize {
        let arrivals = injector.inject(packet, now);
        let n = arrivals.len();
        for (at, pkt) in arrivals {
            self.enqueue(pkt, at);
        }
        n
    }

    /// Number of packets awaiting a verdict.
    pub fn pending(&self) -> usize {
        self.held.len()
    }

    /// Decide the oldest held packet at time `now`. Returns the packet and
    /// the verdict applied, or `None` if nothing is pending.
    pub fn decide_next(
        &mut self,
        now: SimTime,
        mut decide: impl FnMut(&PacketRecord) -> Verdict,
    ) -> Option<(PacketRecord, Verdict)> {
        let held = self.held.pop_front()?;
        let verdict = decide(&held.packet);
        self.stats.total_verdict_latency += now.since(held.enqueued_at);
        match verdict {
            Verdict::Allow => self.stats.allowed += 1,
            Verdict::Drop => self.stats.dropped += 1,
        }
        Some((held.packet, verdict))
    }

    /// Decide every pending packet at time `now` with the same decision
    /// function; returns the allowed packets in order.
    pub fn decide_all(
        &mut self,
        now: SimTime,
        mut decide: impl FnMut(&PacketRecord) -> Verdict,
    ) -> Vec<PacketRecord> {
        let mut allowed = Vec::new();
        while let Some((pkt, v)) = self.decide_next(now, &mut decide) {
            if v == Verdict::Allow {
                allowed.push(pkt);
            }
        }
        allowed
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &InterceptStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, TcpFlags, TlsVersion, TrafficClass, Transport};
    use std::net::Ipv4Addr;

    fn pkt(size: u16) -> PacketRecord {
        PacketRecord {
            ts: SimTime::ZERO,
            device: 0,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(1, 1, 1, 1),
            local_port: 9000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size,
            label: TrafficClass::Control,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = InterceptQueue::new();
        for i in 0..5 {
            q.enqueue(pkt(100 + i), SimTime::from_millis(i as u64));
        }
        let allowed = q.decide_all(SimTime::from_millis(10), |_| Verdict::Allow);
        let sizes: Vec<u16> = allowed.iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![100, 101, 102, 103, 104]);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn drops_are_counted_and_withheld() {
        let mut q = InterceptQueue::new();
        for i in 0..10 {
            q.enqueue(pkt(i), SimTime::ZERO);
        }
        let allowed = q.decide_all(SimTime::from_millis(1), |p| {
            if p.size % 2 == 0 {
                Verdict::Allow
            } else {
                Verdict::Drop
            }
        });
        assert_eq!(allowed.len(), 5);
        assert_eq!(q.stats().allowed, 5);
        assert_eq!(q.stats().dropped, 5);
        assert!((q.stats().drop_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn verdict_latency_tracked() {
        let mut q = InterceptQueue::new();
        q.enqueue(pkt(1), SimTime::from_millis(0));
        q.enqueue(pkt(2), SimTime::from_millis(0));
        q.decide_next(SimTime::from_millis(3), |_| Verdict::Allow);
        q.decide_next(SimTime::from_millis(5), |_| Verdict::Allow);
        assert_eq!(
            q.stats().mean_verdict_latency(),
            SimDuration::from_millis(4)
        );
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q = InterceptQueue::new();
        assert!(q.decide_next(SimTime::ZERO, |_| Verdict::Allow).is_none());
        assert_eq!(q.stats().total(), 0);
        assert_eq!(q.stats().mean_verdict_latency(), SimDuration::ZERO);
    }

    /// Deterministic injector: drops every third packet, duplicates every
    /// fourth, delays the rest by 2 ms.
    struct TestInjector {
        n: u64,
    }

    impl FaultInjector for TestInjector {
        fn inject(&mut self, pkt: PacketRecord, now: SimTime) -> Vec<(SimTime, PacketRecord)> {
            self.n += 1;
            if self.n.is_multiple_of(3) {
                vec![]
            } else if self.n.is_multiple_of(4) {
                vec![(now, pkt.clone()), (now, pkt)]
            } else {
                vec![(now + SimDuration::from_millis(2), pkt)]
            }
        }
    }

    #[test]
    fn enqueue_with_applies_injector_verbatim() {
        let mut q = InterceptQueue::new();
        let mut inj = TestInjector { n: 0 };
        let mut entered = 0;
        for i in 0..12u16 {
            entered += q.enqueue_with(&mut inj, pkt(i), SimTime::from_millis(u64::from(i)));
        }
        // 12 arrivals: 4 dropped (n=3,6,9,12), 2 duplicated (n=4,8 — 12
        // was already dropped), 6 delayed singles.
        assert_eq!(entered, 6 + 2 * 2);
        assert_eq!(q.pending(), 10);
        // Delay shows up as reduced verdict latency bookkeeping: a packet
        // enqueued 2 ms late measured against the same verdict time.
        let allowed = q.decide_all(SimTime::from_millis(20), |_| Verdict::Allow);
        assert_eq!(allowed.len(), 10);
    }

    /// The identity injector leaves the stream byte-identical to plain
    /// `enqueue` — the zero-cost default the chaos harness relies on.
    struct Identity;

    impl FaultInjector for Identity {
        fn inject(&mut self, pkt: PacketRecord, now: SimTime) -> Vec<(SimTime, PacketRecord)> {
            vec![(now, pkt)]
        }
    }

    #[test]
    fn identity_injector_matches_plain_enqueue() {
        let mut plain = InterceptQueue::new();
        let mut injected = InterceptQueue::new();
        let mut inj = Identity;
        for i in 0..8u16 {
            let at = SimTime::from_millis(u64::from(i) * 7);
            plain.enqueue(pkt(i), at);
            injected.enqueue_with(&mut inj, pkt(i), at);
        }
        let a = plain.decide_all(SimTime::from_millis(100), |_| Verdict::Allow);
        let b = injected.decide_all(SimTime::from_millis(100), |_| Verdict::Allow);
        assert_eq!(a, b);
        assert_eq!(plain.stats(), injected.stats());
    }
}
