//! Home-network topology and path latency composition.
//!
//! Nodes: the user's phone (on the home LAN or on LTE near the home), the
//! FIAT proxy (on the LAN), IoT devices (on the LAN), and the vendor cloud
//! (in the WAN, optionally behind a VPN detour). The two racing paths:
//!
//! - **Auth path**: phone → proxy, directly over WiFi (LAN scenario) or
//!   LTE + WAN (mobile scenario).
//! - **Command path**: phone → vendor cloud (app RPC) → cloud processing
//!   → cloud → device push, intercepted at the proxy.

use crate::link::LatencyProfile;
use fiat_net::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the phone is during an interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhoneLocation {
    /// Phone on the home WiFi.
    Lan,
    /// Phone on a mobile (LTE) network near the home (§6: within 15 miles).
    Mobile,
}

impl std::fmt::Display for PhoneLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhoneLocation::Lan => write!(f, "LAN"),
            PhoneLocation::Mobile => write!(f, "Mobile"),
        }
    }
}

/// The home-network latency model.
#[derive(Debug)]
pub struct HomeNetwork {
    /// LAN WiFi hop.
    pub lan: LatencyProfile,
    /// LTE radio hop.
    pub lte: LatencyProfile,
    /// WAN hop to the vendor cloud.
    pub wan: LatencyProfile,
    /// Vendor cloud processing time.
    pub cloud: LatencyProfile,
    rng: StdRng,
}

impl HomeNetwork {
    /// Default US-location network (no VPN detour).
    pub fn new(seed: u64) -> Self {
        HomeNetwork {
            lan: LatencyProfile::lan_wifi(),
            lte: LatencyProfile::lte(),
            wan: LatencyProfile::wan_regional(),
            cloud: LatencyProfile::cloud_processing(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Network with a VPN detour on the WAN path (Germany/Japan testbed
    /// configurations).
    pub fn with_vpn_detour(seed: u64) -> Self {
        HomeNetwork {
            wan: LatencyProfile::wan_vpn_detour(),
            ..Self::new(seed)
        }
    }

    /// One-way phone → proxy latency for the auth message.
    pub fn phone_to_proxy(&mut self, loc: PhoneLocation) -> SimDuration {
        match loc {
            PhoneLocation::Lan => self.lan.sample(&mut self.rng),
            // LTE uplink, WAN back to the home router, then into the LAN.
            PhoneLocation::Mobile => {
                self.lte.sample(&mut self.rng)
                    + self.wan.sample(&mut self.rng)
                    + self.lan.sample(&mut self.rng)
            }
        }
    }

    /// Round-trip phone ↔ proxy (e.g. one RTT of a handshake).
    pub fn phone_proxy_rtt(&mut self, loc: PhoneLocation) -> SimDuration {
        self.phone_to_proxy(loc) + self.phone_to_proxy(loc)
    }

    /// Latency from the user tapping the app to the first command packet
    /// of the IoT command arriving at the proxy: phone → cloud RPC, cloud
    /// processing, cloud → home push.
    pub fn command_first_packet(&mut self, loc: PhoneLocation) -> SimDuration {
        let uplink = match loc {
            PhoneLocation::Lan => self.lan.sample(&mut self.rng) + self.wan.sample(&mut self.rng),
            PhoneLocation::Mobile => {
                self.lte.sample(&mut self.rng) + self.wan.sample(&mut self.rng)
            }
        };
        let processing = self.cloud.sample(&mut self.rng);
        let downlink = self.wan.sample(&mut self.rng);
        uplink + processing + downlink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_auth_is_fast() {
        let mut net = HomeNetwork::new(0);
        for _ in 0..100 {
            let d = net.phone_to_proxy(PhoneLocation::Lan);
            assert!(d <= SimDuration::from_millis(8), "{d}");
        }
    }

    #[test]
    fn mobile_auth_slower_than_lan() {
        let mut net = HomeNetwork::new(1);
        let lan: u64 = (0..100)
            .map(|_| net.phone_to_proxy(PhoneLocation::Lan).as_micros())
            .sum();
        let mobile: u64 = (0..100)
            .map(|_| net.phone_to_proxy(PhoneLocation::Mobile).as_micros())
            .sum();
        assert!(mobile > 5 * lan);
    }

    #[test]
    fn command_path_dominated_by_cloud() {
        // Mean command latency should exceed mean auth latency by a lot —
        // this is the slack FIAT's race depends on (Table 7).
        let mut net = HomeNetwork::new(2);
        let n = 500;
        let cmd: u64 = (0..n)
            .map(|_| net.command_first_packet(PhoneLocation::Lan).as_micros())
            .sum();
        let auth: u64 = (0..n)
            .map(|_| net.phone_to_proxy(PhoneLocation::Lan).as_micros())
            .sum();
        assert!(cmd > 20 * auth, "cmd {cmd} auth {auth}");
    }

    #[test]
    fn vpn_detour_increases_command_latency() {
        let mut us = HomeNetwork::new(3);
        let mut vpn = HomeNetwork::with_vpn_detour(3);
        let n = 300;
        let us_total: u64 = (0..n)
            .map(|_| us.command_first_packet(PhoneLocation::Lan).as_micros())
            .sum();
        let vpn_total: u64 = (0..n)
            .map(|_| vpn.command_first_packet(PhoneLocation::Lan).as_micros())
            .sum();
        assert!(vpn_total > us_total);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = HomeNetwork::new(7);
        let mut b = HomeNetwork::new(7);
        for _ in 0..50 {
            assert_eq!(
                a.command_first_packet(PhoneLocation::Mobile),
                b.command_first_packet(PhoneLocation::Mobile)
            );
        }
    }
}
