//! Deterministic discrete-event scheduler.
//!
//! Generic over the event payload type. Ties in time are broken by
//! insertion sequence number, so two runs with the same inputs pop events
//! in exactly the same order.

use fiat_net::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled event: payload `E` due at a simulated instant.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// Min-heap ordering by (time, sequence).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Discrete-event scheduler with a simulated clock.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// New scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse(Entry {
            at,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.queue.pop().map(|Reverse(e)| {
            self.now = e.at;
            (e.at, e.payload)
        })
    }

    /// Peek at the next event's timestamp without advancing.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drain all events in order, applying `f` to each. `f` may schedule
    /// further events through the provided scheduler reference.
    pub fn run(&mut self, mut f: impl FnMut(&mut Self, SimTime, E)) {
        while let Some((t, e)) = self.pop() {
            f(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(3), "c");
        s.schedule(SimTime::from_secs(1), "a");
        s.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule(SimTime::from_secs(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(10), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(10), ());
        s.pop();
        s.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn run_allows_cascading_events() {
        // Each event schedules a follow-up until a counter runs out.
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(1), 5u32);
        let mut fired = Vec::new();
        s.run(|s, t, remaining| {
            fired.push((t.as_micros(), remaining));
            if remaining > 0 {
                s.schedule(t + fiat_net::SimDuration::from_secs(1), remaining - 1);
            }
        });
        assert_eq!(fired.len(), 6);
        assert_eq!(fired.last(), Some(&(6_000_000, 0)));
        assert!(s.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(2), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.len(), 1);
    }
}
