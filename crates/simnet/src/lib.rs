//! Deterministic discrete-event home-network simulator.
//!
//! The paper's latency evaluation (Table 7) measures FIAT's authentication
//! race: the humanness proof travelling phone → proxy must beat the IoT
//! command travelling phone → vendor cloud → device. This crate provides
//! the pieces to stage that race reproducibly:
//!
//! - [`event`]: a seeded, deterministic discrete-event scheduler. Events
//!   at equal timestamps fire in insertion order (no wall clock, no
//!   `HashMap` iteration order anywhere).
//! - [`link`]: latency profiles (LAN WiFi, LTE, WAN, VPN detours) with
//!   seeded jitter.
//! - [`home`]: the home topology — phone, IoT proxy, IoT devices, vendor
//!   cloud — and path-latency composition for LAN and mobile scenarios.
//! - [`intercept`]: the NFQUEUE-style interception point: every forwarded
//!   packet is held until a verdict callback decides Allow or Drop
//!   (§5.4 "Traffic Intercept").
//! - [`tcp`]: RFC 6298-style retransmission backoff, used for the §6
//!   finding that devices tolerate ~2 s of added validation delay.
//! - [`arp`]: the ARP-spoofing insertion itself — LAN ARP tables, the
//!   proxy's poisoning volley, and frame-level capture through the real
//!   Ethernet/IPv4 codecs.

pub mod arp;
pub mod event;
pub mod home;
pub mod intercept;
pub mod link;
pub mod tcp;

pub use arp::SpoofedLan;
pub use event::Scheduler;
pub use home::{HomeNetwork, PhoneLocation};
pub use intercept::{FaultInjector, InterceptQueue, Verdict};
pub use link::LatencyProfile;
