//! TCP retransmission timing model (RFC 6298 exponential backoff).
//!
//! §6 of the paper finds that every testbed device tolerates roughly two
//! seconds of extra delay injected by FIAT's validation, because TCP's
//! timeout-and-retransmit absorbs it. This model answers: if the proxy
//! holds a packet for `added_delay`, does the sender's retransmission
//! schedule deliver the command before the application-level deadline?

use fiat_net::SimDuration;

/// RFC 6298 retransmission schedule.
#[derive(Debug, Clone, Copy)]
pub struct TcpRetransmitModel {
    /// Initial retransmission timeout (RFC 6298 recommends 1 s).
    pub initial_rto: SimDuration,
    /// Maximum number of retransmissions before the connection aborts.
    pub max_retries: u32,
    /// Application-level deadline after which the IoT command is
    /// considered failed (vendor apps time out and surface an error).
    pub app_deadline: SimDuration,
}

impl Default for TcpRetransmitModel {
    fn default() -> Self {
        TcpRetransmitModel {
            initial_rto: SimDuration::from_secs(1),
            max_retries: 6,
            app_deadline: SimDuration::from_secs(10),
        }
    }
}

impl TcpRetransmitModel {
    /// Time of the `n`-th transmission attempt (0 = original send) under
    /// exponential backoff: 0, RTO, RTO+2·RTO, RTO+2·RTO+4·RTO, ...
    pub fn attempt_time(&self, n: u32) -> SimDuration {
        let mut t = SimDuration::ZERO;
        let mut rto = self.initial_rto;
        for _ in 0..n {
            t += rto;
            rto = rto * 2;
        }
        t
    }

    /// Given that the proxy delays delivery by `hold`, the first attempt
    /// whose (re)transmission reaches the receiver is the earliest attempt
    /// sent at or after... in fact the *original* packet is delivered at
    /// `hold` (NFQUEUE holds, then releases); retransmissions sent before
    /// the release are also held and released together. Delivery time is
    /// therefore `hold` itself if the connection has not aborted by then.
    ///
    /// Returns `Some(delivery_time)` if the command completes before both
    /// the TCP abort and the application deadline, else `None`.
    pub fn delivery_with_hold(&self, hold: SimDuration) -> Option<SimDuration> {
        let abort_time =
            self.attempt_time(self.max_retries) + self.initial_rto * (1 << self.max_retries);
        if hold >= abort_time {
            return None; // sender gave up before the release
        }
        if hold >= self.app_deadline {
            return None; // app already surfaced a failure
        }
        Some(hold)
    }

    /// Whether the IoT function survives an added validation delay,
    /// i.e. delivery happens and the user-visible completion time stays
    /// within the application deadline.
    pub fn tolerates(&self, added_delay: SimDuration) -> bool {
        self.delivery_with_hold(added_delay).is_some()
    }

    /// The largest added delay (millisecond resolution, binary search)
    /// that the connection tolerates.
    pub fn max_tolerated_delay(&self) -> SimDuration {
        let mut lo = 0u64;
        let mut hi =
            self.app_deadline.as_millis() + self.attempt_time(self.max_retries).as_millis();
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.tolerates(SimDuration::from_millis(mid)) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        SimDuration::from_millis(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_times_follow_exponential_backoff() {
        let m = TcpRetransmitModel::default();
        assert_eq!(m.attempt_time(0), SimDuration::ZERO);
        assert_eq!(m.attempt_time(1), SimDuration::from_secs(1));
        assert_eq!(m.attempt_time(2), SimDuration::from_secs(3));
        assert_eq!(m.attempt_time(3), SimDuration::from_secs(7));
        assert_eq!(m.attempt_time(4), SimDuration::from_secs(15));
    }

    #[test]
    fn two_second_hold_tolerated() {
        // The paper's empirical finding: all devices tolerate 2 s extra.
        let m = TcpRetransmitModel::default();
        assert!(m.tolerates(SimDuration::from_secs(2)));
        assert_eq!(
            m.delivery_with_hold(SimDuration::from_secs(2)),
            Some(SimDuration::from_secs(2))
        );
    }

    #[test]
    fn hold_past_app_deadline_fails() {
        let m = TcpRetransmitModel::default();
        assert!(!m.tolerates(SimDuration::from_secs(10)));
        assert!(!m.tolerates(SimDuration::from_secs(60)));
    }

    #[test]
    fn short_deadline_device_is_less_tolerant() {
        let strict = TcpRetransmitModel {
            app_deadline: SimDuration::from_secs(3),
            ..Default::default()
        };
        assert!(strict.tolerates(SimDuration::from_secs(2)));
        assert!(!strict.tolerates(SimDuration::from_secs(3)));
    }

    #[test]
    fn max_tolerated_matches_tolerates() {
        let m = TcpRetransmitModel::default();
        let max = m.max_tolerated_delay();
        assert!(m.tolerates(max));
        assert!(!m.tolerates(max + SimDuration::from_millis(1)));
        // With the default 10 s deadline the bound is just under it.
        assert_eq!(max, SimDuration::from_millis(9_999));
    }

    #[test]
    fn zero_delay_always_tolerated() {
        assert!(TcpRetransmitModel::default().tolerates(SimDuration::ZERO));
    }
}
