//! ARP-spoofing interception (§5.4 "Traffic Intercept").
//!
//! FIAT's proxy inserts itself on-path without gateway integration by
//! poisoning the LAN's ARP tables: it answers/announces the gateway's IP
//! with its own MAC (toward devices) and each device's IP with its own
//! MAC (toward the gateway), so every IoT frame transits the proxy. This
//! module models the LAN ARP state and the frame-level capture path — real
//! Ethernet/IPv4 bytes built and parsed with `fiat-net`'s codecs, so the
//! intercept exercises the same parsing a live deployment would.

use fiat_net::headers::{build_frame, parse_frame, FrameSpec, MacAddr, ParseError, ParsedFrame};
use fiat_net::{PacketRecord, TcpFlags, Transport};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One host's ARP table: IP → MAC as currently believed.
#[derive(Debug, Clone, Default)]
pub struct ArpTable {
    entries: HashMap<Ipv4Addr, MacAddr>,
}

impl ArpTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process an ARP announcement (gratuitous or reply): last write wins,
    /// exactly the behaviour spoofing exploits.
    pub fn learn(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.entries.insert(ip, mac);
    }

    /// Resolve an IP.
    pub fn resolve(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.entries.get(&ip).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The LAN under ARP spoofing: per-host ARP tables, the gateway, and the
/// proxy that poisons them.
#[derive(Debug)]
pub struct SpoofedLan {
    /// Gateway's real IP/MAC.
    pub gateway_ip: Ipv4Addr,
    /// Gateway MAC.
    pub gateway_mac: MacAddr,
    /// The proxy's MAC.
    pub proxy_mac: MacAddr,
    /// Device ARP tables, keyed by device index.
    device_tables: HashMap<u16, ArpTable>,
    /// The gateway's ARP table.
    gateway_table: ArpTable,
}

impl SpoofedLan {
    /// A LAN with the given devices (indices) attached.
    pub fn new(devices: &[u16]) -> Self {
        let gateway_ip = Ipv4Addr::new(192, 168, 1, 1);
        let gateway_mac = MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
        let proxy_mac = MacAddr([0x02, 0xf1, 0xa7, 0xff, 0xff, 0xfe]);
        let mut device_tables = HashMap::new();
        let mut gateway_table = ArpTable::new();
        for &d in devices {
            // Honest initial state: everyone knows the true mappings.
            let mut t = ArpTable::new();
            t.learn(gateway_ip, gateway_mac);
            device_tables.insert(d, t);
            gateway_table.learn(device_ip(d), MacAddr::for_device(d));
        }
        SpoofedLan {
            gateway_ip,
            gateway_mac,
            proxy_mac,
            device_tables,
            gateway_table,
        }
    }

    /// The proxy sends its gratuitous ARP volley: devices now resolve the
    /// gateway to the proxy; the gateway resolves every device to the
    /// proxy.
    pub fn poison(&mut self) {
        for table in self.device_tables.values_mut() {
            table.learn(self.gateway_ip, self.proxy_mac);
        }
        let devices: Vec<u16> = self.device_tables.keys().copied().collect();
        for d in devices {
            self.gateway_table.learn(device_ip(d), self.proxy_mac);
        }
    }

    /// Whether every path segment currently transits the proxy.
    pub fn fully_poisoned(&self) -> bool {
        self.device_tables
            .values()
            .all(|t| t.resolve(self.gateway_ip) == Some(self.proxy_mac))
            && self
                .device_tables
                .keys()
                .all(|&d| self.gateway_table.resolve(device_ip(d)) == Some(self.proxy_mac))
    }

    /// Next-hop MAC a device uses for WAN-bound traffic.
    pub fn device_next_hop(&self, device: u16) -> Option<MacAddr> {
        self.device_tables.get(&device)?.resolve(self.gateway_ip)
    }

    /// Next-hop MAC the gateway uses toward a device.
    pub fn gateway_next_hop(&self, device: u16) -> Option<MacAddr> {
        self.gateway_table.resolve(device_ip(device))
    }
}

/// Deterministic LAN IP for a device index (matches the trace generator).
pub fn device_ip(device: u16) -> Ipv4Addr {
    let [hi, lo] = device.to_be_bytes();
    Ipv4Addr::new(192, 168, hi.wrapping_add(1), lo.wrapping_add(10))
}

/// Frame-level capture: serialize a [`PacketRecord`] into the Ethernet
/// frame the proxy would receive after poisoning, with the correct
/// next-hop MAC addressing.
pub fn frame_for_packet(pkt: &PacketRecord, lan: &SpoofedLan) -> Vec<u8> {
    // After poisoning, frames in both directions are addressed to the
    // proxy's MAC at L2 while keeping end-to-end IPs at L3.
    let (src_mac, dst_mac) = match pkt.direction {
        fiat_net::Direction::FromDevice => (
            MacAddr::for_device(pkt.device),
            lan.device_next_hop(pkt.device).unwrap_or(lan.gateway_mac),
        ),
        fiat_net::Direction::ToDevice => (
            lan.gateway_mac,
            lan.gateway_next_hop(pkt.device)
                .unwrap_or(MacAddr::for_device(pkt.device)),
        ),
    };
    // Header bytes are part of the on-wire size; payload fills the rest.
    let hdr = fiat_net::headers::ETH_HDR_LEN
        + fiat_net::headers::IPV4_HDR_LEN
        + match pkt.transport {
            Transport::Tcp => fiat_net::headers::TCP_HDR_LEN,
            Transport::Udp => fiat_net::headers::UDP_HDR_LEN,
        };
    let payload_len = (pkt.size as usize).saturating_sub(hdr);
    build_frame(&FrameSpec {
        src_mac,
        dst_mac,
        src_ip: pkt.src_ip(),
        dst_ip: pkt.dst_ip(),
        transport: pkt.transport,
        src_port: pkt.src_port(),
        dst_port: pkt.dst_port(),
        tcp_flags: if pkt.transport == Transport::Tcp {
            pkt.tcp_flags
        } else {
            TcpFlags::default()
        },
        payload: vec![0u8; payload_len],
        ttl: 64,
    })
}

/// Parse a captured frame back into the fields the proxy's decision
/// pipeline needs; checksum failures surface as errors exactly like a
/// live capture path.
pub fn capture_frame(frame: &[u8]) -> Result<ParsedFrame, ParseError> {
    parse_frame(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, SimTime, TlsVersion, TrafficClass};

    fn pkt(direction: Direction) -> PacketRecord {
        PacketRecord {
            ts: SimTime::ZERO,
            device: 3,
            direction,
            local_ip: device_ip(3),
            remote_ip: Ipv4Addr::new(34, 1, 2, 3),
            local_port: 50_000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size: 235,
            label: TrafficClass::Manual,
        }
    }

    #[test]
    fn poisoning_redirects_both_directions() {
        let mut lan = SpoofedLan::new(&[0, 1, 3]);
        assert!(!lan.fully_poisoned());
        assert_eq!(lan.device_next_hop(3), Some(lan.gateway_mac));
        lan.poison();
        assert!(lan.fully_poisoned());
        assert_eq!(lan.device_next_hop(3), Some(lan.proxy_mac));
        assert_eq!(lan.gateway_next_hop(0), Some(lan.proxy_mac));
    }

    #[test]
    fn frames_transit_proxy_after_poisoning() {
        let mut lan = SpoofedLan::new(&[3]);
        lan.poison();
        let frame = frame_for_packet(&pkt(Direction::FromDevice), &lan);
        let parsed = capture_frame(&frame).unwrap();
        assert_eq!(parsed.dst_mac, lan.proxy_mac);
        assert_eq!(parsed.src_ip, device_ip(3));
        assert_eq!(parsed.dst_port, 443);
        assert_eq!(parsed.tcp_flags, TcpFlags::psh_ack());
        // On-wire size preserved (235 B total).
        assert_eq!(parsed.frame_len, 235);
    }

    #[test]
    fn inbound_frames_also_captured() {
        let mut lan = SpoofedLan::new(&[3]);
        lan.poison();
        let frame = frame_for_packet(&pkt(Direction::ToDevice), &lan);
        let parsed = capture_frame(&frame).unwrap();
        assert_eq!(parsed.dst_mac, lan.proxy_mac);
        assert_eq!(parsed.dst_ip, device_ip(3));
        assert_eq!(parsed.src_port, 443);
    }

    #[test]
    fn corrupted_capture_detected() {
        let mut lan = SpoofedLan::new(&[3]);
        lan.poison();
        let mut frame = frame_for_packet(&pkt(Direction::FromDevice), &lan);
        let n = frame.len();
        frame[n - 1] ^= 1;
        assert!(capture_frame(&frame).is_err());
    }

    #[test]
    fn tiny_packets_clamp_payload() {
        let mut lan = SpoofedLan::new(&[3]);
        lan.poison();
        let mut p = pkt(Direction::FromDevice);
        p.size = 40; // smaller than the header stack
        let frame = frame_for_packet(&p, &lan);
        let parsed = capture_frame(&frame).unwrap();
        assert_eq!(parsed.payload_len, 0);
    }

    #[test]
    fn arp_last_write_wins() {
        let mut t = ArpTable::new();
        let ip = Ipv4Addr::new(192, 168, 1, 1);
        t.learn(ip, MacAddr([1; 6]));
        t.learn(ip, MacAddr([2; 6]));
        assert_eq!(t.resolve(ip), Some(MacAddr([2; 6])));
        assert_eq!(t.len(), 1);
    }
}
