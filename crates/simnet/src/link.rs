//! Link latency profiles with seeded jitter.
//!
//! Profiles are calibrated so the composed paths land in the ranges Table 7
//! reports: LAN QUIC 1-RTT ≈ 27 ms, 0-RTT ≈ 21 ms; mobile RTTs of hundreds
//! of ms with high variance; WAN cloud detours making the IoT command's
//! time-to-first-packet 600–2000 ms.

use fiat_net::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One-way latency distribution of a link: base plus uniform jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Minimum one-way latency.
    pub base: SimDuration,
    /// Maximum additional jitter (uniform in `[0, jitter]`).
    pub jitter: SimDuration,
}

impl LatencyProfile {
    /// Construct from milliseconds.
    pub const fn from_millis(base_ms: u64, jitter_ms: u64) -> Self {
        LatencyProfile {
            base: SimDuration::from_millis(base_ms),
            jitter: SimDuration::from_millis(jitter_ms),
        }
    }

    /// Home WiFi hop (phone ↔ proxy ↔ device on the same LAN).
    pub const fn lan_wifi() -> Self {
        Self::from_millis(3, 5)
    }

    /// LTE radio access hop (phone on mobile network).
    pub const fn lte() -> Self {
        Self::from_millis(35, 60)
    }

    /// WAN hop to a same-region cloud.
    pub const fn wan_regional() -> Self {
        Self::from_millis(20, 15)
    }

    /// WAN hop traversing a VPN detour (Germany/Japan experiments).
    pub const fn wan_vpn_detour() -> Self {
        Self::from_millis(90, 40)
    }

    /// Vendor-cloud internal processing before the command is pushed to
    /// the device (measured time-to-first-packet in the paper includes
    /// substantial cloud-side work).
    pub const fn cloud_processing() -> Self {
        Self::from_millis(350, 500)
    }

    /// Sample a one-way latency.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        let j = self.jitter.as_micros();
        let extra = if j == 0 { 0 } else { rng.gen_range(0..=j) };
        self.base + SimDuration::from_micros(extra)
    }

    /// Expected (mean) one-way latency.
    pub fn mean(&self) -> SimDuration {
        self.base + self.jitter / 2
    }
}

/// A seeded latency sampler bound to one profile.
#[derive(Debug)]
pub struct LinkSampler {
    profile: LatencyProfile,
    rng: StdRng,
}

impl LinkSampler {
    /// New sampler.
    pub fn new(profile: LatencyProfile, seed: u64) -> Self {
        LinkSampler {
            profile,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next latency sample.
    pub fn sample(&mut self) -> SimDuration {
        self.profile.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_within_bounds() {
        let p = LatencyProfile::from_millis(10, 20);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let s = p.sample(&mut rng);
            assert!(s >= SimDuration::from_millis(10));
            assert!(s <= SimDuration::from_millis(30));
        }
    }

    #[test]
    fn zero_jitter_is_constant() {
        let p = LatencyProfile::from_millis(7, 0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(p.sample(&mut rng), SimDuration::from_millis(7));
        }
    }

    #[test]
    fn mean_is_midpoint() {
        let p = LatencyProfile::from_millis(10, 20);
        assert_eq!(p.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = LinkSampler::new(LatencyProfile::lte(), 5);
        let mut b = LinkSampler::new(LatencyProfile::lte(), 5);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        assert!(LatencyProfile::lan_wifi().mean() < LatencyProfile::lte().mean());
        assert!(LatencyProfile::wan_regional().mean() < LatencyProfile::wan_vpn_detour().mean());
        assert!(LatencyProfile::cloud_processing().mean() > LatencyProfile::lte().mean());
    }

    #[test]
    fn empirical_mean_close_to_analytic() {
        let p = LatencyProfile::lte();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.sample(&mut rng).as_micros()).sum();
        let emp = total as f64 / n as f64;
        let ana = p.mean().as_micros() as f64;
        assert!((emp - ana).abs() / ana < 0.02, "emp {emp} vs {ana}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every sample of every profile lands in `[base, base+jitter]`.
            #[test]
            fn sample_always_within_base_plus_jitter(
                base_ms in 0u64..10_000,
                jitter_ms in 0u64..10_000,
                seed in any::<u64>(),
                n in 1usize..64,
            ) {
                let p = LatencyProfile::from_millis(base_ms, jitter_ms);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..n {
                    let s = p.sample(&mut rng);
                    prop_assert!(s >= p.base);
                    prop_assert!(s <= p.base + p.jitter);
                }
            }

            /// Two RNGs from the same seed yield identical sample streams.
            #[test]
            fn same_seed_same_stream(
                base_ms in 0u64..10_000,
                jitter_ms in 0u64..10_000,
                seed in any::<u64>(),
            ) {
                let p = LatencyProfile::from_millis(base_ms, jitter_ms);
                let mut a = StdRng::seed_from_u64(seed);
                let mut b = StdRng::seed_from_u64(seed);
                for _ in 0..32 {
                    prop_assert_eq!(p.sample(&mut a), p.sample(&mut b));
                }
            }

            /// `from_millis` round-trips through the stored durations
            /// (millisecond inputs stay exact at microsecond resolution).
            #[test]
            fn from_millis_round_trips(
                base_ms in 0u64..1_000_000,
                jitter_ms in 0u64..1_000_000,
            ) {
                let p = LatencyProfile::from_millis(base_ms, jitter_ms);
                prop_assert_eq!(p.base.as_millis(), base_ms);
                prop_assert_eq!(p.jitter.as_millis(), jitter_ms);
                prop_assert_eq!(
                    p,
                    LatencyProfile::from_millis(p.base.as_millis(), p.jitter.as_millis())
                );
            }
        }
    }
}
