//! # fiat-probe — profiling and tracing probes for the fleet runtime
//!
//! ROADMAP item 1 asks *why* the sharded runtime gains only 1.06x from
//! 1→2 shards. Counters (PR 1) say what the fleet decided; nothing says
//! where the parallelism goes. This crate supplies the missing layer,
//! with the same constraints as `fiat-telemetry`: zero external
//! dependencies, and **off by default** — the decide hot path must not
//! pay for probes nobody turned on (proven by the allocation regression
//! test in `tests/overhead.rs`).
//!
//! Three probes:
//!
//! - [`profile`] — per-thread wall-time accounting. A [`ShardProfile`]
//!   buckets a shard's claim loop into named stages (recv / decide /
//!   merge / idle) and the coordinator's plan + join-barrier costs into
//!   a separate `coord` row, so a flat scaling curve decomposes into
//!   costs with names; [`FleetProfile`] folds rows, ranks suspected
//!   bottlenecks (each stage normalized against the wall time of the
//!   thread that measured it — no cross-thread over-accounting), and
//!   publishes `fiat_fleet_shard_busy_ms{shard,stage}`, assigned-homes
//!   gauges, steal counters, a barrier-skew histogram, and the
//!   flight-recorder eviction-ratio gauge.
//! - [`recorder`] — a flight recorder: bounded per-shard ring buffers of
//!   structured [`TraceEvent`]s (packet decided, proof arrival, lockout
//!   and quarantine transitions, home lifecycle), merged
//!   deterministically on the simulated clock keyed by
//!   `(ts, home, per-home seq)` — stable under work stealing — and
//!   dumpable as JSONL, so an anomaly comes with a causal packet-level
//!   timeline instead of just counters.
//! - [`alloc`] — the counting `#[global_allocator]` from PR 2's
//!   one-off proof test, promoted to a reusable probe with per-thread
//!   counters so a shard can attribute allocations to the stage that
//!   made them.
//!
//! The probes observe; they never feed the deterministic merged
//! registries, so a probed fleet run still merges byte-identically to
//! the sequential reference.

pub mod alloc;
pub mod profile;
pub mod recorder;

pub use alloc::{global_allocations, thread_allocations, AllocScope, CountingAllocator};
pub use profile::{FleetProfile, QueueDepthProbe, ShardProfile, Stage};
pub use recorder::{
    FlightRecorder, ShardRecorder, TraceEvent, TraceKind, SEQ_ASSIGNED, SEQ_CLAIMED, SEQ_FINISHED,
    SEQ_FIRST_HOOK,
};

/// What a probed fleet run should measure. The default is everything
/// off: [`ProbeConfig::default`] records nothing and times nothing, and
/// the unprobed runtime never even constructs one.
#[derive(Debug, Clone, Default)]
pub struct ProbeConfig {
    /// Flight-recorder ring capacity per shard; `0` disables the
    /// recorder entirely (no ring allocation, no per-decision hook).
    pub recorder_capacity: usize,
}

impl ProbeConfig {
    /// The configuration `experiments profile` runs with: stage
    /// accounting plus a flight recorder sized to keep the recent tail
    /// of each shard's decision stream.
    pub fn profiling() -> Self {
        ProbeConfig {
            recorder_capacity: 4096,
        }
    }
}
