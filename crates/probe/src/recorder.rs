//! The flight recorder: bounded per-shard rings of structured trace
//! events, merged deterministically on the simulated clock.
//!
//! Counters compress history; a regression (a false drop, a posture
//! flip) needs the *sequence* that led to it. Each shard owns a ring of
//! the most recent [`TraceEvent`]s — event timestamps come from the
//! simulated packet clock, so two runs of the same seed record the same
//! timeline — and [`FlightRecorder::merged`] interleaves rings by
//! `(sim_ts_us, home, seq)`, where `seq` is the event's position in its
//! *home's* stream. Keying the merge on the home (not the recording
//! shard) matters since work stealing: which shard runs a home can
//! differ run to run, but a home's own event stream is deterministic —
//! so the merged timeline is reproducible across both thread scheduling
//! *and* work placement, as long as nothing was evicted. Rings are
//! bounded and evict oldest-first: memory is `O(shards × capacity)` no
//! matter how long the run, and [`FlightRecorder::evicted_ratio`] tells
//! a reader how much of the stream the retained window actually covers
//! (an evicting run's window is placement-dependent — the eviction
//! ratio is the honesty line the report must surface).
//!
//! Lock cost: one uncontended `Mutex` per shard (only that shard's
//! thread records into it), taken once per event. The unprobed runtime
//! never constructs a recorder at all.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Per-home sequence number for the coordinator-side "home assigned to
/// a shard queue" event — first in every home's stream.
pub const SEQ_ASSIGNED: u64 = 0;
/// Per-home sequence number for the shard-side "home claimed" event.
pub const SEQ_CLAIMED: u64 = 1;
/// First per-home sequence number available to proxy hook events.
pub const SEQ_FIRST_HOOK: u64 = 2;
/// Per-home sequence number for the "home finished" event — sorts after
/// every hook event the home could have produced.
pub const SEQ_FINISHED: u64 = u64::MAX;

/// What happened. Packet-level kinds come from the proxy's transition
/// hooks; home-level kinds from the fleet plan and shard claim loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A home was assigned to a shard's claim queue (coordinator side).
    HomeEnqueued,
    /// A shard claimed a home workload (its own queue or a steal).
    HomeDequeued,
    /// A shard finished deciding a home's capture.
    HomeFinished,
    /// The proxy decided one packet (`detail` carries the reason label).
    PacketDecided,
    /// A humanness proof arrived (`detail`: verified / rejected).
    ProofArrival,
    /// A device entered brute-force lockout.
    LockoutEntered,
    /// A lockout was manually cleared.
    LockoutCleared,
    /// A packet was held in pending-verdict quarantine.
    QuarantineHeld,
    /// A quarantine record was released by a late proof (`arg`: packets).
    QuarantineReleased,
    /// A quarantine record expired at its deadline (`arg`: packets).
    QuarantineExpired,
}

impl TraceKind {
    /// Stable snake_case name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::HomeEnqueued => "home_enqueued",
            TraceKind::HomeDequeued => "home_dequeued",
            TraceKind::HomeFinished => "home_finished",
            TraceKind::PacketDecided => "packet_decided",
            TraceKind::ProofArrival => "proof_arrival",
            TraceKind::LockoutEntered => "lockout_entered",
            TraceKind::LockoutCleared => "lockout_cleared",
            TraceKind::QuarantineHeld => "quarantine_held",
            TraceKind::QuarantineReleased => "quarantine_released",
            TraceKind::QuarantineExpired => "quarantine_expired",
        }
    }
}

/// One recorded event. `Copy`, no heap: recording into a warm ring
/// allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated-clock timestamp (microseconds) — the primary
    /// deterministic merge key, not wall time.
    pub ts_us: u64,
    /// Home the event belongs to.
    pub home: u32,
    /// Position in the home's event stream (the [`SEQ_ASSIGNED`] /
    /// [`SEQ_CLAIMED`] / hook / [`SEQ_FINISHED`] contract) — the merge
    /// tiebreaker within one home.
    pub seq: u64,
    /// Device within the home (0 for home-level events).
    pub device: u16,
    /// Event kind.
    pub kind: TraceKind,
    /// Kind-specific label (decision reason, proof result); `""` when
    /// the kind needs none.
    pub detail: &'static str,
    /// Kind-specific magnitude (packet counts for quarantine resolution
    /// and home lifecycle events).
    pub arg: u64,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

/// One shard's bounded event ring. Thread-safe (the owning shard records
/// while the collector later reads), evicts oldest-first.
#[derive(Debug)]
pub struct ShardRecorder {
    ring: Mutex<Ring>,
}

impl ShardRecorder {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ShardRecorder {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                total: 0,
                dropped: 0,
            }),
        }
    }

    /// Record an event, evicting the oldest when full. Allocation-free
    /// once the ring has filled (the `VecDeque` is pre-sized and
    /// `TraceEvent` is `Copy`).
    pub fn record(&self, event: TraceEvent) {
        let mut r = self.ring.lock().unwrap();
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.total += 1;
        r.buf.push_back(event);
    }

    /// Events currently retained, oldest first (record order).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().buf.iter().copied().collect()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Events ever recorded (retained + evicted).
    pub fn total(&self) -> u64 {
        self.ring.lock().unwrap().total
    }
}

/// The fleet-wide recorder: one ring per shard plus one for the
/// coordinator thread (index `shards`).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    shards: Vec<Arc<ShardRecorder>>,
}

impl FlightRecorder {
    /// Ring index used by the coordinator (plan/collect) thread.
    pub fn coordinator_index(&self) -> usize {
        self.shards.len() - 1
    }

    /// A recorder with `shards` worker rings plus the coordinator ring,
    /// each holding `capacity` events.
    pub fn new(shards: usize, capacity: usize) -> Self {
        FlightRecorder {
            shards: (0..shards + 1)
                .map(|_| Arc::new(ShardRecorder::new(capacity)))
                .collect(),
        }
    }

    /// Handle to one shard's ring (the coordinator ring is the last
    /// index).
    pub fn shard(&self, shard: usize) -> Arc<ShardRecorder> {
        Arc::clone(&self.shards[shard])
    }

    /// Total events evicted across all rings.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total events ever recorded across all rings.
    pub fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// Fraction of recorded events that were evicted (0.0 when nothing
    /// was recorded). Above ~0.1 the merged timeline is a narrow window
    /// onto the run, not the run — report it.
    pub fn evicted_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.dropped() as f64 / total as f64
        }
    }

    /// All retained events, merged into one deterministic timeline:
    /// ordered by simulated timestamp, ties broken by home then by the
    /// home's own sequence. Two runs of the same seed produce the same
    /// merged timeline regardless of thread scheduling or which shard
    /// ended up running which home — provided nothing was evicted
    /// (check [`Self::evicted_ratio`]).
    pub fn merged(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.shards.iter().flat_map(|s| s.events()).collect();
        all.sort_by_key(|e| (e.ts_us, e.home, e.seq));
        all
    }

    /// Render the merged timeline as JSON Lines (one event object per
    /// line), ready for `results/trace_*.jsonl`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.merged() {
            let _ = writeln!(
                out,
                "{{\"ts_us\":{},\"home\":{},\"seq\":{},\"device\":{},\
                 \"kind\":\"{}\",\"detail\":\"{}\",\"arg\":{}}}",
                e.ts_us,
                e.home,
                e.seq,
                e.device,
                e.kind.as_str(),
                e.detail,
                e.arg,
            );
        }
        out
    }

    /// Write the merged timeline to `path` as JSONL.
    pub fn dump_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_us: u64, home: u32, seq: u64) -> TraceEvent {
        TraceEvent {
            ts_us,
            home,
            seq,
            device: 0,
            kind: TraceKind::PacketDecided,
            detail: "rule_hit",
            arg: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_evictions() {
        let r = ShardRecorder::new(3);
        for i in 0..5 {
            r.record(ev(i, 0, i));
        }
        let kept = r.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.ts_us).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = ShardRecorder::new(0);
        r.record(ev(1, 0, 0));
        r.record(ev(2, 0, 1));
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].ts_us, 2);
    }

    #[test]
    fn merge_orders_by_ts_then_home_then_seq() {
        let fr = FlightRecorder::new(2, 16);
        // Shard 1 records first in wall time, but its events carry later
        // simulated timestamps: the merge must follow the sim clock, and
        // same-timestamp ties must follow (home, seq), not the ring.
        fr.shard(1).record(ev(50, 3, 2));
        fr.shard(1).record(ev(10, 3, 3));
        fr.shard(0).record(ev(10, 1, 5));
        fr.shard(0).record(ev(10, 1, 4));
        let merged = fr.merged();
        let order: Vec<(u64, u32, u64)> = merged.iter().map(|e| (e.ts_us, e.home, e.seq)).collect();
        assert_eq!(order, vec![(10, 1, 4), (10, 1, 5), (10, 3, 3), (50, 3, 2)]);
    }

    #[test]
    fn merged_timeline_is_placement_independent() {
        // The same homes recorded into *different* rings (as work
        // stealing would do) must merge to the same timeline.
        let mk = |steal: bool| {
            let fr = FlightRecorder::new(2, 8);
            let (ring_a, ring_b) = if steal {
                (fr.shard(1), fr.shard(0))
            } else {
                (fr.shard(0), fr.shard(1))
            };
            ring_a.record(ev(1, 0, SEQ_FIRST_HOOK));
            ring_a.record(ev(3, 0, SEQ_FIRST_HOOK + 1));
            ring_b.record(ev(2, 1, SEQ_FIRST_HOOK));
            ring_b.record(ev(7, 1, SEQ_FIRST_HOOK + 1));
            fr.to_jsonl()
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn lifecycle_seqs_bracket_hook_events() {
        // Assigned < claimed < hooks < finished within one home at one
        // timestamp.
        let fr = FlightRecorder::new(1, 8);
        let ring = fr.shard(0);
        let mut e = ev(5, 0, SEQ_FINISHED);
        e.kind = TraceKind::HomeFinished;
        ring.record(e);
        ring.record(ev(5, 0, SEQ_FIRST_HOOK));
        let mut e = ev(5, 0, SEQ_ASSIGNED);
        e.kind = TraceKind::HomeEnqueued;
        ring.record(e);
        let mut e = ev(5, 0, SEQ_CLAIMED);
        e.kind = TraceKind::HomeDequeued;
        ring.record(e);
        let kinds: Vec<&str> = fr.merged().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "home_enqueued",
                "home_dequeued",
                "packet_decided",
                "home_finished"
            ]
        );
    }

    #[test]
    fn eviction_ratio_reflects_drops() {
        let fr = FlightRecorder::new(1, 4);
        assert_eq!(fr.evicted_ratio(), 0.0);
        for i in 0..4 {
            fr.shard(0).record(ev(i, 0, i));
        }
        assert_eq!(fr.evicted_ratio(), 0.0);
        for i in 4..16 {
            fr.shard(0).record(ev(i, 0, i));
        }
        assert!((fr.evicted_ratio() - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_shape() {
        let fr = FlightRecorder::new(1, 8);
        fr.shard(0).record(TraceEvent {
            ts_us: 42,
            home: 7,
            seq: 9,
            device: 3,
            kind: TraceKind::QuarantineReleased,
            detail: "",
            arg: 9,
        });
        let jsonl = fr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"ts_us\":42"));
        assert!(jsonl.contains("\"home\":7"));
        assert!(jsonl.contains("\"seq\":9"));
        assert!(jsonl.contains("\"kind\":\"quarantine_released\""));
        assert!(jsonl.contains("\"arg\":9"));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn coordinator_ring_is_extra() {
        let fr = FlightRecorder::new(4, 8);
        assert_eq!(fr.coordinator_index(), 4);
        fr.shard(fr.coordinator_index()).record(ev(1, 0, 0));
        assert_eq!(fr.total(), 1);
    }
}
