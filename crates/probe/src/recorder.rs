//! The flight recorder: bounded per-shard rings of structured trace
//! events, merged deterministically on the simulated clock.
//!
//! Counters compress history; a regression (a false drop, a posture
//! flip) needs the *sequence* that led to it. Each shard owns a ring of
//! the most recent [`TraceEvent`]s — event timestamps come from the
//! simulated packet clock, so two runs of the same seed record the same
//! timeline — and [`FlightRecorder::merged`] interleaves shards by
//! `(ts, shard, seq)`, a total order that does not depend on thread
//! scheduling. Rings are bounded and evict oldest-first: memory is
//! `O(shards × capacity)` no matter how long the run, and the eviction
//! count tells a reader whether the window is complete.
//!
//! Lock cost: one uncontended `Mutex` per shard (only that shard's
//! thread records into it), taken once per event. The unprobed runtime
//! never constructs a recorder at all.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// What happened. Packet-level kinds come from the proxy's transition
/// hooks; home-level kinds from the fleet dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A home workload was queued to a shard channel (feeder side).
    HomeEnqueued,
    /// A shard pulled a home workload off its channel.
    HomeDequeued,
    /// A shard finished deciding a home's capture.
    HomeFinished,
    /// The proxy decided one packet (`detail` carries the reason label).
    PacketDecided,
    /// A humanness proof arrived (`detail`: verified / rejected).
    ProofArrival,
    /// A device entered brute-force lockout.
    LockoutEntered,
    /// A lockout was manually cleared.
    LockoutCleared,
    /// A packet was held in pending-verdict quarantine.
    QuarantineHeld,
    /// A quarantine record was released by a late proof (`arg`: packets).
    QuarantineReleased,
    /// A quarantine record expired at its deadline (`arg`: packets).
    QuarantineExpired,
}

impl TraceKind {
    /// Stable snake_case name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::HomeEnqueued => "home_enqueued",
            TraceKind::HomeDequeued => "home_dequeued",
            TraceKind::HomeFinished => "home_finished",
            TraceKind::PacketDecided => "packet_decided",
            TraceKind::ProofArrival => "proof_arrival",
            TraceKind::LockoutEntered => "lockout_entered",
            TraceKind::LockoutCleared => "lockout_cleared",
            TraceKind::QuarantineHeld => "quarantine_held",
            TraceKind::QuarantineReleased => "quarantine_released",
            TraceKind::QuarantineExpired => "quarantine_expired",
        }
    }
}

/// One recorded event. `Copy`, no heap: recording into a warm ring
/// allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated-clock timestamp (microseconds) — the deterministic
    /// merge key, not wall time.
    pub ts_us: u64,
    /// Home the event belongs to.
    pub home: u32,
    /// Device within the home (0 for home-level events).
    pub device: u16,
    /// Event kind.
    pub kind: TraceKind,
    /// Kind-specific label (decision reason, proof result); `""` when
    /// the kind needs none.
    pub detail: &'static str,
    /// Kind-specific magnitude (packet counts for quarantine resolution
    /// and home lifecycle events).
    pub arg: u64,
}

/// A recorded event plus its ring-assigned per-shard sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqEvent {
    /// Shard that recorded the event.
    pub shard: u32,
    /// Position in that shard's record stream (monotone, gap-free even
    /// across eviction).
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<SeqEvent>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

/// One shard's bounded event ring. Thread-safe (the owning shard records
/// while the collector later reads), evicts oldest-first.
#[derive(Debug)]
pub struct ShardRecorder {
    shard: u32,
    ring: Mutex<Ring>,
}

impl ShardRecorder {
    /// A ring for `shard` holding at most `capacity` events (min 1).
    pub fn new(shard: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ShardRecorder {
            shard,
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Record an event, evicting the oldest when full. Allocation-free
    /// once the ring has filled (the `VecDeque` is pre-sized and
    /// `SeqEvent` is `Copy`).
    pub fn record(&self, event: TraceEvent) {
        let mut r = self.ring.lock().unwrap();
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        let seq = r.seq;
        r.seq += 1;
        let shard = self.shard;
        r.buf.push_back(SeqEvent { shard, seq, event });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<SeqEvent> {
        self.ring.lock().unwrap().buf.iter().copied().collect()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Events ever recorded (retained + evicted).
    pub fn total(&self) -> u64 {
        self.ring.lock().unwrap().seq
    }
}

/// The fleet-wide recorder: one ring per shard plus one for the feeder
/// thread (index `shards`).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    shards: Vec<Arc<ShardRecorder>>,
}

impl FlightRecorder {
    /// Ring index used by the dispatch/feeder thread.
    pub fn feeder_index(&self) -> usize {
        self.shards.len() - 1
    }

    /// A recorder with `shards` worker rings plus the feeder ring, each
    /// holding `capacity` events.
    pub fn new(shards: usize, capacity: usize) -> Self {
        FlightRecorder {
            shards: (0..shards + 1)
                .map(|s| Arc::new(ShardRecorder::new(s as u32, capacity)))
                .collect(),
        }
    }

    /// Handle to one shard's ring (the feeder ring is the last index).
    pub fn shard(&self, shard: usize) -> Arc<ShardRecorder> {
        Arc::clone(&self.shards[shard])
    }

    /// Total events evicted across all rings.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Total events ever recorded across all rings.
    pub fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// All retained events, merged into one deterministic timeline:
    /// ordered by simulated timestamp, ties broken by shard then by
    /// per-shard sequence. Two runs of the same seed produce the same
    /// merged timeline regardless of thread scheduling.
    pub fn merged(&self) -> Vec<SeqEvent> {
        let mut all: Vec<SeqEvent> = self.shards.iter().flat_map(|s| s.events()).collect();
        all.sort_by_key(|e| (e.event.ts_us, e.shard, e.seq));
        all
    }

    /// Render the merged timeline as JSON Lines (one event object per
    /// line), ready for `results/trace_*.jsonl`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.merged() {
            let _ = writeln!(
                out,
                "{{\"ts_us\":{},\"shard\":{},\"seq\":{},\"home\":{},\"device\":{},\
                 \"kind\":\"{}\",\"detail\":\"{}\",\"arg\":{}}}",
                e.event.ts_us,
                e.shard,
                e.seq,
                e.event.home,
                e.event.device,
                e.event.kind.as_str(),
                e.event.detail,
                e.event.arg,
            );
        }
        out
    }

    /// Write the merged timeline to `path` as JSONL.
    pub fn dump_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_us: u64, home: u32) -> TraceEvent {
        TraceEvent {
            ts_us,
            home,
            device: 0,
            kind: TraceKind::PacketDecided,
            detail: "rule_hit",
            arg: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_evictions() {
        let r = ShardRecorder::new(0, 3);
        for i in 0..5 {
            r.record(ev(i, 0));
        }
        let kept = r.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(
            kept.iter().map(|e| e.event.ts_us).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(
            kept.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = ShardRecorder::new(0, 0);
        r.record(ev(1, 0));
        r.record(ev(2, 0));
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].event.ts_us, 2);
    }

    #[test]
    fn merge_orders_by_ts_then_shard_then_seq() {
        let fr = FlightRecorder::new(2, 16);
        // Shard 1 records first in wall time, but its events carry later
        // simulated timestamps: the merge must follow the sim clock.
        fr.shard(1).record(ev(50, 1));
        fr.shard(1).record(ev(10, 1));
        fr.shard(0).record(ev(10, 0));
        fr.shard(0).record(ev(20, 0));
        let merged = fr.merged();
        let order: Vec<(u64, u32, u64)> = merged
            .iter()
            .map(|e| (e.event.ts_us, e.shard, e.seq))
            .collect();
        assert_eq!(order, vec![(10, 0, 0), (10, 1, 1), (20, 0, 1), (50, 1, 0)]);
    }

    #[test]
    fn merged_timeline_is_schedule_independent() {
        // Record the same per-shard streams in two different interleaved
        // orders; the merged timelines must be identical.
        let mk = |order_flip: bool| {
            let fr = FlightRecorder::new(2, 8);
            let a = fr.shard(0);
            let b = fr.shard(1);
            if order_flip {
                b.record(ev(5, 1));
                a.record(ev(1, 0));
                b.record(ev(7, 1));
                a.record(ev(3, 0));
            } else {
                a.record(ev(1, 0));
                a.record(ev(3, 0));
                b.record(ev(5, 1));
                b.record(ev(7, 1));
            }
            fr.merged()
        };
        assert_eq!(mk(false), mk(true));
    }

    #[test]
    fn jsonl_shape() {
        let fr = FlightRecorder::new(1, 8);
        fr.shard(0).record(TraceEvent {
            ts_us: 42,
            home: 7,
            device: 3,
            kind: TraceKind::QuarantineReleased,
            detail: "",
            arg: 9,
        });
        let jsonl = fr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"ts_us\":42"));
        assert!(jsonl.contains("\"kind\":\"quarantine_released\""));
        assert!(jsonl.contains("\"arg\":9"));
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn feeder_ring_is_extra() {
        let fr = FlightRecorder::new(4, 8);
        assert_eq!(fr.feeder_index(), 4);
        fr.shard(fr.feeder_index()).record(ev(1, 0));
        assert_eq!(fr.total(), 1);
    }
}
