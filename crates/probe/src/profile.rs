//! Per-shard wall-time accounting for the fleet runtime.
//!
//! The shard loop is a four-state machine — wait for work, decide a
//! home, merge its registry, repeat — and the feeder adds two more
//! costs from the outside: time blocked pushing into a full shard
//! channel (backpressure) and time the collector waits at the merge
//! barrier for the shard to finish. A [`ShardProfile`] buckets all of
//! it into named [`Stage`]s whose sum, with the residual reported as
//! [`Stage::Idle`], equals the shard's measured wall time by
//! construction — so the breakdown always accounts for 100% of where
//! the time went, and a flat scaling curve decomposes into named,
//! rankable costs.

use fiat_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A named time bucket in the shard/fleet breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Shard blocked on its work channel waiting for a home.
    Recv,
    /// Shard running a home's capture through its proxy (useful work).
    Decide,
    /// Shard folding a finished home's registry and stats into its own.
    Merge,
    /// Feeder blocked sending a home into this shard's full channel.
    Dispatch,
    /// Collector waiting at the merge barrier for this shard to exit.
    MergeWait,
    /// Residual: shard wall time not attributed to recv/decide/merge
    /// (loop bookkeeping, probe overhead itself).
    Idle,
}

impl Stage {
    /// All stages, in breakdown-table column order.
    pub const ALL: [Stage; 6] = [
        Stage::Recv,
        Stage::Decide,
        Stage::Merge,
        Stage::Dispatch,
        Stage::MergeWait,
        Stage::Idle,
    ];

    /// Stages accumulated inside the shard loop itself (their sum plus
    /// idle equals the shard's wall time).
    pub const IN_SHARD: [Stage; 3] = [Stage::Recv, Stage::Decide, Stage::Merge];

    /// Stable snake_case name used as the telemetry `stage` label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Decide => "decide",
            Stage::Merge => "merge",
            Stage::Dispatch => "dispatch",
            Stage::MergeWait => "merge_wait",
            Stage::Idle => "idle",
        }
    }

    /// What to suspect when this stage dominates non-decide time.
    fn suspicion(self) -> &'static str {
        match self {
            Stage::Recv => "shard starvation: the feeder cannot keep shards supplied",
            Stage::Decide => "serial per-home decide cost (allocation or locks in the shard loop)",
            Stage::Merge => "per-home registry merge cost inside the shard loop",
            Stage::Dispatch => {
                "channel backpressure: shard queues too shallow for the arrival rate"
            }
            Stage::MergeWait => "merge-barrier skew: uneven home cost leaves shards waiting",
            Stage::Idle => "unattributed shard time (probe or loop overhead)",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Recv => 0,
            Stage::Decide => 1,
            Stage::Merge => 2,
            Stage::Dispatch => 3,
            Stage::MergeWait => 4,
            Stage::Idle => 5,
        }
    }
}

/// One shard's accounted run.
#[derive(Debug, Clone, Default)]
pub struct ShardProfile {
    /// Shard index.
    pub shard: usize,
    /// Nanoseconds per stage ([`Stage::index`] order). `Idle` is not
    /// written directly; it is derived as the wall residual.
    nanos: [u64; 6],
    /// Heap allocations per stage (from [`crate::alloc`]'s per-thread
    /// counter; all zero unless the binary installs the counting
    /// allocator).
    allocs: [u64; 6],
    /// The shard's total wall time, from first spawn to loop exit.
    pub wall_nanos: u64,
    /// Homes this shard decided.
    pub homes: u64,
    /// Packets this shard decided.
    pub packets: u64,
    /// Channel queue-depth high-water mark observed for this shard.
    pub queue_highwater: u64,
    /// Sends into this shard's channel that found it full.
    pub send_blocks: u64,
}

impl ShardProfile {
    /// An empty profile for `shard`.
    pub fn new(shard: usize) -> Self {
        ShardProfile {
            shard,
            ..Default::default()
        }
    }

    /// Add measured time to a stage.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.nanos[stage.index()] += d.as_nanos() as u64;
    }

    /// Add an allocation count to a stage.
    pub fn add_allocs(&mut self, stage: Stage, n: u64) {
        self.allocs[stage.index()] += n;
    }

    /// Nanoseconds attributed to a stage. [`Stage::Idle`] is the wall
    /// residual after the in-shard stages (zero if over-accounted).
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        if stage == Stage::Idle {
            let accounted: u64 = Stage::IN_SHARD.iter().map(|s| self.nanos[s.index()]).sum();
            self.wall_nanos.saturating_sub(accounted)
        } else {
            self.nanos[stage.index()]
        }
    }

    /// Allocations attributed to a stage.
    pub fn stage_allocs(&self, stage: Stage) -> u64 {
        self.allocs[stage.index()]
    }

    /// Fraction of this shard's wall time accounted by in-shard stages
    /// plus the idle residual (1.0 by construction unless stages
    /// over-accounted past the wall, which caps at 1.0 too).
    pub fn coverage(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 1.0;
        }
        let total: u64 = Stage::IN_SHARD
            .iter()
            .map(|s| self.stage_nanos(*s))
            .sum::<u64>()
            + self.stage_nanos(Stage::Idle);
        (total as f64 / self.wall_nanos as f64).min(1.0)
    }
}

/// Channel-depth probe: the feeder bumps on send, the shard drops on
/// recv, and the high-water mark survives for the profile. `std::mpsc`
/// exposes no queue length, so the probe keeps its own.
#[derive(Debug, Default)]
pub struct QueueDepthProbe {
    depth: AtomicI64,
    high: AtomicU64,
}

impl QueueDepthProbe {
    /// A probe starting at depth zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note one item entering the queue.
    pub fn on_send(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > 0 {
            self.high.fetch_max(d as u64, Ordering::Relaxed);
        }
    }

    /// Note one item leaving the queue.
    pub fn on_recv(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Deepest the queue has been.
    pub fn highwater(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// The whole fleet run, accounted.
#[derive(Debug, Clone, Default)]
pub struct FleetProfile {
    /// Per-shard profiles, in shard order.
    pub shards: Vec<ShardProfile>,
    /// Wall time of the whole sharded run (spawn to fold complete).
    pub wall_nanos: u64,
    /// Time the collector spent folding shard outcomes after the
    /// barrier.
    pub fold_nanos: u64,
    /// Flight-recorder volume, if one ran: (recorded, evicted).
    pub recorder_events: Option<(u64, u64)>,
}

impl FleetProfile {
    /// Total nanoseconds across shards for one stage.
    pub fn stage_total(&self, stage: Stage) -> u64 {
        self.shards.iter().map(|s| s.stage_nanos(stage)).sum()
    }

    /// A stage's share of total shard wall time (0.0 when nothing ran).
    pub fn stage_share(&self, stage: Stage) -> f64 {
        let wall: u64 = self.shards.iter().map(|s| s.wall_nanos).sum();
        if wall == 0 {
            0.0
        } else {
            self.stage_total(stage) as f64 / wall as f64
        }
    }

    /// Minimum per-shard coverage: how much of each shard's measured
    /// wall time the breakdown explains. The acceptance bar is ≥ 0.95;
    /// by construction (idle = residual) this is 1.0.
    pub fn coverage(&self) -> f64 {
        self.shards.iter().map(|s| s.coverage()).fold(1.0, f64::min)
    }

    /// Non-decide stages ranked by share of shard wall time, largest
    /// first — the suspected parallelism eaters.
    pub fn ranked_suspects(&self) -> Vec<(Stage, f64)> {
        let mut v: Vec<(Stage, f64)> = [Stage::Recv, Stage::Merge, Stage::MergeWait, Stage::Idle]
            .iter()
            .map(|&s| (s, self.stage_share(s)))
            .collect();
        // Dispatch and merge-wait are measured on the feeder/collector
        // side; normalize them against total shard wall too.
        let wall: u64 = self.shards.iter().map(|s| s.wall_nanos).sum();
        if wall > 0 {
            v.push((
                Stage::Dispatch,
                self.stage_total(Stage::Dispatch) as f64 / wall as f64,
            ));
        }
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// The ranked "top suspected bottleneck" line for the profile
    /// report. Always non-empty.
    pub fn top_bottleneck(&self) -> String {
        match self.ranked_suspects().into_iter().next() {
            Some((stage, share)) => format!(
                "top suspected bottleneck: {} {:.1}% — {}",
                stage.as_str(),
                share * 100.0,
                stage.suspicion()
            ),
            None => "top suspected bottleneck: none (no shards profiled)".to_string(),
        }
    }

    /// Render the per-shard / per-stage breakdown table (milliseconds),
    /// with a fleet totals row.
    pub fn breakdown_table(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>6} {:>9}", "shard", "wall-ms");
        for s in Stage::ALL {
            let _ = write!(out, " {:>10}", s.as_str());
        }
        let _ = writeln!(out, " {:>8} {:>7} {:>12}", "homes", "q-high", "allocs");
        let ms = |n: u64| n as f64 / 1e6;
        for sp in &self.shards {
            let _ = write!(out, "{:>6} {:>9.1}", sp.shard, ms(sp.wall_nanos));
            for s in Stage::ALL {
                let _ = write!(out, " {:>10.1}", ms(sp.stage_nanos(s)));
            }
            let allocs: u64 = Stage::ALL.iter().map(|s| sp.stage_allocs(*s)).sum();
            let _ = writeln!(
                out,
                " {:>8} {:>7} {:>12}",
                sp.homes, sp.queue_highwater, allocs
            );
        }
        let wall: u64 = self.shards.iter().map(|s| s.wall_nanos).sum();
        let _ = write!(out, "{:>6} {:>9.1}", "total", ms(wall));
        for s in Stage::ALL {
            let _ = write!(out, " {:>10.1}", ms(self.stage_total(s)));
        }
        let homes: u64 = self.shards.iter().map(|s| s.homes).sum();
        let allocs: u64 = self
            .shards
            .iter()
            .flat_map(|sp| Stage::ALL.iter().map(move |s| sp.stage_allocs(*s)))
            .sum();
        let high = self
            .shards
            .iter()
            .map(|s| s.queue_highwater)
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, " {:>8} {:>7} {:>12}", homes, high, allocs);
        out
    }

    /// Publish the profile into a registry (the probe registry, *not*
    /// the deterministic merged fleet registry):
    /// `fiat_fleet_shard_busy_ms{shard,stage}`,
    /// `fiat_fleet_queue_highwater{shard}`,
    /// `fiat_fleet_send_blocks_total{shard}`,
    /// `fiat_fleet_shard_allocs{shard,stage}`, and the
    /// `fiat_fleet_merge_wait_us` barrier histogram.
    pub fn publish(&self, registry: &MetricRegistry) {
        registry.describe(
            "fiat_fleet_shard_busy_ms",
            "Wall time a shard spent in each accounted stage.",
        );
        registry.describe(
            "fiat_fleet_queue_highwater",
            "Deepest observed work-queue depth per shard.",
        );
        registry.describe(
            "fiat_fleet_send_blocks_total",
            "Dispatches that found a shard's queue full (backpressure).",
        );
        registry.describe(
            "fiat_fleet_shard_allocs",
            "Heap allocations attributed to a shard stage (0 unless the counting allocator is installed).",
        );
        registry.describe(
            "fiat_fleet_merge_wait_us",
            "Merge-barrier wait per shard: collector time blocked on each shard's exit.",
        );
        let merge_wait = registry.histogram("fiat_fleet_merge_wait_us", &[]);
        for sp in &self.shards {
            let shard = sp.shard.to_string();
            for s in Stage::ALL {
                registry
                    .gauge(
                        "fiat_fleet_shard_busy_ms",
                        &[("shard", shard.as_str()), ("stage", s.as_str())],
                    )
                    .set((sp.stage_nanos(s) / 1_000_000) as i64);
            }
            registry
                .gauge("fiat_fleet_queue_highwater", &[("shard", shard.as_str())])
                .set(sp.queue_highwater as i64);
            registry
                .counter("fiat_fleet_send_blocks_total", &[("shard", shard.as_str())])
                .add(sp.send_blocks);
            for s in Stage::ALL {
                let n = sp.stage_allocs(s);
                if n > 0 {
                    registry
                        .gauge(
                            "fiat_fleet_shard_allocs",
                            &[("shard", shard.as_str()), ("stage", s.as_str())],
                        )
                        .set(n as i64);
                }
            }
            merge_wait.record(sp.stage_nanos(Stage::MergeWait) / 1_000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(shard: usize, wall_ms: u64, decide_ms: u64, recv_ms: u64) -> ShardProfile {
        let mut p = ShardProfile::new(shard);
        p.wall_nanos = wall_ms * 1_000_000;
        p.add(Stage::Decide, Duration::from_millis(decide_ms));
        p.add(Stage::Recv, Duration::from_millis(recv_ms));
        p
    }

    #[test]
    fn idle_is_the_wall_residual_and_coverage_is_total() {
        let p = profile_with(0, 100, 60, 25);
        assert_eq!(p.stage_nanos(Stage::Decide), 60_000_000);
        assert_eq!(p.stage_nanos(Stage::Idle), 15_000_000);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
        // Over-accounting (stages > wall) caps coverage at 1.0.
        let p = profile_with(1, 10, 20, 0);
        assert_eq!(p.stage_nanos(Stage::Idle), 0);
        assert!(p.coverage() <= 1.0);
    }

    #[test]
    fn fleet_coverage_meets_the_acceptance_bar() {
        let fp = FleetProfile {
            shards: vec![profile_with(0, 100, 70, 20), profile_with(1, 100, 40, 55)],
            wall_nanos: 110_000_000,
            fold_nanos: 1_000_000,
            recorder_events: None,
        };
        assert!(fp.coverage() >= 0.95);
        assert!((fp.stage_share(Stage::Decide) - 0.55).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_ranking_names_the_dominant_non_decide_stage() {
        let mut a = profile_with(0, 100, 30, 65);
        a.queue_highwater = 1;
        let fp = FleetProfile {
            shards: vec![a],
            wall_nanos: 100_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        let top = fp.top_bottleneck();
        assert!(top.starts_with("top suspected bottleneck: recv"), "{top}");
        assert!(top.contains("starvation"), "{top}");
        let ranked = fp.ranked_suspects();
        assert_eq!(ranked[0].0, Stage::Recv);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn breakdown_table_has_all_stages_and_a_total_row() {
        let fp = FleetProfile {
            shards: vec![profile_with(0, 50, 40, 5), profile_with(1, 50, 35, 10)],
            wall_nanos: 55_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        let t = fp.breakdown_table();
        for s in Stage::ALL {
            assert!(t.contains(s.as_str()), "missing {}", s.as_str());
        }
        assert!(t.contains("total"));
        assert_eq!(t.lines().count(), 4); // header + 2 shards + total
    }

    #[test]
    fn publish_writes_probe_metrics() {
        let mut p = profile_with(0, 100, 60, 25);
        p.add(Stage::MergeWait, Duration::from_millis(7));
        p.queue_highwater = 3;
        p.send_blocks = 2;
        p.add_allocs(Stage::Decide, 11);
        let fp = FleetProfile {
            shards: vec![p],
            wall_nanos: 100_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        let r = MetricRegistry::new();
        fp.publish(&r);
        assert_eq!(
            r.gauge(
                "fiat_fleet_shard_busy_ms",
                &[("shard", "0"), ("stage", "decide")]
            )
            .get(),
            60
        );
        assert_eq!(
            r.gauge("fiat_fleet_queue_highwater", &[("shard", "0")])
                .get(),
            3
        );
        assert_eq!(
            r.counter("fiat_fleet_send_blocks_total", &[("shard", "0")])
                .get(),
            2
        );
        assert_eq!(
            r.gauge(
                "fiat_fleet_shard_allocs",
                &[("shard", "0"), ("stage", "decide")]
            )
            .get(),
            11
        );
        let h = r.histogram("fiat_fleet_merge_wait_us", &[]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7_000);
    }

    #[test]
    fn queue_depth_probe_tracks_highwater() {
        let q = QueueDepthProbe::new();
        q.on_send();
        q.on_send();
        q.on_recv();
        q.on_send();
        q.on_send();
        assert_eq!(q.highwater(), 3);
        q.on_recv();
        q.on_recv();
        q.on_recv();
        assert_eq!(q.highwater(), 3);
    }
}
