//! Per-shard wall-time accounting for the fleet runtime.
//!
//! The shard loop is a state machine — claim a home (own queue or a
//! steal), decide it, merge its registry, repeat — and the coordinator
//! thread adds two costs of its own: building the partition plan and
//! waiting at the join barrier. A [`ShardProfile`] buckets one thread's
//! run into named [`Stage`]s whose sum, with the residual reported as
//! [`Stage::Idle`], equals that thread's measured wall time by
//! construction — so the breakdown always accounts for 100% of where
//! the time went, and a flat scaling curve decomposes into named,
//! rankable costs.
//!
//! Every stage in a row is measured *on that row's thread*. Coordinator
//! stages ([`Stage::Dispatch`] plan time, [`Stage::MergeWait`] barrier
//! skew) live on their own `coord` row in [`FleetProfile`], never inside
//! a shard's row — PR 6's profiler folded feeder time into shard rows,
//! which made stage totals exceed wall time at low shard counts and the
//! ranker emit a bogus "dispatch 98.6%" verdict. The ranker now
//! normalizes each stage against the wall time of the thread that
//! measured it, so cross-thread over-accounting cannot happen.

use fiat_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A named time bucket in the shard/fleet breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Shard claiming its next home (own queue or a steal scan).
    Recv,
    /// Shard running a home's capture through its proxy (useful work).
    Decide,
    /// Shard folding a finished home's registry and stats into its own.
    Merge,
    /// Coordinator building the cost-aware partition plan.
    Dispatch,
    /// Join-barrier skew: how much later the last shard finished than
    /// the first (coordinator row).
    MergeWait,
    /// Residual: a thread's wall time not attributed to any measured
    /// stage (loop bookkeeping, probe overhead itself).
    Idle,
}

impl Stage {
    /// All stages, in breakdown-table column order.
    pub const ALL: [Stage; 6] = [
        Stage::Recv,
        Stage::Decide,
        Stage::Merge,
        Stage::Dispatch,
        Stage::MergeWait,
        Stage::Idle,
    ];

    /// Directly measured stages (everything but the derived residual).
    pub const MEASURED: [Stage; 5] = [
        Stage::Recv,
        Stage::Decide,
        Stage::Merge,
        Stage::Dispatch,
        Stage::MergeWait,
    ];

    /// Stages accumulated inside the shard claim loop.
    pub const IN_SHARD: [Stage; 3] = [Stage::Recv, Stage::Decide, Stage::Merge];

    /// Stages measured on the coordinator thread.
    pub const COORDINATOR: [Stage; 2] = [Stage::Dispatch, Stage::MergeWait];

    /// Stable snake_case name used as the telemetry `stage` label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Decide => "decide",
            Stage::Merge => "merge",
            Stage::Dispatch => "dispatch",
            Stage::MergeWait => "merge_wait",
            Stage::Idle => "idle",
        }
    }

    /// What to suspect when this stage dominates non-decide time.
    fn suspicion(self) -> &'static str {
        match self {
            Stage::Recv => "work-claim overhead: shards contending on the claim queues",
            Stage::Decide => "serial per-home decide cost (allocation or locks in the shard loop)",
            Stage::Merge => "per-home registry merge cost inside the shard loop",
            Stage::Dispatch => "partition planning cost on the coordinator",
            Stage::MergeWait => {
                "join-barrier skew: uneven shard finish times (stealing not keeping up)"
            }
            Stage::Idle => "unattributed shard time (probe or loop overhead)",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Recv => 0,
            Stage::Decide => 1,
            Stage::Merge => 2,
            Stage::Dispatch => 3,
            Stage::MergeWait => 4,
            Stage::Idle => 5,
        }
    }
}

/// One thread's accounted run (a shard's claim loop, or the
/// coordinator's plan + barrier row).
#[derive(Debug, Clone, Default)]
pub struct ShardProfile {
    /// Shard index (unused on the coordinator row).
    pub shard: usize,
    /// Nanoseconds per stage ([`Stage::index`] order). `Idle` is not
    /// written directly; it is derived as the wall residual.
    nanos: [u64; 6],
    /// Heap allocations per stage (from [`crate::alloc`]'s per-thread
    /// counter; all zero unless the binary installs the counting
    /// allocator).
    allocs: [u64; 6],
    /// The thread's total accounted wall time.
    pub wall_nanos: u64,
    /// Homes this shard decided (assigned claims plus steals).
    pub homes: u64,
    /// Packets this shard decided.
    pub packets: u64,
    /// Homes the partition plan statically assigned to this shard.
    pub assigned: u64,
    /// Homes this shard claimed from *other* shards' queues.
    pub steals: u64,
}

impl ShardProfile {
    /// An empty profile for `shard`.
    pub fn new(shard: usize) -> Self {
        ShardProfile {
            shard,
            ..Default::default()
        }
    }

    /// Add measured time to a stage.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.nanos[stage.index()] += d.as_nanos() as u64;
    }

    /// Add an allocation count to a stage.
    pub fn add_allocs(&mut self, stage: Stage, n: u64) {
        self.allocs[stage.index()] += n;
    }

    /// Nanoseconds attributed to a stage. [`Stage::Idle`] is the wall
    /// residual after every measured stage (zero if over-accounted).
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        if stage == Stage::Idle {
            let accounted: u64 = Stage::MEASURED.iter().map(|s| self.nanos[s.index()]).sum();
            self.wall_nanos.saturating_sub(accounted)
        } else {
            self.nanos[stage.index()]
        }
    }

    /// Allocations attributed to a stage.
    pub fn stage_allocs(&self, stage: Stage) -> u64 {
        self.allocs[stage.index()]
    }

    /// Fraction of this thread's wall time accounted by measured stages
    /// plus the idle residual (1.0 by construction unless stages
    /// over-accounted past the wall, which caps at 1.0 too).
    pub fn coverage(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 1.0;
        }
        let total: u64 = Stage::MEASURED
            .iter()
            .map(|s| self.stage_nanos(*s))
            .sum::<u64>()
            + self.stage_nanos(Stage::Idle);
        (total as f64 / self.wall_nanos as f64).min(1.0)
    }
}

/// Queue-depth probe: the producer bumps *after* an item actually lands
/// in the queue, the consumer drops on recv, and the high-water mark
/// survives for the profile.
///
/// Two corrections over the PR 6 version (which reported a high-water
/// of 6 on a capacity-4 channel): the producer must call [`on_send`]
/// only once the item is enqueued — counting "intent to send" before a
/// blocking send adds in-flight items the queue never held — and, as
/// defense in depth, a probe built with [`with_capacity`] clamps the
/// recorded high-water to the queue's real capacity, so racy
/// interleavings of the two relaxed counters can never report a depth
/// the queue cannot physically reach.
///
/// [`on_send`]: QueueDepthProbe::on_send
/// [`with_capacity`]: QueueDepthProbe::with_capacity
#[derive(Debug)]
pub struct QueueDepthProbe {
    depth: AtomicI64,
    high: AtomicU64,
    capacity: u64,
}

impl Default for QueueDepthProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueDepthProbe {
    /// A probe starting at depth zero, with no capacity clamp.
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// A probe for a queue of known `capacity`: the recorded high-water
    /// can never exceed it.
    pub fn with_capacity(capacity: usize) -> Self {
        QueueDepthProbe {
            depth: AtomicI64::new(0),
            high: AtomicU64::new(0),
            capacity: capacity.max(1) as u64,
        }
    }

    /// Note one item having entered the queue. Call *after* the item is
    /// actually enqueued, never before a send that may block.
    pub fn on_send(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > 0 {
            self.high
                .fetch_max((d as u64).min(self.capacity), Ordering::Relaxed);
        }
    }

    /// Note one item leaving the queue.
    pub fn on_recv(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Deepest the queue has been (clamped to capacity when known).
    pub fn highwater(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// The whole fleet run, accounted.
#[derive(Debug, Clone, Default)]
pub struct FleetProfile {
    /// Per-shard profiles, in shard order.
    pub shards: Vec<ShardProfile>,
    /// The coordinator thread's row: [`Stage::Dispatch`] (partition
    /// planning) and [`Stage::MergeWait`] (join-barrier skew), with
    /// `wall_nanos` equal to their sum so the row covers itself. Never
    /// folded into a shard's row.
    pub coordinator: ShardProfile,
    /// Wall time of the whole sharded run (plan to fold complete).
    pub wall_nanos: u64,
    /// Time the collector spent folding shard outcomes after the
    /// barrier.
    pub fold_nanos: u64,
    /// Flight-recorder volume, if one ran: (recorded, evicted).
    pub recorder_events: Option<(u64, u64)>,
}

impl FleetProfile {
    /// Total nanoseconds for one stage across every row (shards plus
    /// the coordinator; each stage is only ever non-zero on the thread
    /// kind that measures it).
    pub fn stage_total(&self, stage: Stage) -> u64 {
        self.shards
            .iter()
            .map(|s| s.stage_nanos(stage))
            .sum::<u64>()
            + self.coordinator.stage_nanos(stage)
    }

    fn shard_wall(&self) -> u64 {
        self.shards.iter().map(|s| s.wall_nanos).sum()
    }

    /// A stage's share of the wall time of the thread kind that
    /// measures it: shard stages against total shard wall time,
    /// coordinator stages against the fleet run's wall. 0.0 when
    /// nothing ran; capped at 1.0.
    pub fn stage_share(&self, stage: Stage) -> f64 {
        let (num, den) = if Stage::COORDINATOR.contains(&stage) {
            (self.coordinator.stage_nanos(stage), self.wall_nanos)
        } else {
            (
                self.shards.iter().map(|s| s.stage_nanos(stage)).sum(),
                self.shard_wall(),
            )
        };
        if den == 0 {
            0.0
        } else {
            (num as f64 / den as f64).min(1.0)
        }
    }

    /// Minimum per-shard coverage: how much of each shard's measured
    /// wall time the breakdown explains. The acceptance bar is ≥ 0.95;
    /// by construction (idle = residual) this is 1.0.
    pub fn coverage(&self) -> f64 {
        self.shards.iter().map(|s| s.coverage()).fold(1.0, f64::min)
    }

    /// Non-decide stages ranked by share of the wall time of the thread
    /// that measured them, largest first — the suspected parallelism
    /// eaters. Shard stages and coordinator stages are each normalized
    /// on their own thread kind, so a stage can never be blamed for
    /// more time than its thread had (the PR 6 over-accounting bug).
    pub fn ranked_suspects(&self) -> Vec<(Stage, f64)> {
        let mut v: Vec<(Stage, f64)> = [
            Stage::Recv,
            Stage::Merge,
            Stage::Idle,
            Stage::Dispatch,
            Stage::MergeWait,
        ]
        .iter()
        .map(|&s| (s, self.stage_share(s)))
        .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// The ranked "top suspected bottleneck" line for the profile
    /// report. Always non-empty.
    pub fn top_bottleneck(&self) -> String {
        match self.ranked_suspects().into_iter().next() {
            Some((stage, share)) => format!(
                "top suspected bottleneck: {} {:.1}% — {}",
                stage.as_str(),
                share * 100.0,
                stage.suspicion()
            ),
            None => "top suspected bottleneck: none (no shards profiled)".to_string(),
        }
    }

    /// Render the per-thread / per-stage breakdown table
    /// (milliseconds): one row per shard, one `coord` row for the
    /// coordinator's own stages, and a fleet totals row.
    pub fn breakdown_table(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>6} {:>9}", "shard", "wall-ms");
        for s in Stage::ALL {
            let _ = write!(out, " {:>10}", s.as_str());
        }
        let _ = writeln!(
            out,
            " {:>8} {:>8} {:>7} {:>12}",
            "homes", "assigned", "steals", "allocs"
        );
        let ms = |n: u64| n as f64 / 1e6;
        let row_allocs =
            |sp: &ShardProfile| -> u64 { Stage::ALL.iter().map(|s| sp.stage_allocs(*s)).sum() };
        for sp in &self.shards {
            let _ = write!(out, "{:>6} {:>9.1}", sp.shard, ms(sp.wall_nanos));
            for s in Stage::ALL {
                let _ = write!(out, " {:>10.1}", ms(sp.stage_nanos(s)));
            }
            let _ = writeln!(
                out,
                " {:>8} {:>8} {:>7} {:>12}",
                sp.homes,
                sp.assigned,
                sp.steals,
                row_allocs(sp)
            );
        }
        let _ = write!(
            out,
            "{:>6} {:>9.1}",
            "coord",
            ms(self.coordinator.wall_nanos)
        );
        for s in Stage::ALL {
            let _ = write!(out, " {:>10.1}", ms(self.coordinator.stage_nanos(s)));
        }
        let _ = writeln!(
            out,
            " {:>8} {:>8} {:>7} {:>12}",
            0,
            0,
            0,
            row_allocs(&self.coordinator)
        );
        let _ = write!(out, "{:>6} {:>9.1}", "total", ms(self.shard_wall()));
        for s in Stage::ALL {
            let _ = write!(out, " {:>10.1}", ms(self.stage_total(s)));
        }
        let homes: u64 = self.shards.iter().map(|s| s.homes).sum();
        let assigned: u64 = self.shards.iter().map(|s| s.assigned).sum();
        let steals: u64 = self.shards.iter().map(|s| s.steals).sum();
        let allocs: u64 =
            self.shards.iter().map(row_allocs).sum::<u64>() + row_allocs(&self.coordinator);
        let _ = writeln!(
            out,
            " {:>8} {:>8} {:>7} {:>12}",
            homes, assigned, steals, allocs
        );
        out
    }

    /// Publish the profile into a registry (the probe registry, *not*
    /// the deterministic merged fleet registry):
    /// `fiat_fleet_shard_busy_ms{shard,stage}` (shard rows plus
    /// `shard="coord"` for coordinator stages),
    /// `fiat_fleet_assigned_homes{shard}`,
    /// `fiat_fleet_steals_total{shard}`,
    /// `fiat_fleet_shard_allocs{shard,stage}`, the
    /// `fiat_fleet_merge_wait_us` barrier-skew histogram, and — when a
    /// flight recorder ran — the `fiat_probe_ring_evicted_ratio` gauge.
    pub fn publish(&self, registry: &MetricRegistry) {
        registry.describe(
            "fiat_fleet_shard_busy_ms",
            "Wall time a thread spent in each accounted stage (coordinator stages under shard=\"coord\").",
        );
        registry.describe(
            "fiat_fleet_assigned_homes",
            "Homes the cost-aware partition plan statically assigned to each shard.",
        );
        registry.describe(
            "fiat_fleet_steals_total",
            "Homes a shard claimed from other shards' queues (work-stealing tail).",
        );
        registry.describe(
            "fiat_fleet_shard_allocs",
            "Heap allocations attributed to a shard stage (0 unless the counting allocator is installed).",
        );
        registry.describe(
            "fiat_fleet_merge_wait_us",
            "Join-barrier skew: how much later the last shard finished than the first.",
        );
        let merge_wait = registry.histogram("fiat_fleet_merge_wait_us", &[]);
        for sp in &self.shards {
            let shard = sp.shard.to_string();
            for s in Stage::ALL {
                registry
                    .gauge(
                        "fiat_fleet_shard_busy_ms",
                        &[("shard", shard.as_str()), ("stage", s.as_str())],
                    )
                    .set((sp.stage_nanos(s) / 1_000_000) as i64);
            }
            registry
                .gauge("fiat_fleet_assigned_homes", &[("shard", shard.as_str())])
                .set(sp.assigned as i64);
            registry
                .counter("fiat_fleet_steals_total", &[("shard", shard.as_str())])
                .add(sp.steals);
            for s in Stage::ALL {
                let n = sp.stage_allocs(s);
                if n > 0 {
                    registry
                        .gauge(
                            "fiat_fleet_shard_allocs",
                            &[("shard", shard.as_str()), ("stage", s.as_str())],
                        )
                        .set(n as i64);
                }
            }
        }
        for s in Stage::COORDINATOR {
            registry
                .gauge(
                    "fiat_fleet_shard_busy_ms",
                    &[("shard", "coord"), ("stage", s.as_str())],
                )
                .set((self.coordinator.stage_nanos(s) / 1_000_000) as i64);
        }
        merge_wait.record(self.coordinator.stage_nanos(Stage::MergeWait) / 1_000);
        if let Some((total, dropped)) = self.recorder_events {
            registry.describe(
                "fiat_probe_ring_evicted_ratio",
                "Per-mille of flight-recorder events evicted from the bounded rings (1000 = nothing retained).",
            );
            let permille = dropped.saturating_mul(1000).checked_div(total).unwrap_or(0) as i64;
            registry
                .gauge("fiat_probe_ring_evicted_ratio", &[])
                .set(permille);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(shard: usize, wall_ms: u64, decide_ms: u64, recv_ms: u64) -> ShardProfile {
        let mut p = ShardProfile::new(shard);
        p.wall_nanos = wall_ms * 1_000_000;
        p.add(Stage::Decide, Duration::from_millis(decide_ms));
        p.add(Stage::Recv, Duration::from_millis(recv_ms));
        p
    }

    fn coordinator_with(dispatch_ms: u64, skew_ms: u64) -> ShardProfile {
        let mut c = ShardProfile::new(0);
        c.add(Stage::Dispatch, Duration::from_millis(dispatch_ms));
        c.add(Stage::MergeWait, Duration::from_millis(skew_ms));
        c.wall_nanos = (dispatch_ms + skew_ms) * 1_000_000;
        c
    }

    #[test]
    fn idle_is_the_wall_residual_and_coverage_is_total() {
        let p = profile_with(0, 100, 60, 25);
        assert_eq!(p.stage_nanos(Stage::Decide), 60_000_000);
        assert_eq!(p.stage_nanos(Stage::Idle), 15_000_000);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
        // Over-accounting (stages > wall) caps coverage at 1.0.
        let p = profile_with(1, 10, 20, 0);
        assert_eq!(p.stage_nanos(Stage::Idle), 0);
        assert!(p.coverage() <= 1.0);
    }

    #[test]
    fn fleet_coverage_meets_the_acceptance_bar() {
        let fp = FleetProfile {
            shards: vec![profile_with(0, 100, 70, 20), profile_with(1, 100, 40, 55)],
            coordinator: coordinator_with(1, 2),
            wall_nanos: 110_000_000,
            fold_nanos: 1_000_000,
            recorder_events: None,
        };
        assert!(fp.coverage() >= 0.95);
        assert!((fp.stage_share(Stage::Decide) - 0.55).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_ranking_names_the_dominant_non_decide_stage() {
        let a = profile_with(0, 100, 30, 65);
        let fp = FleetProfile {
            shards: vec![a],
            coordinator: coordinator_with(0, 1),
            wall_nanos: 100_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        let top = fp.top_bottleneck();
        assert!(top.starts_with("top suspected bottleneck: recv"), "{top}");
        assert!(top.contains("claim"), "{top}");
        let ranked = fp.ranked_suspects();
        assert_eq!(ranked[0].0, Stage::Recv);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn coordinator_stages_stay_off_shard_rows_and_rank_against_fleet_wall() {
        // The PR 6 regression: at shards=1 the feeder's blocked time was
        // folded into shard 0's row, so stage totals summed to ~2x the
        // wall and the ranker proclaimed "dispatch 98.6%". With the
        // coordinator on its own row, shard stage totals can never
        // exceed shard wall, and coordinator stages normalize against
        // the fleet wall.
        let shard = profile_with(0, 893, 837, 23);
        let fp = FleetProfile {
            shards: vec![shard],
            coordinator: coordinator_with(2, 4),
            wall_nanos: 894_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        // Shard rows account to exactly their own wall.
        let shard_stage_sum: u64 = Stage::ALL
            .iter()
            .map(|&s| fp.shards[0].stage_nanos(s))
            .sum();
        assert_eq!(shard_stage_sum, fp.shards[0].wall_nanos);
        // Dispatch is tiny relative to the fleet wall, so the verdict
        // cannot be a bogus dispatch blame.
        assert!(fp.stage_share(Stage::Dispatch) < 0.01);
        let top = fp.top_bottleneck();
        assert!(!top.contains("dispatch"), "{top}");
        // Every ranked share is a sane fraction.
        for (stage, share) in fp.ranked_suspects() {
            assert!(
                (0.0..=1.0).contains(&share),
                "{} share {share}",
                stage.as_str()
            );
        }
    }

    #[test]
    fn breakdown_table_has_all_stages_a_coord_row_and_a_total_row() {
        let fp = FleetProfile {
            shards: vec![profile_with(0, 50, 40, 5), profile_with(1, 50, 35, 10)],
            coordinator: coordinator_with(1, 3),
            wall_nanos: 55_000_000,
            fold_nanos: 0,
            recorder_events: None,
        };
        let t = fp.breakdown_table();
        for s in Stage::ALL {
            assert!(t.contains(s.as_str()), "missing {}", s.as_str());
        }
        assert!(t.contains("coord"));
        assert!(t.contains("assigned"));
        assert!(t.contains("steals"));
        assert!(t.contains("total"));
        assert_eq!(t.lines().count(), 5); // header + 2 shards + coord + total
    }

    #[test]
    fn publish_writes_probe_metrics() {
        let mut p = profile_with(0, 100, 60, 25);
        p.assigned = 5;
        p.steals = 2;
        p.add_allocs(Stage::Decide, 11);
        let fp = FleetProfile {
            shards: vec![p],
            coordinator: coordinator_with(1, 7),
            wall_nanos: 100_000_000,
            fold_nanos: 0,
            recorder_events: Some((1000, 250)),
        };
        let r = MetricRegistry::new();
        fp.publish(&r);
        assert_eq!(
            r.gauge(
                "fiat_fleet_shard_busy_ms",
                &[("shard", "0"), ("stage", "decide")]
            )
            .get(),
            60
        );
        assert_eq!(
            r.gauge(
                "fiat_fleet_shard_busy_ms",
                &[("shard", "coord"), ("stage", "merge_wait")]
            )
            .get(),
            7
        );
        assert_eq!(
            r.gauge("fiat_fleet_assigned_homes", &[("shard", "0")])
                .get(),
            5
        );
        assert_eq!(
            r.counter("fiat_fleet_steals_total", &[("shard", "0")])
                .get(),
            2
        );
        assert_eq!(
            r.gauge(
                "fiat_fleet_shard_allocs",
                &[("shard", "0"), ("stage", "decide")]
            )
            .get(),
            11
        );
        let h = r.histogram("fiat_fleet_merge_wait_us", &[]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7_000);
        assert_eq!(r.gauge("fiat_probe_ring_evicted_ratio", &[]).get(), 250);
    }

    #[test]
    fn queue_depth_probe_tracks_highwater() {
        let q = QueueDepthProbe::new();
        q.on_send();
        q.on_send();
        q.on_recv();
        q.on_send();
        q.on_send();
        assert_eq!(q.highwater(), 3);
        q.on_recv();
        q.on_recv();
        q.on_recv();
        assert_eq!(q.highwater(), 3);
    }

    #[test]
    fn queue_depth_probe_clamps_to_capacity() {
        let q = QueueDepthProbe::with_capacity(4);
        for _ in 0..6 {
            q.on_send();
        }
        assert_eq!(q.highwater(), 4);
    }

    #[test]
    fn highwater_never_exceeds_capacity_on_a_real_channel() {
        // Regression for the PR 6 bug (high-water 6 on a capacity-4
        // channel): drive a real bounded channel with the feeder's old
        // try_send-then-blocking-send pattern — the probe must be bumped
        // only once the item lands, and the clamp bounds whatever the
        // racy counters produce.
        use std::sync::mpsc::{self, TrySendError};
        const CAP: usize = 4;
        let q = QueueDepthProbe::with_capacity(CAP);
        let (tx, rx) = mpsc::sync_channel::<u32>(CAP);
        std::thread::scope(|s| {
            let q = &q;
            s.spawn(move || {
                for i in 0..256u32 {
                    match tx.try_send(i) {
                        Ok(()) => {}
                        Err(TrySendError::Full(v)) => tx.send(v).unwrap(),
                        Err(TrySendError::Disconnected(_)) => unreachable!(),
                    }
                    q.on_send();
                }
            });
            s.spawn(move || {
                let mut slow = 0u32;
                while let Ok(v) = rx.recv() {
                    q.on_recv();
                    // Vary consumer speed so the queue actually fills.
                    slow = slow.wrapping_add(v);
                    if slow.is_multiple_of(7) {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert!(q.highwater() >= 1);
        assert!(q.highwater() <= CAP as u64, "highwater {}", q.highwater());
    }
}
