//! The counting allocator, promoted from PR 2's one-off proof test into
//! a reusable probe.
//!
//! A binary (or test file) opts in by installing it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fiat_probe::CountingAllocator = fiat_probe::CountingAllocator;
//! ```
//!
//! Counting is two relaxed operations per allocation — one process-wide
//! atomic, one thread-local cell. The thread-local counter is what makes
//! the probe useful for the sharded fleet: each shard thread reads its
//! *own* delta around a stage, so concurrent shards do not pollute each
//! other's attribution the way PR 2's single global counter would.
//! Libraries never install the allocator; when it is not installed every
//! reader below returns 0 and the profile simply reports no allocation
//! data.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` that counts allocations (global and
/// per-thread) and forwards to [`System`]. Deallocations are free.
pub struct CountingAllocator;

#[inline]
fn count_one() {
    GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // `try_with`: never panic if TLS is unavailable (thread teardown).
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocations counted process-wide since start (0 if the counting
/// allocator is not installed).
pub fn global_allocations() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

/// Allocations counted on the calling thread since it started (0 if the
/// counting allocator is not installed).
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Measures the calling thread's allocations across a region:
///
/// ```ignore
/// let scope = AllocScope::enter();
/// do_work();
/// profile.add_allocs(Stage::Decide, scope.delta());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start: u64,
}

impl AllocScope {
    /// Snapshot the current thread's allocation count.
    pub fn enter() -> Self {
        AllocScope {
            start: thread_allocations(),
        }
    }

    /// Allocations on this thread since [`AllocScope::enter`].
    pub fn delta(&self) -> u64 {
        thread_allocations() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is NOT installed in unit tests (that would perturb
    // every other test in this crate); `tests/overhead.rs` installs it
    // and exercises real counting. Here we check the uninstalled
    // readers are total and the scope arithmetic holds.
    #[test]
    fn readers_are_total_without_installation() {
        let g0 = global_allocations();
        let t0 = thread_allocations();
        let _v: Vec<u64> = (0..100).collect();
        assert!(global_allocations() >= g0);
        assert!(thread_allocations() >= t0);
        let scope = AllocScope::enter();
        assert_eq!(scope.delta(), thread_allocations() - scope.start);
    }
}
