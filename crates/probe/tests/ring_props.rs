//! Property tests on the flight-recorder ring buffer: eviction must keep
//! each shard's retained events in record order, gap-free at the tail,
//! and the deterministic merge must respect per-shard order.

use fiat_probe::{FlightRecorder, ShardRecorder, TraceEvent, TraceKind};
use proptest::prelude::*;

fn ev(ts_us: u64, home: u32) -> TraceEvent {
    TraceEvent {
        ts_us,
        home,
        device: 0,
        kind: TraceKind::PacketDecided,
        detail: "rule_hit",
        arg: 0,
    }
}

proptest! {
    /// Whatever the capacity and event stream, the retained window is
    /// exactly the most recent `min(n, capacity)` events, in record
    /// order, with consecutive sequence numbers and an eviction count
    /// that accounts for the rest.
    #[test]
    fn eviction_preserves_order_and_keeps_the_tail(
        capacity in 1usize..64,
        ts in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let r = ShardRecorder::new(0, capacity);
        for &t in &ts {
            r.record(ev(t, 0));
        }
        let kept = r.events();
        let expect_len = ts.len().min(capacity);
        prop_assert_eq!(kept.len(), expect_len);
        prop_assert_eq!(r.total(), ts.len() as u64);
        prop_assert_eq!(r.dropped(), (ts.len() - expect_len) as u64);
        // The window is the tail of the stream, in order: seq numbers
        // are consecutive and end at total-1, and timestamps replay the
        // input tail exactly.
        for (i, e) in kept.iter().enumerate() {
            let pos = ts.len() - expect_len + i;
            prop_assert_eq!(e.seq, pos as u64);
            prop_assert_eq!(e.event.ts_us, ts[pos]);
        }
    }

    /// The merged fleet timeline is sorted by (ts, shard, seq), and when
    /// each shard's stream is clock-monotone (as a single home's
    /// decision stream is), the merge never reorders two events of the
    /// same shard.
    #[test]
    fn merge_is_sorted_and_per_shard_stable(
        a in prop::collection::vec(0u64..10_000, 0..60),
        b in prop::collection::vec(0u64..10_000, 0..60),
        capacity in 1usize..32,
    ) {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let fr = FlightRecorder::new(2, capacity);
        for &t in &a {
            fr.shard(0).record(ev(t, 0));
        }
        for &t in &b {
            fr.shard(1).record(ev(t, 1));
        }
        let merged = fr.merged();
        let keys: Vec<(u64, u32, u64)> =
            merged.iter().map(|e| (e.event.ts_us, e.shard, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&keys, &sorted);
        // Per-shard subsequences keep record order (seq strictly
        // increasing).
        for shard in 0..2u32 {
            let seqs: Vec<u64> = merged
                .iter()
                .filter(|e| e.shard == shard)
                .map(|e| e.seq)
                .collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
