//! Property tests on the flight-recorder ring buffer: eviction must keep
//! each shard's retained events in record order with the tail intact,
//! and the deterministic merge must not depend on which ring (= which
//! shard, under work stealing) a home's stream landed in.

use fiat_probe::{FlightRecorder, ShardRecorder, TraceEvent, TraceKind};
use proptest::prelude::*;

fn ev(ts_us: u64, home: u32, seq: u64) -> TraceEvent {
    TraceEvent {
        ts_us,
        home,
        seq,
        device: 0,
        kind: TraceKind::PacketDecided,
        detail: "rule_hit",
        arg: 0,
    }
}

proptest! {
    /// Whatever the capacity and event stream, the retained window is
    /// exactly the most recent `min(n, capacity)` events, in record
    /// order, with an eviction count that accounts for the rest.
    #[test]
    fn eviction_preserves_order_and_keeps_the_tail(
        capacity in 1usize..64,
        ts in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let r = ShardRecorder::new(capacity);
        for (i, &t) in ts.iter().enumerate() {
            r.record(ev(t, 0, i as u64));
        }
        let kept = r.events();
        let expect_len = ts.len().min(capacity);
        prop_assert_eq!(kept.len(), expect_len);
        prop_assert_eq!(r.total(), ts.len() as u64);
        prop_assert_eq!(r.dropped(), (ts.len() - expect_len) as u64);
        // The window is the tail of the stream, in order: per-home seqs
        // are consecutive and end at total-1, and timestamps replay the
        // input tail exactly.
        for (i, e) in kept.iter().enumerate() {
            let pos = ts.len() - expect_len + i;
            prop_assert_eq!(e.seq, pos as u64);
            prop_assert_eq!(e.ts_us, ts[pos]);
        }
        // The eviction ratio matches the drop accounting.
        let fr_like_ratio = if ts.is_empty() {
            0.0
        } else {
            r.dropped() as f64 / r.total() as f64
        };
        prop_assert!((0.0..=1.0).contains(&fr_like_ratio));
    }

    /// The merged fleet timeline is sorted by (ts, home, seq), never
    /// reorders one home's stream (monotone in (ts, seq) as a home's
    /// decision stream is), and — the work-stealing guarantee — is
    /// byte-identical no matter which shard's ring each home's stream
    /// was recorded into.
    #[test]
    fn merge_is_sorted_stable_and_placement_independent(
        a in prop::collection::vec(0u64..10_000, 0..60),
        b in prop::collection::vec(0u64..10_000, 0..60),
        flip in any::<bool>(),
    ) {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        b.sort_unstable();
        let record_all = |fr: &FlightRecorder, swap: bool| {
            let (ring_a, ring_b) = if swap {
                (fr.shard(1), fr.shard(0))
            } else {
                (fr.shard(0), fr.shard(1))
            };
            for (i, &t) in a.iter().enumerate() {
                ring_a.record(ev(t, 0, i as u64));
            }
            for (i, &t) in b.iter().enumerate() {
                ring_b.record(ev(t, 1, i as u64));
            }
        };
        // Capacity large enough that nothing evicts: placement must not
        // matter at all.
        let fr1 = FlightRecorder::new(2, 64);
        record_all(&fr1, false);
        let fr2 = FlightRecorder::new(2, 64);
        record_all(&fr2, flip);
        prop_assert_eq!(fr1.to_jsonl(), fr2.to_jsonl());

        let merged = fr1.merged();
        let keys: Vec<(u64, u32, u64)> =
            merged.iter().map(|e| (e.ts_us, e.home, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&keys, &sorted);
        // Per-home subsequences keep record order (seq strictly
        // increasing).
        for home in 0..2u32 {
            let seqs: Vec<u64> = merged
                .iter()
                .filter(|e| e.home == home)
                .map(|e| e.seq)
                .collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
