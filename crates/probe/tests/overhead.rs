//! The off-by-default guarantee, made checkable: with no [`ProxyHook`]
//! installed, the probe layer must add nothing to the decide hot path —
//! in particular, zero heap allocations per steady-state rule-hit
//! decision through the full `FiatProxy::on_packet` path (hook check,
//! telemetry, journal and all).
//!
//! [`CountingAllocator`] is this crate's own probe; using it to prove
//! the probes-off state keeps the claim honest. The file holds exactly
//! one test so no concurrent test thread can perturb the counters.

use fiat_core::{FiatProxy, ProxyConfig, ProxyHook};
use fiat_net::{
    Direction, DnsTable, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport,
};
use fiat_probe::{thread_allocations, AllocScope, CountingAllocator};
use fiat_sensors::HumannessValidator;
use std::net::Ipv4Addr;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const PERIOD_US: u64 = 60_000_000; // one packet a minute: a clean rule

fn pkt(ts_us: u64, remote_ip: Ipv4Addr, size: u16) -> PacketRecord {
    PacketRecord {
        ts: SimTime::from_micros(ts_us),
        device: 0,
        direction: Direction::FromDevice,
        local_ip: Ipv4Addr::new(192, 168, 1, 2),
        remote_ip,
        local_port: 40_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::ack(),
        tls: TlsVersion::None,
        size,
        label: TrafficClass::Control,
    }
}

#[test]
fn probes_off_decide_path_does_not_allocate() {
    let remote = Ipv4Addr::new(34, 9, 9, 9);
    let mut dns = DnsTable::new();
    dns.observe_forward(remote, "cloud.example.com");

    let config = ProxyConfig::default();
    let bootstrap_us = config.bootstrap.as_micros();
    let validator = HumannessValidator::with_operating_point(0.934, 0.982, 0);
    let mut proxy = FiatProxy::new(config, &[9u8; 32], validator);
    proxy.set_dns(dns);
    proxy.start(SimTime::ZERO);

    // Bootstrap: learn one periodic flow.
    let mut ts = 0;
    while ts < bootstrap_us {
        assert!(proxy.on_packet(&pkt(ts, remote, 235)).is_allow());
        ts += PERIOD_US;
    }

    // Warm up past every one-time effect: the first post-bootstrap
    // packet triggers rule learning, and the decision journal must reach
    // capacity (256) so pushes stop growing its buffer.
    let mut hits = 0u64;
    for _ in 0..512 {
        if proxy.on_packet(&pkt(ts, remote, 235)).is_allow() {
            hits += 1;
        }
        ts += PERIOD_US;
    }
    assert_eq!(hits, 512, "the periodic flow must be a steady rule hit");

    // Probe packets built outside the measured region.
    let probes: Vec<PacketRecord> = (0..100)
        .map(|i| pkt(ts + i * PERIOD_US, remote, 235))
        .collect();
    ts += 100 * PERIOD_US;

    let scope = AllocScope::enter();
    let mut measured_hits = 0u64;
    for _ in 0..100 {
        for p in &probes {
            if proxy.on_packet(p).is_allow() {
                measured_hits += 1;
            }
        }
    }
    let allocs = scope.delta();

    assert_eq!(measured_hits, 10_000);
    assert_eq!(
        allocs, 0,
        "probes-off on_packet allocated {allocs} times over 10000 decisions"
    );
    // The counters themselves saw the earlier setup, proving the probe
    // was live while the measured region stayed clean.
    assert!(thread_allocations() > 0);

    // Installing a hook is the *on* state; it may allocate (that is the
    // probe's cost), but flipping it on must be explicit:
    struct Nop;
    impl ProxyHook for Nop {}
    proxy.set_hook(Box::new(Nop));
    assert!(proxy.on_packet(&pkt(ts, remote, 235)).is_allow());
}
