//! Ablation benches for the design choices DESIGN.md calls out:
//! Classic-vs-PortLess flow definition, the first-N classification point,
//! the event-gap threshold, the auth channel (0-RTT vs 1-RTT), and the
//! bootstrap duration. Each bench also prints the quality metric the
//! ablation trades against, so `cargo bench` doubles as the ablation
//! study.

use criterion::{criterion_group, criterion_main, Criterion};
use fiat_core::{group_events, PredictabilityEngine, RuleTable};
use fiat_net::{FlowDef, SimDuration, SimTime};
use fiat_simnet::{HomeNetwork, PhoneLocation};
use fiat_trace::{TestbedConfig, TestbedTrace};
use std::hint::black_box;
use std::sync::OnceLock;

fn capture() -> &'static TestbedTrace {
    static CAPTURE: OnceLock<TestbedTrace> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        TestbedTrace::generate(TestbedConfig {
            days: 0.5,
            ..Default::default()
        })
    })
}

/// Classic vs PortLess: runtime cost and predictable fraction.
fn ablation_flowdef(c: &mut Criterion) {
    let cap = capture();
    let mut g = c.benchmark_group("ablation_flowdef");
    for def in FlowDef::ALL {
        let engine = PredictabilityEngine::new(def);
        let flags = engine.analyze(&cap.trace.packets, &cap.trace.dns);
        let frac = flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64;
        println!("[ablation] flowdef {def}: predictable fraction {frac:.3}");
        g.bench_function(format!("{def}"), |b| {
            b.iter(|| black_box(engine.analyze(&cap.trace.packets, &cap.trace.dns)))
        });
    }
    g.finish();
}

/// Event-gap threshold: number of grouped events at each gap (the paper
/// claims the 5 s choice barely matters).
fn ablation_gap(c: &mut Criterion) {
    let cap = capture();
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&cap.trace.packets, &cap.trace.dns);
    let mut g = c.benchmark_group("ablation_gap");
    for gap_s in [1u64, 2, 5, 10, 30] {
        let gap = SimDuration::from_secs(gap_s);
        let n = group_events(&cap.trace.packets, &flags, gap).len();
        println!("[ablation] gap {gap_s}s: {n} events");
        g.bench_function(format!("gap_{gap_s}s"), |b| {
            b.iter(|| black_box(group_events(&cap.trace.packets, &flags, gap)))
        });
    }
    g.finish();
}

/// Bootstrap duration: rules learned from windows of 5..40 minutes.
fn ablation_bootstrap(c: &mut Criterion) {
    let cap = capture();
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let mut g = c.benchmark_group("ablation_bootstrap");
    for mins in [5u64, 10, 20, 40] {
        let window = cap
            .trace
            .window(SimTime::ZERO, SimTime::ZERO + SimDuration::from_mins(mins));
        let rules = RuleTable::learn(&engine, &window.packets, &cap.trace.dns);
        println!("[ablation] bootstrap {mins}min: {} rules", rules.len());
        g.bench_function(format!("bootstrap_{mins}min"), |b| {
            b.iter(|| black_box(RuleTable::learn(&engine, &window.packets, &cap.trace.dns)))
        });
    }
    g.finish();
}

/// Auth channel: 0-RTT vs 1-RTT vs TCP+TLS-style (2 RTT) on LAN and
/// mobile — mean time for the evidence to reach the proxy.
fn ablation_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_channel");
    for loc in [PhoneLocation::Lan, PhoneLocation::Mobile] {
        for (name, flights) in [("0rtt", 1u32), ("1rtt", 3), ("tcp_tls", 5)] {
            let mut net = HomeNetwork::new(7);
            let mut mean = SimDuration::ZERO;
            for _ in 0..500 {
                let mut t = SimDuration::ZERO;
                for _ in 0..flights {
                    t += net.phone_to_proxy(loc);
                }
                mean += t / 500;
            }
            println!("[ablation] channel {name} {loc}: mean {mean}");
            g.bench_function(format!("{name}_{loc}"), |b| {
                let mut net = HomeNetwork::new(7);
                b.iter(|| {
                    let mut t = SimDuration::ZERO;
                    for _ in 0..flights {
                        t += net.phone_to_proxy(loc);
                    }
                    black_box(t)
                })
            });
        }
    }
    g.finish();
}

/// First-N classification point: how long the proxy waits (packets)
/// before deciding, vs the attack window it leaves open.
fn ablation_firstn(c: &mut Criterion) {
    let cap = capture();
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&cap.trace.packets, &cap.trace.dns);
    let events = group_events(&cap.trace.packets, &flags, SimDuration::from_secs(5));
    let mut g = c.benchmark_group("ablation_firstn");
    for n in [1usize, 3, 5, 10] {
        // Fraction of events long enough to be classified at N, and the
        // mean time from event start to the decision packet.
        let classified = events.iter().filter(|e| e.len() >= n).count();
        let mean_delay_ms: f64 = events
            .iter()
            .filter(|e| e.len() >= n)
            .map(|e| (cap.trace.packets[e.packets[n - 1]].ts - e.start).as_millis_f64())
            .sum::<f64>()
            / classified.max(1) as f64;
        println!(
            "[ablation] first-N {n}: {classified}/{} events decidable, mean decision delay {mean_delay_ms:.0} ms",
            events.len()
        );
        g.bench_function(format!("featurize_n{n}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for e in events.iter().take(200) {
                    let f = fiat_core::event_features(e, &cap.trace.packets);
                    acc += f[4]; // pkt1-len
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_flowdef,
    ablation_gap,
    ablation_bootstrap,
    ablation_channel,
    ablation_firstn
);
criterion_main!(ablations);
