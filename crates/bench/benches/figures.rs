//! Criterion benches behind the figures: predictability analysis and
//! dataset generation throughput (Fig 1a/1b/1c, Fig 2, IoT Inspector).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fiat_core::{group_events, PredictabilityEngine, EVENT_GAP};
use fiat_net::FlowDef;
use fiat_trace::datasets::{aggregate_5s, soundtouch_flows, yourthings_like};
use fiat_trace::{TestbedConfig, TestbedTrace};
use std::hint::black_box;

fn bench_fig1a_flows(c: &mut Criterion) {
    let trace = soundtouch_flows(0);
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let mut g = c.benchmark_group("fig1a");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("soundtouch_analysis", |b| {
        b.iter(|| black_box(engine.analyze(&trace.packets, &trace.dns)))
    });
    g.finish();
}

fn bench_fig1b_cdf(c: &mut Criterion) {
    let corpus = yourthings_like(8, 2, 0);
    let mut g = c.benchmark_group("fig1b");
    for def in FlowDef::ALL {
        let engine = PredictabilityEngine::new(def);
        g.bench_function(format!("corpus_{def}"), |b| {
            b.iter(|| {
                let total: usize = corpus
                    .iter()
                    .map(|d| {
                        engine
                            .analyze(&d.trace.packets, &d.trace.dns)
                            .iter()
                            .filter(|&&f| f)
                            .count()
                    })
                    .sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

fn bench_fig1c_max_intervals(c: &mut Criterion) {
    let corpus = yourthings_like(4, 2, 1);
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    c.bench_function("fig1c/max_intervals", |b| {
        b.iter(|| {
            for d in &corpus {
                black_box(engine.max_intervals(&d.trace.packets, &d.trace.dns));
            }
        })
    });
}

fn bench_fig2_testbed(c: &mut Criterion) {
    let capture = TestbedTrace::generate(TestbedConfig {
        days: 0.25,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let mut g = c.benchmark_group("fig2");
    g.throughput(Throughput::Elements(capture.trace.len() as u64));
    g.bench_function("testbed_generation", |b| {
        b.iter(|| {
            black_box(TestbedTrace::generate(TestbedConfig {
                days: 0.25,
                ..Default::default()
            }))
        })
    });
    g.bench_function("predictability_report", |b| {
        b.iter(|| black_box(engine.report(&capture.trace.packets, &capture.trace.dns)))
    });
    g.bench_function("event_grouping", |b| {
        let flags = engine.analyze(&capture.trace.packets, &capture.trace.dns);
        b.iter_batched(
            || flags.clone(),
            |flags| black_box(group_events(&capture.trace.packets, &flags, EVENT_GAP)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_inspector_aggregation(c: &mut Criterion) {
    let corpus = yourthings_like(4, 2, 2);
    c.bench_function("inspector/aggregate_5s", |b| {
        b.iter(|| {
            for d in &corpus {
                black_box(aggregate_5s(&d.trace));
            }
        })
    });
}

criterion_group!(
    figures,
    bench_fig1a_flows,
    bench_fig1b_cdf,
    bench_fig1c_max_intervals,
    bench_fig2_testbed,
    bench_inspector_aggregation
);
criterion_main!(figures);
