//! Criterion benches behind the tables: model training/CV (Table 2/3),
//! permutation importance (Table 4), the end-to-end proxy pipeline
//! (Table 6), the latency simulation (Table 7), and the crypto/transport
//! hot paths underneath.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fiat_bench::corpus::build_event_corpus;
use fiat_bench::ml_tables::ModelKind;
use fiat_bench::table7::table7;
use fiat_core::classifier::event_dataset;
use fiat_core::{
    group_events, EventClassifier, FiatApp, FiatProxy, PredictabilityEngine, ProxyConfig, EVENT_GAP,
};
use fiat_ml::permutation::permutation_importance;
use fiat_ml::{naive_bayes::BernoulliNB, Classifier, StandardScaler};
use fiat_net::{FlowDef, SimTime};
use fiat_sensors::{extract_features, HumannessValidator, ImuTrace, MotionKind};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};
use std::hint::black_box;

fn corpus() -> fiat_ml::Dataset {
    build_event_corpus(Location::Us, 2.0, 0, true)
        .into_iter()
        .find(|c| c.name == "EchoDot4")
        .unwrap()
        .dataset
}

fn bench_table2_models(c: &mut Criterion) {
    let data = corpus();
    let mut g = c.benchmark_group("table2_models");
    for m in [
        ModelKind::NearestCentroid,
        ModelKind::BernoulliNb,
        ModelKind::GaussianNb,
        ModelKind::DecisionTree,
        ModelKind::KNearestNeighbors,
    ] {
        g.bench_function(m.name(), |b| {
            b.iter(|| black_box(m.cross_validate(&data, 5, 0).mean_balanced_accuracy()))
        });
    }
    g.finish();
}

fn bench_table3_train_predict(c: &mut Criterion) {
    let data = corpus();
    let mut g = c.benchmark_group("table3");
    g.bench_function("bernoulli_fit", |b| {
        b.iter(|| {
            let (_, x) = StandardScaler::fit_transform(&data.x);
            let mut m = BernoulliNB::new();
            m.fit(&fiat_ml::Dataset {
                x,
                y: data.y.clone(),
                n_classes: 3,
                feature_names: data.feature_names.clone(),
            });
            black_box(m)
        })
    });
    let (scaler, x) = StandardScaler::fit_transform(&data.x);
    let scaled = fiat_ml::Dataset {
        x,
        y: data.y.clone(),
        n_classes: 3,
        feature_names: data.feature_names.clone(),
    };
    let mut model = BernoulliNB::new();
    model.fit(&scaled);
    let sample = scaler.transform(&data.x[..1.min(data.x.len())])[0].clone();
    g.throughput(Throughput::Elements(1));
    g.bench_function("bernoulli_predict_one", |b| {
        b.iter(|| black_box(model.predict_one(&sample)))
    });
    g.finish();
}

fn bench_table4_permutation(c: &mut Criterion) {
    let data = corpus();
    let (_, x) = StandardScaler::fit_transform(&data.x);
    let scaled = fiat_ml::Dataset {
        x,
        y: data.y.clone(),
        n_classes: 3,
        feature_names: data.feature_names.clone(),
    };
    let mut model = BernoulliNB::new();
    model.fit(&scaled);
    c.bench_function("table4/permutation_importance_5", |b| {
        b.iter(|| black_box(permutation_importance(&model, &scaled, 5, 0)))
    });
}

fn bench_table6_pipeline(c: &mut Criterion) {
    // Train a classifier and push a capture through the proxy.
    let train = TestbedTrace::generate(TestbedConfig {
        days: 1.0,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&train.trace.packets, &train.trace.dns);
    let events = group_events(&train.trace.packets, &flags, EVENT_GAP);
    let ev0: Vec<_> = events.iter().filter(|e| e.device == 0).cloned().collect();
    let data = event_dataset(&ev0, &train.trace.packets);

    let eval = TestbedTrace::generate(TestbedConfig {
        days: 0.5,
        seed: 1,
        ..Default::default()
    });

    let mut g = c.benchmark_group("table6_pipeline");
    g.throughput(Throughput::Elements(eval.trace.len() as u64));
    g.bench_function("proxy_on_packet", |b| {
        b.iter(|| {
            let validator = HumannessValidator::with_operating_point(0.934, 0.982, 0);
            let mut proxy = FiatProxy::new(ProxyConfig::default(), &[9u8; 32], validator);
            proxy.set_dns(eval.trace.dns.clone());
            for (i, dev) in eval.devices.iter().enumerate() {
                let clf = if let Some(size) = dev.simple_rule_size {
                    EventClassifier::simple_rule(size)
                } else {
                    EventClassifier::train_bernoulli(&data)
                };
                proxy.register_device(i as u16, clf, dev.min_packets_to_complete);
            }
            proxy.start(SimTime::ZERO);
            let mut allowed = 0u64;
            for p in &eval.trace.packets {
                if proxy.on_packet(p).is_allow() {
                    allowed += 1;
                }
            }
            black_box(allowed)
        })
    });
    g.finish();
}

fn bench_table7_latency(c: &mut Criterion) {
    c.bench_function("table7/latency_200reps", |b| {
        b.iter(|| black_box(table7(200, 0)))
    });
}

fn bench_humanness(c: &mut Criterion) {
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 800, 0);
    let mut g = c.benchmark_group("humanness");
    g.bench_function("feature_extraction_48", |b| {
        b.iter(|| black_box(extract_features(&imu)))
    });
    let (mut validator, _) = HumannessValidator::train(40, 0);
    g.bench_function("validate", |b| {
        b.iter(|| black_box(validator.validate(&imu, MotionKind::HumanTouch)))
    });
    g.finish();
}

fn bench_auth_channel(c: &mut Criterion) {
    let secret = [7u8; 32];
    let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
    let mut proxy = FiatProxy::new(ProxyConfig::default(), &secret, validator);
    let mut app = FiatApp::new(&secret, 0);
    let ch = app.handshake_request();
    let sh = proxy.accept_handshake(&ch);
    app.complete_handshake(&sh).unwrap();
    let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 0);

    let mut g = c.benchmark_group("auth_channel");
    g.bench_function("zero_rtt_seal", |b| {
        b.iter(|| {
            black_box(
                app.authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 0)
                    .unwrap(),
            )
        })
    });
    let mut t = 0u64;
    g.bench_function("zero_rtt_roundtrip", |b| {
        b.iter(|| {
            let z = app
                .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
                .unwrap();
            t += 1_000_000;
            black_box(proxy.on_auth_zero_rtt(&z, SimTime::from_micros(t)).unwrap())
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let key = [1u8; 32];
    let nonce = [2u8; 12];
    let data = vec![0xa5u8; 1024];
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("aead_seal_1k", |b| {
        b.iter(|| black_box(fiat_crypto::seal(&key, &nonce, b"", &data)))
    });
    g.bench_function("hmac_1k", |b| {
        b.iter(|| black_box(fiat_crypto::HmacSha256::mac(&key, &data)))
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table2_models,
    bench_table3_train_predict,
    bench_table4_permutation,
    bench_table6_pipeline,
    bench_table7_latency,
    bench_humanness,
    bench_auth_channel,
    bench_crypto
);
criterion_main!(tables);
