//! Table 6: end-to-end FIAT accuracy, plus the Appendix A cross-check.
//!
//! Two phases per device:
//!
//! 1. **Legit phase** — a capture where every manual event is preceded by
//!    genuine human evidence (0-RTT). Measures the event classifier's
//!    precision/recall and the false positives (legit traffic blocked).
//! 2. **Attack phase** — a fresh capture whose manual events are
//!    attacker-injected: the synced spyware ships *resting-phone*
//!    evidence just before each command (§7 "Potential Attack" without
//!    the piggybacking window). Measures false negatives (attacks that
//!    complete).
//!
//! The humanness validator runs at the paper's measured operating point
//! (recall 0.934 human / 0.982 non-human) so the FP/FN composition is
//! comparable with Table 6 and the Appendix A closed forms.

use fiat_core::{
    ErrorModel, EventClass, EventClassifier, FiatApp, FiatProxy, ProxyConfig, ProxyTelemetry,
};
use fiat_net::{SimDuration, SimTime, TrafficClass};
use fiat_sensors::{HumannessValidator, ImuTrace, MotionKind};
use fiat_telemetry::{MetricRegistry, WallClock};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

const SECRET: [u8; 32] = [0xAB; 32];

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Device name.
    pub name: String,
    /// Event-classifier precision on manual events (legit phase).
    pub precision_manual: f64,
    /// Event-classifier recall on manual events.
    pub recall_manual: f64,
    /// Event-classifier precision on non-manual events.
    pub precision_non_manual: f64,
    /// Event-classifier recall on non-manual events.
    pub recall_non_manual: f64,
    /// Legit manual operations blocked (false positive, manual).
    pub fp_manual: f64,
    /// Non-manual events blocked (false positive, non-manual).
    pub fp_non_manual: f64,
    /// Attacker commands that completed (false negative), measured.
    pub false_negative: f64,
    /// Appendix A analytic FN at the same recalls.
    pub analytic_fn: f64,
}

/// Measured humanness-validator performance across both phases.
#[derive(Debug, Clone, Copy)]
pub struct HumanValidationStats {
    /// Accepted human evidences / human evidences.
    pub recall_human: f64,
    /// Rejected attack evidences / attack evidences.
    pub recall_non_human: f64,
}

/// Full Table 6 output.
pub struct Table6 {
    /// Per-device rows.
    pub rows: Vec<Table6Row>,
    /// Aggregate humanness stats.
    pub human: HumanValidationStats,
}

struct PhaseOutcome {
    // Per device: (gt_class_is_manual, predicted_manual, blocked).
    events: HashMap<u16, Vec<(bool, bool, bool)>>,
    human_accepts: u64,
    human_total: u64,
    attack_rejects: u64,
    attack_total: u64,
}

/// Drive one capture through a proxy. `human_evidence` controls whether
/// manual events are preceded by genuine human motion (legit phase) or
/// resting-phone motion (attack phase).
fn run_phase(
    capture: &TestbedTrace,
    classifiers: impl Fn(u16) -> EventClassifier,
    human_evidence: bool,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> PhaseOutcome {
    let validator = HumannessValidator::with_operating_point(0.934, 0.982, seed);
    let config = ProxyConfig {
        lockout_threshold: u32::MAX, // measure raw rates, not lockouts
        ..ProxyConfig::default()
    };
    let bootstrap_end = SimTime::ZERO + config.bootstrap;
    // With a shared registry, the proxy's decision-path metrics (stage
    // latency under real wall time, decision counters, QUIC counters)
    // accumulate across phases and ship in the experiment's snapshot.
    let mut proxy = match registry {
        Some(r) => FiatProxy::with_telemetry(
            config,
            &SECRET,
            validator,
            ProxyTelemetry::new(r.clone(), Arc::new(WallClock::new())),
        ),
        None => FiatProxy::new(config, &SECRET, validator),
    };
    proxy.set_dns(capture.trace.dns.clone());
    for (i, dev) in capture.devices.iter().enumerate() {
        proxy.register_device(i as u16, classifiers(i as u16), dev.min_packets_to_complete);
    }
    proxy.start(SimTime::ZERO);

    let mut app = FiatApp::new(&SECRET, seed ^ 0x5eed);
    let ch = app.handshake_request();
    let sh = proxy.accept_handshake(&ch);
    app.complete_handshake(&sh).expect("handshake");

    // Evidence schedule: 300 ms before each ground-truth manual event.
    let mut evidence: Vec<(SimTime, u64)> = capture
        .events
        .iter()
        .filter(|e| e.class == TrafficClass::Manual)
        .enumerate()
        .map(|(k, e)| {
            (
                e.start
                    .checked_sub(SimDuration::from_millis(300))
                    .unwrap_or(SimTime::ZERO),
                k as u64,
            )
        })
        .collect();
    evidence.sort();
    let mut next_ev = 0usize;

    let mut human_accepts = 0u64;
    let mut human_total = 0u64;
    let mut attack_rejects = 0u64;
    let mut attack_total = 0u64;

    // Track, per device, which packets were blocked (indices by ts).
    let mut blocked: HashMap<(u16, u64), bool> = HashMap::new();
    for pkt in &capture.trace.packets {
        while next_ev < evidence.len() && evidence[next_ev].0 <= pkt.ts {
            let (at, k) = evidence[next_ev];
            next_ev += 1;
            let kind = if human_evidence {
                MotionKind::HumanTouch
            } else {
                MotionKind::Resting
            };
            let imu = ImuTrace::synthesize(kind, 500, seed ^ k);
            let z = app
                .authorize_zero_rtt("iot.app", &imu, kind, at.as_micros())
                .expect("0-RTT");
            let ok = proxy.on_auth_zero_rtt(&z, at).expect("auth path");
            if human_evidence {
                human_total += 1;
                if ok {
                    human_accepts += 1;
                }
            } else {
                attack_total += 1;
                if !ok {
                    attack_rejects += 1;
                }
            }
        }
        let d = proxy.on_packet(pkt);
        if !d.is_allow() {
            blocked.insert((pkt.device, pkt.ts.as_micros()), true);
        }
    }

    // Score ground-truth events that started after bootstrap: an event is
    // "blocked" if any of its packets was dropped; "predicted manual" via
    // the audit log entry nearest its start.
    let audit = proxy.audit();
    let mut events: HashMap<u16, Vec<(bool, bool, bool)>> = HashMap::new();
    for gt in &capture.events {
        if gt.start < bootstrap_end + SimDuration::from_secs(60) {
            continue;
        }
        let is_manual = gt.class == TrafficClass::Manual;
        // Find the audit entry for this event; classification fires
        // within a few packets of the start.
        let window = SimDuration::from_secs(10);
        let entry = audit
            .entries()
            .iter()
            .filter(|e| e.device == gt.device && e.ts >= gt.start && e.ts - gt.start <= window)
            .min_by_key(|e| (e.ts - gt.start).as_micros());
        let predicted_manual = entry.is_some_and(|e| e.class == EventClass::Manual);
        // Blocked packets are attributed within the event's own span
        // (events are >= 30 s apart, bursts last <= ~30 s).
        let block_window = SimDuration::from_secs(25);
        let was_blocked = blocked.keys().any(|(dev, ts)| {
            *dev == gt.device
                && *ts >= gt.start.as_micros()
                && *ts <= (gt.start + block_window).as_micros()
        });
        events
            .entry(gt.device)
            .or_default()
            .push((is_manual, predicted_manual, was_blocked));
    }

    PhaseOutcome {
        events,
        human_accepts,
        human_total,
        attack_rejects,
        attack_total,
    }
}

/// Run Table 6. `train_days`/`eval_days` control corpus sizes.
pub fn table6(train_days: f64, eval_days: f64, seed: u64) -> Table6 {
    table6_instrumented(train_days, eval_days, seed, None)
}

/// [`table6`], with the proxies of both phases reporting into `registry`
/// (when given) for a metrics snapshot alongside the table.
pub fn table6_instrumented(
    train_days: f64,
    eval_days: f64,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> Table6 {
    // Train classifiers on an independent capture with events grouped the
    // way the deployed proxy groups them (bootstrap rule table + 5 s gap),
    // dense enough for the paper's ~50-manual-event training regime. The
    // paper's training data also came largely from scripted (ADB)
    // interactions (§3.1), so the training capture is mostly clean.
    let corpus = crate::corpus::build_enforcement_corpus(Location::Us, train_days, seed);
    let device_models = fiat_trace::testbed_devices();
    let mut trained: HashMap<u16, EventClassifier> = HashMap::new();
    for c in &corpus {
        let classifier = if let Some(size) = device_models[c.device as usize].simple_rule_size {
            EventClassifier::simple_rule(size)
        } else {
            EventClassifier::train_bernoulli(&c.dataset)
        };
        trained.insert(c.device, classifier);
    }

    // Evaluation captures (fresh seeds).
    let legit_capture = TestbedTrace::generate(TestbedConfig {
        location: Location::Us,
        days: eval_days,
        seed: seed.wrapping_add(1),
        manual_per_day: 12.0,
        routines_per_day: 10.0,
        confusion_scale: 0.15,
    });
    let attack_capture = TestbedTrace::generate(TestbedConfig {
        location: Location::Us,
        days: eval_days,
        seed: seed.wrapping_add(2),
        manual_per_day: 12.0,
        routines_per_day: 10.0,
        confusion_scale: 0.15,
    });

    let mk = |device: u16| -> EventClassifier { trained[&device].clone() };
    let legit = run_phase(&legit_capture, mk, true, seed.wrapping_add(10), registry);
    let attack = run_phase(&attack_capture, mk, false, seed.wrapping_add(20), registry);

    let human = HumanValidationStats {
        recall_human: ratio(legit.human_accepts, legit.human_total),
        recall_non_human: ratio(attack.attack_rejects, attack.attack_total),
    };

    let mut rows = Vec::new();
    for (i, dev) in legit_capture.devices.iter().enumerate() {
        let device = i as u16;
        let empty = Vec::new();
        let lv = legit.events.get(&device).unwrap_or(&empty);
        let av = attack.events.get(&device).unwrap_or(&empty);

        // Classifier confusion over the legit phase.
        let tp = lv.iter().filter(|(m, p, _)| *m && *p).count() as f64;
        let fn_ = lv.iter().filter(|(m, p, _)| *m && !*p).count() as f64;
        let fp = lv.iter().filter(|(m, p, _)| !*m && *p).count() as f64;
        let tn = lv.iter().filter(|(m, p, _)| !*m && !*p).count() as f64;
        let recall_manual = safe_div(tp, tp + fn_);
        let precision_manual = safe_div(tp, tp + fp);
        let recall_non_manual = safe_div(tn, tn + fp);
        let precision_non_manual = safe_div(tn, tn + fn_);

        // False positives: legit events blocked.
        let manual_blocked = lv.iter().filter(|(m, _, b)| *m && *b).count() as f64;
        let manual_total = lv.iter().filter(|(m, _, _)| *m).count() as f64;
        let nonmanual_blocked = lv.iter().filter(|(m, _, b)| !*m && *b).count() as f64;
        let nonmanual_total = lv.iter().filter(|(m, _, _)| !*m).count() as f64;

        // False negatives: attack-phase manual events NOT blocked.
        let attacks = av.iter().filter(|(m, _, _)| *m).count() as f64;
        let attacks_through = av.iter().filter(|(m, _, b)| *m && !*b).count() as f64;

        let analytic = ErrorModel::new(
            recall_manual.min(1.0),
            recall_non_manual.min(1.0),
            0.934,
            0.982,
        );
        rows.push(Table6Row {
            name: dev.name.clone(),
            precision_manual,
            recall_manual,
            precision_non_manual,
            recall_non_manual,
            fp_manual: safe_div(manual_blocked, manual_total),
            fp_non_manual: safe_div(nonmanual_blocked, nonmanual_total),
            false_negative: safe_div(attacks_through, attacks),
            analytic_fn: analytic.false_negative(),
        });
    }
    Table6 { rows, human }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn safe_div(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        a / b
    }
}

/// Render Table 6.
pub fn table6_text(train_days: f64, eval_days: f64, seed: u64) -> String {
    table6_text_instrumented(train_days, eval_days, seed, None)
}

/// [`table6_text`], reporting proxy metrics into `registry` when given.
pub fn table6_text_instrumented(
    train_days: f64,
    eval_days: f64,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> String {
    let t = table6_instrumented(train_days, eval_days, seed, registry);
    let mut out = String::new();
    writeln!(out, "# Table 6: FIAT end-to-end accuracy").unwrap();
    writeln!(
        out,
        "human validation: recall(human)={:.3} recall(non-human)={:.3} (paper: 0.934/0.982)",
        t.human.recall_human, t.human.recall_non_human
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>7}",
        "device", "P-man", "R-man", "P-nonm", "R-nonm", "FP-M%", "FP-N%", "FN%", "FN(an)%"
    )
    .unwrap();
    for r in &t.rows {
        writeln!(
            out,
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} | {:>6.2} {:>6.2} {:>6.2} {:>7.2}",
            r.name,
            r.precision_manual,
            r.recall_manual,
            r.precision_non_manual,
            r.recall_non_manual,
            r.fp_manual * 100.0,
            r.fp_non_manual * 100.0,
            r.false_negative * 100.0,
            r.analytic_fn * 100.0,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> Table6 {
        table6(6.0, 2.0, 7)
    }

    #[test]
    fn humanness_operating_point_matches_paper() {
        let t = run();
        assert!(
            (t.human.recall_human - 0.934).abs() < 0.08,
            "human recall {}",
            t.human.recall_human
        );
        assert!(
            (t.human.recall_non_human - 0.982).abs() < 0.05,
            "non-human recall {}",
            t.human.recall_non_human
        );
    }

    #[test]
    fn simple_rule_devices_classify_perfectly() {
        let t = run();
        for name in ["SP10", "WP3", "Nest-E"] {
            let r = t.rows.iter().find(|r| r.name == name).unwrap();
            // Simple rules are deterministic; the rare shortfall is an
            // audit-matching artifact (a quirk event merging with the
            // command under the 5 s rule).
            assert!(
                r.recall_manual >= 0.95 && r.recall_non_manual >= 0.95,
                "{name}: R-man {:.2}, R-nonm {:.2}",
                r.recall_manual,
                r.recall_non_manual
            );
        }
    }

    #[test]
    fn false_negatives_bounded_and_structured() {
        let t = run();
        for r in &t.rows {
            assert!(
                r.false_negative < 0.30,
                "{}: FN {:.3}",
                r.name,
                r.false_negative
            );
            // FN should be in the ballpark of the Appendix A composition
            // (sampling noise allowed).
            assert!(
                (r.false_negative - r.analytic_fn).abs() < 0.20,
                "{}: measured {:.3} vs analytic {:.3}",
                r.name,
                r.false_negative,
                r.analytic_fn
            );
        }
    }

    #[test]
    fn instrumented_run_fills_the_registry() {
        let registry = MetricRegistry::new();
        let t = table6_instrumented(4.0, 1.0, 3, Some(&registry));
        assert!(!t.rows.is_empty());
        // Both phases reported: decisions were counted, stages timed, and
        // the QUIC path saw the evidence traffic.
        assert!(
            registry
                .counter(
                    "fiat_proxy_decisions_total",
                    &[("decision", "allow"), ("reason", "rule_hit")],
                )
                .get()
                > 0
        );
        assert!(
            registry
                .histogram("fiat_proxy_stage_us", &[("stage", "decide")])
                .count()
                > 0
        );
        assert_eq!(registry.counter("fiat_quic_handshakes_total", &[]).get(), 2);
        assert!(registry.render_json().contains("fiat_proxy_stage_us"));
    }

    #[test]
    fn false_positives_are_low() {
        let t = run();
        for r in &t.rows {
            assert!(r.fp_manual < 0.25, "{}: FP-M {:.3}", r.name, r.fp_manual);
            assert!(
                r.fp_non_manual < 0.15,
                "{}: FP-N {:.3}",
                r.name,
                r.fp_non_manual
            );
        }
    }
}
