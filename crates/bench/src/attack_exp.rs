//! The adversarial-evaluation experiment: run the `fiat-attack` red-team
//! panel across the testbed device matrix and render the security
//! scorecard.
//!
//! Not a paper artifact — the paper argues the defenses qualitatively
//! (§5.3 replay, §5.4 brute force); this experiment makes the argument
//! executable and regression-checked. Output is deterministic for a
//! fixed seed (same scorecard bytes), so CI can smoke-run it and diffs
//! stay reviewable.

use fiat_attack::{run_attack, standard_strategies, AttackVerdict, RunConfig, Scorecard};
use fiat_telemetry::{AttackMetrics, MetricRegistry};
use fiat_trace::testbed_devices;

/// Device matrix for the full run: every testbed device.
fn full_matrix() -> Vec<u16> {
    (0..testbed_devices().len() as u16).collect()
}

/// Device matrix for the CI smoke run: one simple-rule plug (N = 1) and
/// one first-N camera (N = 41) — the two decision-path extremes.
fn quick_matrix() -> Vec<u16> {
    vec![3, 2]
}

/// Run the panel over the device matrix. Per-run seeds derive from
/// `seed` and the (strategy, device) cell so runs stay independent.
pub fn attack_scorecard(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> Scorecard {
    let devices = if quick { quick_matrix() } else { full_matrix() };
    let metrics = registry.map(AttackMetrics::new);
    let mut card = Scorecard::new();
    for (si, strategy) in standard_strategies().iter().enumerate() {
        for &device in &devices {
            let run_seed = seed
                .wrapping_mul(1_000_003)
                .wrapping_add((si as u64) << 32)
                .wrapping_add(device as u64);
            let outcome = run_attack(
                strategy.as_ref(),
                &RunConfig {
                    device,
                    seed: run_seed,
                },
                metrics.as_ref(),
            );
            card.push(outcome);
        }
    }
    card
}

/// Render the experiment's text output (the scorecard plus a pass/fail
/// posture line for the defenses that must hold).
pub fn attack_text(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> String {
    let card = attack_scorecard(seed, quick, registry);
    let mut out = card.render(seed);
    let must_block = [
        "replay",
        "stale-epoch-replay",
        "poison-fast",
        "lockout-probe",
        "gap-evasion",
        "quarantine-probe",
    ];
    let mut ok = true;
    for s in must_block {
        if !card.all_scored(s, AttackVerdict::Blocked) {
            ok = false;
            out.push_str(&format!("POSTURE REGRESSION: {s} was not fully blocked\n"));
        }
    }
    if !card.all_scored("audit-tamper", AttackVerdict::Detected) {
        ok = false;
        out.push_str("POSTURE REGRESSION: audit-tamper went undetected\n");
    }
    // Device spoofing is blocked on first-N devices and detected on
    // N = 1 devices (the command slips the provisional window but the
    // spoofer is flagged and quarantined) — what must never happen with
    // the gate on is a clean `allowed`.
    if card
        .outcomes()
        .iter()
        .any(|o| o.strategy == "device-spoofing" && o.verdict == AttackVerdict::Allowed)
    {
        ok = false;
        out.push_str("POSTURE REGRESSION: device-spoofing went unchallenged\n");
    }
    if ok {
        out.push_str(
            "posture: PASS (replay, stale-epoch-replay, poison-fast, lockout-probe, \
             gap-evasion, quarantine-probe blocked; audit-tamper detected; \
             device-spoofing never allowed)\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scorecard_holds_the_security_posture() {
        let card = attack_scorecard(42, true, None);
        // 10 strategies x 2 devices.
        assert_eq!(card.outcomes().len(), 20);
        assert!(card.all_scored("replay", AttackVerdict::Blocked));
        assert!(card.all_scored("stale-epoch-replay", AttackVerdict::Blocked));
        assert!(card.all_scored("poison-fast", AttackVerdict::Blocked));
        assert!(card.all_scored("lockout-probe", AttackVerdict::Blocked));
        assert!(card.all_scored("gap-evasion", AttackVerdict::Blocked));
        assert!(card.all_scored("quarantine-probe", AttackVerdict::Blocked));
        assert!(card.all_scored("audit-tamper", AttackVerdict::Detected));
        // device-spoofing is mixed (Blocked on the camera, Detected on
        // the N = 1 plug) but must never score a clean Allowed.
        let spoof: Vec<_> = card
            .outcomes()
            .iter()
            .filter(|o| o.strategy == "device-spoofing")
            .collect();
        assert_eq!(spoof.len(), 2);
        assert!(spoof.iter().all(|o| o.verdict != AttackVerdict::Allowed));
    }

    #[test]
    fn text_is_deterministic_and_passes() {
        let a = attack_text(42, true, None);
        let b = attack_text(42, true, None);
        assert_eq!(a, b);
        assert!(a.contains("posture: PASS"), "{a}");
        assert!(!a.contains("POSTURE REGRESSION"));
    }

    #[test]
    fn registry_collects_run_counters() {
        let registry = MetricRegistry::new();
        let _ = attack_text(42, true, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_attack_runs_total"));
        assert!(text.contains("strategy=\"replay\""));
    }
}
