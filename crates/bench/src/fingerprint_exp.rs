//! The fingerprint-gate experiment: exercise `fiat-fingerprint` end to
//! end — held-out identification accuracy, the spoofed-device sweep, the
//! attack-panel gate flip, and a mini differential-oracle leg — and
//! render a pass/fail report.
//!
//! Not a paper artifact — the paper's identification story is its ML
//! classifier (§4); this experiment regression-checks the *decision
//! path* subsystem that closes the unknown-MAC fail-open. Output is
//! deterministic for a fixed seed and ends with a `fingerprint: PASS`
//! trailer CI greps for; any `FINGERPRINT REGRESSION` line is a
//! regression.

use fiat_attack::{run_attack, AttackVerdict, DeviceSpoofing, RunConfig};
use fiat_core::{FingerprintGate, FingerprintVerdict};
use fiat_fingerprint::{FingerprintEngine, MatcherConfig, SignatureSet};
use fiat_oracle::run_differential;
use fiat_telemetry::MetricRegistry;
use fiat_trace::{
    class_trace, fingerprint_corpus, spoofed_trace, testbed_devices, CLASS_TRACE_DURATION,
    CORPUS_CLASSES,
};
use std::fmt::Write as _;

/// Held-out evaluation seeds per leg for the CI smoke run.
const QUICK_EVAL_SEEDS: u64 = 3;
/// Held-out evaluation seeds per leg for the full run.
const FULL_EVAL_SEEDS: u64 = 8;

/// Spoof pairs swept per evaluation seed, as `(claimed, behaved)`
/// testbed indices: a camera behaving behind a plug's MAC/endpoints, a
/// speaker behind a camera's, and a plug behind a speaker's. (Hybrids
/// *behaving* as the sparse-cadence E4 vacuum or Nest-E thermostat can
/// seal `NoMatch` instead — their control-only windows are not always
/// confidently matched — which still quarantines but does not accuse,
/// so they are not part of the must-flag sweep.)
const SPOOF_PAIRS: [(usize, usize); 3] = [(3, 2), (2, 0), (0, 3)];

/// Everything the experiment measured, for the text renderer and tests.
#[derive(Debug, Clone, Default)]
pub struct FingerprintReport {
    /// Genuine held-out traces sealed as `Match` of the right class.
    pub identified: usize,
    /// Genuine held-out traces evaluated.
    pub trials: usize,
    /// Genuine traces branded `Spoof` — the false-quarantine count that
    /// must stay zero (a `NoMatch` degrades to quarantine too, but never
    /// accuses; it only costs accuracy).
    pub false_spoofs: usize,
    /// Spoofed traces sealed as `Spoof`.
    pub spoof_detected: usize,
    /// Spoofed traces evaluated.
    pub spoof_trials: usize,
    /// With the gate off, the device-spoofing attack rode the fail-open.
    pub gate_off_allowed: bool,
    /// With the gate on, the camera run was blocked outright.
    pub gate_on_blocked: bool,
    /// With the gate on, the N = 1 plug run was flagged (detected).
    pub gate_on_detected: bool,
    /// Fingerprint probes the mini oracle leg pushed through both sides.
    pub oracle_probes: u64,
    /// Divergences the mini oracle leg found (must be zero).
    pub oracle_divergences: usize,
}

impl FingerprintReport {
    /// Identification accuracy in percent.
    pub fn accuracy_pct(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        100.0 * self.identified as f64 / self.trials as f64
    }

    /// The acceptance bar: ≥ 90 % held-out identification, zero false
    /// spoof accusations, every spoofed trace flagged, the attack flip
    /// in both directions, and a clean oracle leg.
    pub fn passed(&self) -> bool {
        self.accuracy_pct() >= 90.0
            && self.false_spoofs == 0
            && self.spoof_detected == self.spoof_trials
            && self.spoof_trials > 0
            && self.gate_off_allowed
            && self.gate_on_blocked
            && self.gate_on_detected
            && self.oracle_divergences == 0
            && self.oracle_probes > 0
    }
}

/// Drive `trace` through `engine` until the device's window seals;
/// returns the sealed verdict (`NoMatch` if the trace ran out first —
/// an unsealed window never reached a decision, which scores as a miss).
fn sealed_verdict(engine: &mut FingerprintEngine, trace: &fiat_net::Trace) -> FingerprintVerdict {
    for pkt in &trace.packets {
        let obs = engine.observe(pkt, &trace.dns);
        if obs.just_sealed {
            return obs.verdict;
        }
    }
    FingerprintVerdict::NoMatch
}

/// Run every leg and collect the report.
pub fn fingerprint_report(seed: u64, quick: bool) -> FingerprintReport {
    let devices = testbed_devices();
    let matcher = MatcherConfig::default();
    let signatures = SignatureSet::learn(&fingerprint_corpus(seed), matcher.evidence_window);
    let evals = if quick {
        QUICK_EVAL_SEEDS
    } else {
        FULL_EVAL_SEEDS
    };
    let mut report = FingerprintReport::default();

    // Leg 1 — held-out identification: fresh captures of every trained
    // class under seeds the corpus never saw must seal as a `Match` of
    // the right signature, and must never be branded `Spoof`.
    let mut engine = FingerprintEngine::new(signatures.clone(), matcher);
    let mut device_id = 500u16;
    for eval in 0..evals {
        for (class, &(_, tb_idx)) in CORPUS_CLASSES.iter().enumerate() {
            let trial_seed = seed ^ 0x5eed_0000 ^ (eval << 8) ^ class as u64;
            let trace = class_trace(&devices[tb_idx], device_id, trial_seed);
            match sealed_verdict(&mut engine, &trace) {
                FingerprintVerdict::Match(m) if m as usize == class => report.identified += 1,
                FingerprintVerdict::Spoof { .. } => report.false_spoofs += 1,
                _ => {}
            }
            report.trials += 1;
            device_id += 1;
        }
    }

    // Leg 2 — spoof sweep: hybrids behaving as one class while claiming
    // another's cloud endpoints must seal as `Spoof` (after the
    // two-window confirmation; the capture is long enough for both).
    let mut engine = FingerprintEngine::new(signatures, matcher);
    for eval in 0..evals {
        for (pair, &(claimed, behaved)) in SPOOF_PAIRS.iter().enumerate() {
            let trial_seed = seed ^ 0x0bad_0000 ^ (eval << 8) ^ pair as u64;
            let trace = spoofed_trace(
                &devices[claimed],
                &devices[behaved],
                device_id,
                CLASS_TRACE_DURATION,
                trial_seed,
            );
            if let FingerprintVerdict::Spoof { .. } = sealed_verdict(&mut engine, &trace) {
                report.spoof_detected += 1;
            }
            report.spoof_trials += 1;
            device_id += 1;
        }
    }

    // Leg 3 — the attack-panel flip: the same device-spoofing strategy
    // that rides the historical fail-open with the gate off must be
    // quarantined (camera) or flagged (N = 1 plug) with it on.
    let off = run_attack(
        &DeviceSpoofing { gate: false },
        &RunConfig { device: 2, seed },
        None,
    );
    report.gate_off_allowed = off.verdict == AttackVerdict::Allowed;
    let on_camera = run_attack(
        &DeviceSpoofing { gate: true },
        &RunConfig { device: 2, seed },
        None,
    );
    report.gate_on_blocked = on_camera.verdict == AttackVerdict::Blocked;
    let on_plug = run_attack(
        &DeviceSpoofing { gate: true },
        &RunConfig { device: 3, seed },
        None,
    );
    report.gate_on_detected = on_plug.verdict == AttackVerdict::Detected;

    // Leg 4 — mini differential-oracle run: the gate is on in every
    // fuzz scenario, so a short run differentially checks the engine
    // against the naive mirror under chaos-mutated traffic.
    let oracle = run_differential(seed ^ 0xf1a7, true, if quick { 800 } else { 3_000 });
    report.oracle_probes = oracle.chaos.fingerprint_probes;
    report.oracle_divergences = oracle.divergences.len();

    report
}

/// Record the report into the registry for the metrics snapshot.
fn record_metrics(report: &FingerprintReport, registry: &MetricRegistry) {
    registry.describe(
        "fiat_fingerprint_identified_total",
        "Held-out genuine traces identified as the right class.",
    );
    registry.describe(
        "fiat_fingerprint_trials_total",
        "Held-out genuine traces evaluated.",
    );
    registry.describe(
        "fiat_fingerprint_false_spoofs_total",
        "Genuine traces falsely branded Spoof (must be zero).",
    );
    registry.describe(
        "fiat_fingerprint_spoofs_flagged_total",
        "Spoofed traces sealed as Spoof.",
    );
    registry.describe(
        "fiat_fingerprint_oracle_divergences_total",
        "Divergences in the mini oracle leg (must be zero).",
    );
    let g = |name, v: i64| registry.gauge(name, &[]).set(v);
    g(
        "fiat_fingerprint_identified_total",
        report.identified as i64,
    );
    g("fiat_fingerprint_trials_total", report.trials as i64);
    g(
        "fiat_fingerprint_false_spoofs_total",
        report.false_spoofs as i64,
    );
    g(
        "fiat_fingerprint_spoofs_flagged_total",
        report.spoof_detected as i64,
    );
    g(
        "fiat_fingerprint_oracle_divergences_total",
        report.oracle_divergences as i64,
    );
}

/// Render the experiment's text output (ends with the `fingerprint:
/// PASS` / `FINGERPRINT REGRESSION` trailer CI greps for).
pub fn fingerprint_text(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> String {
    let report = fingerprint_report(seed, quick);
    if let Some(r) = registry {
        record_metrics(&report, r);
    }
    let mut out = String::new();
    writeln!(out, "# Fingerprint gate (seed {seed})").unwrap();
    writeln!(
        out,
        "identification: {}/{} held-out traces ({:.1}%), {} false spoof accusations",
        report.identified,
        report.trials,
        report.accuracy_pct(),
        report.false_spoofs
    )
    .unwrap();
    writeln!(
        out,
        "spoof sweep: {}/{} hybrid devices sealed as Spoof",
        report.spoof_detected, report.spoof_trials
    )
    .unwrap();
    writeln!(
        out,
        "attack flip: gate off rides fail-open = {}; gate on blocks camera = {}, \
         detects N=1 plug = {}",
        report.gate_off_allowed, report.gate_on_blocked, report.gate_on_detected
    )
    .unwrap();
    writeln!(
        out,
        "oracle leg: {} fingerprint probes, {} divergences",
        report.oracle_probes, report.oracle_divergences
    )
    .unwrap();
    if report.passed() {
        out.push_str("fingerprint: PASS\n");
    } else {
        if report.accuracy_pct() < 90.0 {
            out.push_str("FINGERPRINT REGRESSION: held-out accuracy below 90%\n");
        }
        if report.false_spoofs > 0 {
            out.push_str("FINGERPRINT REGRESSION: genuine device falsely branded Spoof\n");
        }
        if report.spoof_detected != report.spoof_trials {
            out.push_str("FINGERPRINT REGRESSION: spoofed device escaped the gate\n");
        }
        if !(report.gate_off_allowed && report.gate_on_blocked && report.gate_on_detected) {
            out.push_str("FINGERPRINT REGRESSION: attack flip broken\n");
        }
        if report.oracle_divergences > 0 || report.oracle_probes == 0 {
            out.push_str("FINGERPRINT REGRESSION: oracle leg diverged or ran dry\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_and_is_deterministic() {
        let a = fingerprint_text(42, true, None);
        let b = fingerprint_text(42, true, None);
        assert_eq!(a, b);
        assert!(a.contains("fingerprint: PASS"), "{a}");
        assert!(!a.contains("FINGERPRINT REGRESSION"), "{a}");
    }

    #[test]
    fn quick_report_meets_the_acceptance_bar() {
        let report = fingerprint_report(7, true);
        assert!(report.passed(), "{report:?}");
        assert!(report.accuracy_pct() >= 90.0);
        assert_eq!(report.false_spoofs, 0);
        assert_eq!(
            report.trials,
            (QUICK_EVAL_SEEDS as usize) * CORPUS_CLASSES.len()
        );
    }

    #[test]
    fn registry_collects_the_scoreboard() {
        let registry = MetricRegistry::new();
        let _ = fingerprint_text(42, true, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_fingerprint_identified_total"));
        assert!(text.contains("fiat_fingerprint_false_spoofs_total 0"));
    }
}
