//! `experiments profile`: the shard-scaling profiling sweep.
//!
//! ROADMAP item 1 in experiment form: run the 1k-home corpus through
//! [`run_sharded_probed`] at each swept shard count, print the per-shard
//! / per-stage breakdown with the ranked "top suspected bottleneck"
//! line, and emit a schema-versioned [`BenchRecord`] for the
//! `BENCH_fleet.json` trajectory. Every sweep point is still checked
//! against the sequential reference — a profiler that changes the
//! answers would be measuring a different program.

use crate::bench_log::{self, BenchRecord, BenchRow};
use crate::fleet_exp::shard_counts;
use fiat_fleet::{build_workloads, run_sequential, run_sharded_probed, ProbedOutcome};
use fiat_probe::{ProbeConfig, Stage};
use fiat_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::time::Instant;

/// Above this evicted fraction the flight-recorder timeline no longer
/// covers the run and the report says so loudly.
pub const EVICTION_WARN_RATIO: f64 = 0.10;

/// The speedup `4 shards` must reach over `1 shard` on hosts with at
/// least 4 cores for the scaling gate to pass.
pub const SCALING_GATE_SPEEDUP: f64 = 2.0;

/// The scaling-regression verdict line for a sweep. On hosts with >= 4
/// cores it is a hard gate: `scaling: PASS` or `scaling: SCALING
/// REGRESSION` (CI greps for exactly these). On smaller hosts a
/// wall-clock speedup is physically unobservable, so the line records
/// the measured ratio but reports `scaling: SKIPPED` instead of a fake
/// verdict.
fn scaling_verdict(rows: &[BenchRow]) -> String {
    let pps_at = |shards: usize| rows.iter().find(|r| r.shards == shards).map(|r| r.pps);
    let (Some(base), Some(wide)) = (pps_at(1), pps_at(4)) else {
        return "scaling: SKIPPED — sweep lacks 1- and 4-shard points".to_string();
    };
    let speedup = wide / base.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        format!(
            "scaling: SKIPPED — host has {cores} core(s); speedup(4 shards) \
             {speedup:.2}x recorded but not gated (needs >= 4 cores)"
        )
    } else if speedup >= SCALING_GATE_SPEEDUP {
        format!("scaling: PASS — speedup(4 shards) {speedup:.2}x >= {SCALING_GATE_SPEEDUP:.1}x")
    } else {
        format!(
            "scaling: SCALING REGRESSION — speedup(4 shards) {speedup:.2}x \
             < {SCALING_GATE_SPEEDUP:.1}x on a {cores}-core host"
        )
    }
}

/// Everything one profiling sweep produced.
pub struct ProfileReport {
    /// The rendered report (`results/profile.txt`).
    pub text: String,
    /// The trajectory record to append to `BENCH_fleet.json`.
    pub record: BenchRecord,
    /// The max-shard run's merged flight-recorder timeline
    /// (`results/trace_profile.jsonl`).
    pub trace_jsonl: Option<String>,
    /// Whether every sweep point merged identically to the sequential
    /// reference.
    pub deterministic: bool,
}

/// Run the profiling sweep. Corpus generation and the sequential
/// reference run are untimed; each sweep point times one probed fleet
/// run. With a registry, the max-shard run's profile is published as
/// probe metrics (`fiat_fleet_shard_busy_ms` et al.) next to
/// per-shard-count `fiat_fleet_packets_per_sec` gauges.
pub fn profile_run(
    homes: usize,
    shards_max: usize,
    days: f64,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> ProfileReport {
    let probes = ProbeConfig::profiling();
    let workloads = build_workloads(homes, days, seed);
    let reference = run_sequential(&workloads);

    let mut text = String::new();
    writeln!(
        text,
        "# Fleet shard-scaling profile: {homes} homes x {days} days (seed {seed})"
    )
    .unwrap();
    writeln!(
        text,
        "corpus: {} packets; probes: stage accounting + flight recorder ({} events/ring)",
        reference.packets, probes.recorder_capacity
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut deterministic = true;
    let mut last: Option<ProbedOutcome> = None;
    let mut base_pps = 0.0;
    for shards in shard_counts(shards_max) {
        let t0 = Instant::now();
        let probed = run_sharded_probed(&workloads, shards, &probes);
        let micros = (t0.elapsed().as_micros() as u64).max(1);
        let ok = probed.fleet.stats == reference.stats
            && probed.fleet.packets == reference.packets
            && probed.fleet.registry.render_prometheus() == reference.registry.render_prometheus();
        deterministic &= ok;
        let pps = probed.fleet.packets as f64 * 1e6 / micros as f64;
        if base_pps == 0.0 {
            base_pps = pps;
        }
        writeln!(
            text,
            "\n## shards={shards}: wall-ms {:.1}  packets/s {:.0} ({:.2}x)  \
             deterministic {}  coverage {:.1}%",
            micros as f64 / 1e3,
            pps,
            if base_pps > 0.0 { pps / base_pps } else { 0.0 },
            if ok { "yes" } else { "NO" },
            probed.profile.coverage() * 100.0,
        )
        .unwrap();
        text.push_str(&probed.profile.breakdown_table());
        writeln!(text, "{}", probed.profile.top_bottleneck()).unwrap();
        if let Some(r) = registry {
            r.gauge(
                "fiat_fleet_packets_per_sec",
                &[("shards", shards.to_string().as_str())],
            )
            .set(pps as i64);
        }
        rows.push(BenchRow {
            shards,
            packets: probed.fleet.packets,
            wall_ms: micros as f64 / 1e3,
            pps,
        });
        last = Some(probed);
    }

    let last = last.expect("shard_counts is never empty");
    if let Some((total, dropped)) = last.profile.recorder_events {
        let ratio = if total == 0 {
            0.0
        } else {
            dropped as f64 / total as f64
        };
        writeln!(
            text,
            "\nflight recorder (max-shard run): {total} events recorded, \
             {dropped} evicted ({:.1}% evicted)",
            ratio * 100.0
        )
        .unwrap();
        if ratio > EVICTION_WARN_RATIO {
            writeln!(
                text,
                "WARNING: flight recorder evicted {:.1}% of the run — the merged \
                 timeline is a narrow window, not the run; raise recorder_capacity \
                 or shorten the corpus before trusting the trace",
                ratio * 100.0
            )
            .unwrap();
        }
    }
    writeln!(text, "{}", scaling_verdict(&rows)).unwrap();
    writeln!(
        text,
        "{}",
        if deterministic {
            "every probed run merged to the sequential reference exactly"
        } else {
            "WARNING: a probed run diverged from the reference"
        }
    )
    .unwrap();
    if let Some(r) = registry {
        r.describe(
            "fiat_fleet_packets_per_sec",
            "Fleet decision throughput at each swept shard count.",
        );
        last.profile.publish(r);
    }

    let stages = Stage::ALL
        .iter()
        .map(|&s| (s.as_str().to_string(), last.profile.stage_share(s)))
        .collect();
    let record = BenchRecord {
        date: bench_log::today_utc(),
        source: "profile",
        note: None,
        seed,
        homes,
        days,
        rows,
        stages,
        bottleneck: Some(last.profile.top_bottleneck()),
    };
    ProfileReport {
        text,
        record,
        trace_jsonl: last.recorder.as_ref().map(|r| r.to_jsonl()),
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_sweep_reports_breakdown_and_record() {
        let registry = MetricRegistry::new();
        let report = profile_run(3, 2, 0.05, 11, Some(&registry));
        assert!(report.deterministic);
        // The breakdown accounts for the wall time (acceptance: >= 95%)
        // and names a bottleneck.
        assert!(report.text.contains("coverage 100.0%"), "{}", report.text);
        assert!(report.text.contains("top suspected bottleneck:"));
        // Eviction accounting is always surfaced, as a percentage.
        assert!(report.text.contains("flight recorder"));
        assert!(report.text.contains("% evicted)"), "{}", report.text);
        // A sweep without a 4-shard point cannot be gated — but the
        // verdict line is still there for the CI grep to find.
        assert!(
            report
                .text
                .contains("scaling: SKIPPED — sweep lacks 1- and 4-shard points"),
            "{}",
            report.text
        );
        // The trajectory record mirrors the sweep.
        assert_eq!(report.record.source, "profile");
        assert_eq!(report.record.rows.len(), 2);
        assert!(report.record.rows.iter().all(|r| r.packets > 0));
        assert!(report.record.bottleneck.is_some());
        assert_eq!(report.record.stages.len(), Stage::ALL.len());
        // The probe metrics landed in the registry.
        assert!(
            registry
                .gauge("fiat_fleet_packets_per_sec", &[("shards", "2")])
                .get()
                > 0
        );
        // The recorder produced a merged JSONL timeline.
        let trace = report.trace_jsonl.expect("recorder was on");
        assert!(trace.contains("\"kind\":\"packet_decided\""));
    }

    #[test]
    fn scaling_verdict_gates_on_core_count() {
        let row = |shards: usize, pps: f64| BenchRow {
            shards,
            packets: 1,
            wall_ms: 1.0,
            pps,
        };
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let good = [row(1, 100.0), row(2, 180.0), row(4, 320.0)];
        let bad = [row(1, 100.0), row(2, 105.0), row(4, 110.0)];
        if cores >= 4 {
            assert!(scaling_verdict(&good).starts_with("scaling: PASS"));
            assert!(scaling_verdict(&bad).starts_with("scaling: SCALING REGRESSION"));
        } else {
            // Sub-4-core hosts record the ratio but never fake a verdict.
            assert!(scaling_verdict(&good).starts_with("scaling: SKIPPED"));
            assert!(scaling_verdict(&bad).starts_with("scaling: SKIPPED"));
        }
        assert!(scaling_verdict(&[row(2, 50.0)]).starts_with("scaling: SKIPPED"));
    }
}
