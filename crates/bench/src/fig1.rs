//! Figure 1 and the IoT Inspector analysis (§2.2).
//!
//! - **Fig 1(a)**: the 8 predictable flows of a Bose SoundTouch 10 over
//!   30 minutes — emitted as per-flow packet time series.
//! - **Fig 1(b)**: CDFs of per-device predictable-traffic percentage for
//!   a YourThings-like corpus and a Mon(IoT)r-like corpus (idle/active),
//!   Classic vs PortLess.
//! - **Fig 1(c)**: CDF of the maximum interval of predictable flows,
//!   weighted by predictable packets.
//! - **Inspector**: the same bucketing applied to 5-second aggregates.

use crate::{cdf, weighted_cdf};
use fiat_core::PredictabilityEngine;
use fiat_net::{FlowDef, FlowKey, Trace};
use fiat_trace::datasets::{aggregate_5s, moniotr_like, soundtouch_flows, yourthings_like};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Fig 1(a): per-flow packet timestamps for the SoundTouch-like device.
pub fn fig1a(seed: u64) -> String {
    let trace = soundtouch_flows(seed);
    let mut flows: BTreeMap<u16, Vec<f64>> = BTreeMap::new();
    for p in &trace.packets {
        flows.entry(p.size).or_default().push(p.ts.as_secs_f64());
    }
    let mut out = String::new();
    writeln!(out, "# Fig 1(a): Bose SoundTouch 10 flows over 30 minutes").unwrap();
    writeln!(
        out,
        "# flow(size B) | packets | first..last (s) | mean period (s)"
    )
    .unwrap();
    for (size, ts) in &flows {
        let period = if ts.len() > 1 {
            (ts.last().unwrap() - ts.first().unwrap()) / (ts.len() - 1) as f64
        } else {
            0.0
        };
        writeln!(
            out,
            "flow size={size:>5}  n={:>4}  span={:>7.1}..{:<7.1}  period={period:>6.1}",
            ts.len(),
            ts.first().unwrap(),
            ts.last().unwrap()
        )
        .unwrap();
    }
    let eng = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = eng.analyze(&trace.packets, &trace.dns);
    let frac = flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64;
    writeln!(out, "overall predictable fraction: {frac:.3}").unwrap();
    out
}

fn device_fractions(traces: &[(String, &Trace)], def: FlowDef) -> Vec<f64> {
    let eng = PredictabilityEngine::new(def);
    traces
        .iter()
        .map(|(_, t)| {
            let flags = eng.analyze(&t.packets, &t.dns);
            if flags.is_empty() {
                0.0
            } else {
                flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64
            }
        })
        .collect()
}

/// Fig 1(b) result: CDF series per (corpus, flow definition).
pub struct Fig1b {
    /// (series name, CDF points (predictable fraction, cum. devices)).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

/// Compute Fig 1(b). `n_yt`/`n_mon` control corpus sizes (65 and 104 in
/// the paper).
pub fn fig1b(n_yt: usize, n_mon: usize, hours: u64, seed: u64) -> Fig1b {
    let yt = yourthings_like(n_yt, hours, seed);
    let mon = moniotr_like(n_mon, seed.wrapping_add(1));
    let mut series = Vec::new();
    for def in FlowDef::ALL {
        let traces: Vec<(String, &Trace)> = yt.iter().map(|d| (d.name.clone(), &d.trace)).collect();
        let mut fr = device_fractions(&traces, def);
        series.push((format!("YourThings-{def}"), cdf(&mut fr, 20)));

        let idle: Vec<(String, &Trace)> = mon
            .idle
            .iter()
            .map(|d| (d.name.clone(), &d.trace))
            .collect();
        let mut fr = device_fractions(&idle, def);
        series.push((format!("MonIoTr-idle-{def}"), cdf(&mut fr, 20)));

        let active: Vec<(String, &Trace)> = mon
            .active
            .iter()
            .map(|d| (d.name.clone(), &d.trace))
            .collect();
        let mut fr = device_fractions(&active, def);
        series.push((format!("MonIoTr-active-{def}"), cdf(&mut fr, 20)));
    }
    Fig1b { series }
}

/// Render Fig 1(b) as text.
pub fn fig1b_text(n_yt: usize, n_mon: usize, hours: u64, seed: u64) -> String {
    let f = fig1b(n_yt, n_mon, hours, seed);
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 1(b): CDF of predictable-traffic fraction across devices"
    )
    .unwrap();
    for (name, pts) in &f.series {
        let med = pts
            .iter()
            .find(|(_, q)| *q >= 0.5)
            .map(|(x, _)| *x)
            .unwrap_or(0.0);
        let p20 = pts
            .iter()
            .find(|(_, q)| *q >= 0.2)
            .map(|(x, _)| *x)
            .unwrap_or(0.0);
        writeln!(
            out,
            "{name:<28} p20={p20:.3} median={med:.3} series={}",
            pts.iter()
                .map(|(x, q)| format!("({x:.2},{q:.2})"))
                .collect::<Vec<_>>()
                .join(" ")
        )
        .unwrap();
    }
    out
}

/// Fig 1(c): weighted CDF of max predictable-flow intervals (seconds).
pub fn fig1c(n_yt: usize, hours: u64, seed: u64) -> Vec<(f64, f64)> {
    let yt = yourthings_like(n_yt, hours, seed);
    let eng = PredictabilityEngine::new(FlowDef::PortLess);
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for d in &yt {
        for (iv, n) in eng.max_intervals(&d.trace.packets, &d.trace.dns) {
            pairs.push((iv.as_secs_f64(), n as f64));
        }
    }
    weighted_cdf(&mut pairs)
}

/// Render Fig 1(c) as text.
pub fn fig1c_text(n_yt: usize, hours: u64, seed: u64) -> String {
    let c = fig1c(n_yt, hours, seed);
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 1(c): CDF of max interval of predictable flows (s)"
    )
    .unwrap();
    for q in [0.5, 0.8, 0.9, 0.95, 1.0] {
        if let Some((x, _)) = c.iter().find(|(_, cq)| *cq >= q) {
            writeln!(out, "p{:<3.0} = {x:>7.1} s", q * 100.0).unwrap();
        }
    }
    if let Some((max, _)) = c.last() {
        writeln!(out, "max  = {max:>7.1} s  (paper: <= 600 s)").unwrap();
    }
    out
}

/// IoT Inspector: predictability over 5 s aggregates; returns per-device
/// fractions and the median.
pub fn inspector(n_devices: usize, hours: u64, seed: u64) -> (Vec<f64>, f64) {
    let corpus = yourthings_like(n_devices, hours, seed);
    let eng = PredictabilityEngine::new(FlowDef::PortLess);
    let mut fractions: Vec<f64> = corpus
        .iter()
        .map(|d| {
            let agg = aggregate_5s(&d.trace);
            let flags = eng.analyze(&agg.packets, &agg.dns);
            if flags.is_empty() {
                0.0
            } else {
                flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64
            }
        })
        .collect();
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = fractions[fractions.len() / 2];
    (fractions, median)
}

/// Count distinct PortLess flows in a trace (used by fig1a sanity checks).
pub fn distinct_portless_flows(trace: &Trace) -> usize {
    let keys: std::collections::HashSet<FlowKey> = trace
        .packets
        .iter()
        .map(|p| FlowKey::of(FlowDef::PortLess, p, &trace.dns))
        .collect();
    keys.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_reports_eight_predictable_flows() {
        let text = fig1a(0);
        assert_eq!(text.matches("flow size=").count(), 8);
        // The SoundTouch flows are strictly periodic: nearly everything
        // is predictable.
        let frac: f64 = text
            .lines()
            .find(|l| l.starts_with("overall"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(frac > 0.95, "predictable fraction {frac}");
    }

    #[test]
    fn fig1b_portless_beats_classic_on_yourthings() {
        let f = fig1b(12, 6, 2, 0);
        let median = |name: &str| -> f64 {
            f.series
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, pts)| pts.iter().find(|(_, q)| *q >= 0.5).unwrap().0)
                .unwrap()
        };
        assert!(
            median("YourThings-PortLess") > median("YourThings-Classic"),
            "PortLess {} vs Classic {}",
            median("YourThings-PortLess"),
            median("YourThings-Classic")
        );
    }

    #[test]
    fn fig1b_idle_more_predictable_than_active() {
        let f = fig1b(6, 10, 2, 1);
        let median = |name: &str| -> f64 {
            f.series
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, pts)| pts.iter().find(|(_, q)| *q >= 0.5).unwrap().0)
                .unwrap()
        };
        assert!(median("MonIoTr-idle-PortLess") > median("MonIoTr-active-PortLess"));
    }

    #[test]
    fn fig1c_bounded_by_ten_minutes() {
        let c = fig1c(10, 3, 0);
        assert!(!c.is_empty());
        let max = c.last().unwrap().0;
        // Generator draws periods up to 600 s; jitter adds a bit.
        assert!(max <= 660.0, "max interval {max}");
        // Most predictable traffic repeats within 5 minutes.
        let within_5min = c
            .iter()
            .filter(|(x, _)| *x <= 300.0)
            .map(|(_, q)| *q)
            .next_back()
            .unwrap_or(0.0);
        assert!(within_5min >= 0.6, "within 5 min: {within_5min}");
    }

    #[test]
    fn inspector_median_reasonable() {
        let (fractions, median) = inspector(8, 2, 0);
        assert_eq!(fractions.len(), 8);
        assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));
        // Aggregation erodes predictability but periodic flows with
        // periods >= 10 s mostly survive 5 s windowing.
        assert!(median > 0.3, "median {median}");
    }
}
