//! The fleet throughput experiment: sweep shard counts over a fixed
//! multi-home corpus and report packets/s, verifying at every point that
//! the sharded run merges to the exact sequential fleet view.
//!
//! This is the repo's first throughput trajectory (BENCH_*.json material)
//! rather than a paper artifact: the paper runs one proxy per home; the
//! ROADMAP target is a provider-scale fleet.

use crate::bench_log::{self, BenchRecord, BenchRow};
use fiat_fleet::{build_workloads, run_sequential, run_sharded, FleetOutcome};
use fiat_telemetry::MetricRegistry;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Worker threads used.
    pub shards: usize,
    /// Packets decided across all homes.
    pub packets: u64,
    /// Wall time of the sharded run, microseconds.
    pub micros: u64,
    /// Throughput in packets per second.
    pub pps: f64,
    /// Whether this run's merged stats and registry exposition were
    /// byte-identical to the sequential reference.
    pub deterministic: bool,
}

/// Full sweep output.
pub struct FleetReport {
    /// Sweep points, in increasing shard count.
    pub rows: Vec<FleetRow>,
    /// Homes in the corpus.
    pub homes: usize,
    /// The sequential reference outcome (fleet-wide merged view).
    pub reference: FleetOutcome,
}

/// Shard counts to sweep: powers of two up to and including `max`.
pub fn shard_counts(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts = Vec::new();
    let mut s = 1;
    while s < max {
        counts.push(s);
        s *= 2;
    }
    counts.push(max);
    counts
}

/// Run the sweep. Corpus generation and the sequential reference run are
/// outside the timed region; each sweep point times only `run_sharded`.
/// With a registry, per-shard-count throughput lands in
/// `fiat_fleet_packets_per_sec{shards="N"}` gauges.
pub fn fleet_benchmark(
    homes: usize,
    shards_max: usize,
    days: f64,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> FleetReport {
    let workloads = build_workloads(homes, days, seed);
    let reference = run_sequential(&workloads);
    if let Some(r) = registry {
        r.describe(
            "fiat_fleet_packets_per_sec",
            "Fleet decision throughput at each swept shard count.",
        );
        r.describe("fiat_fleet_homes", "Homes in the fleet corpus.");
        r.describe("fiat_fleet_packets", "Packets decided per full fleet run.");
        r.gauge("fiat_fleet_homes", &[]).set(homes as i64);
        r.gauge("fiat_fleet_packets", &[])
            .set(reference.packets as i64);
    }

    let mut rows = Vec::new();
    for shards in shard_counts(shards_max) {
        let t0 = Instant::now();
        let fleet = run_sharded(&workloads, shards);
        let micros = (t0.elapsed().as_micros() as u64).max(1);
        let deterministic = fleet.stats == reference.stats
            && fleet.packets == reference.packets
            && fleet.registry.render_prometheus() == reference.registry.render_prometheus();
        let pps = fleet.packets as f64 * 1e6 / micros as f64;
        if let Some(r) = registry {
            r.gauge(
                "fiat_fleet_packets_per_sec",
                &[("shards", shards.to_string().as_str())],
            )
            .set(pps as i64);
        }
        rows.push(FleetRow {
            shards,
            packets: fleet.packets,
            micros,
            pps,
            deterministic,
        });
    }
    FleetReport {
        rows,
        homes,
        reference,
    }
}

/// Lower a sweep into a `BENCH_fleet.json` trajectory record.
pub fn fleet_bench_record(report: &FleetReport, days: f64, seed: u64) -> BenchRecord {
    BenchRecord {
        date: bench_log::today_utc(),
        source: "fleet",
        note: None,
        seed,
        homes: report.homes,
        days,
        rows: report
            .rows
            .iter()
            .map(|r| BenchRow {
                shards: r.shards,
                packets: r.packets,
                wall_ms: r.micros as f64 / 1e3,
                pps: r.pps,
            })
            .collect(),
        stages: Vec::new(),
        bottleneck: None,
    }
}

/// Render the sweep as text (the `experiments fleet` output).
pub fn fleet_text_instrumented(
    homes: usize,
    shards_max: usize,
    days: f64,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> String {
    let report = fleet_benchmark(homes, shards_max, days, seed, registry);
    fleet_report_text(&report, days, seed)
}

/// Render an already-run sweep as text.
pub fn fleet_report_text(report: &FleetReport, days: f64, seed: u64) -> String {
    let s = &report.reference.stats;
    let mut out = String::new();
    writeln!(
        out,
        "# Fleet throughput: {} homes x {} days (seed {seed})",
        report.homes, days
    )
    .unwrap();
    writeln!(
        out,
        "corpus: {} packets; merged stats: total={} rule_hit={} dropped={}",
        report.reference.packets,
        s.total(),
        s.rule_hit,
        s.dropped(),
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>13}",
        "shards", "packets", "wall-ms", "packets/s", "deterministic"
    )
    .unwrap();
    let base = report.rows.first().map(|r| r.pps).unwrap_or(0.0);
    for r in &report.rows {
        writeln!(
            out,
            "{:>6} {:>12} {:>12.1} {:>12.0} {:>13} ({:.2}x)",
            r.shards,
            r.packets,
            r.micros as f64 / 1e3,
            r.pps,
            if r.deterministic { "yes" } else { "NO" },
            if base > 0.0 { r.pps / base } else { 0.0 },
        )
        .unwrap();
    }
    if report.rows.iter().all(|r| r.deterministic) {
        writeln!(
            out,
            "every sharded run merged to the sequential reference exactly"
        )
        .unwrap();
    } else {
        writeln!(out, "WARNING: sharded merge diverged from the reference").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_sweep_shape() {
        assert_eq!(shard_counts(1), vec![1]);
        assert_eq!(shard_counts(2), vec![1, 2]);
        assert_eq!(shard_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(shard_counts(6), vec![1, 2, 4, 6]);
        assert_eq!(shard_counts(0), vec![1]);
    }

    #[test]
    fn benchmark_is_deterministic_and_instrumented() {
        let registry = MetricRegistry::new();
        let report = fleet_benchmark(3, 2, 0.05, 11, Some(&registry));
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.deterministic));
        assert!(report.rows.iter().all(|r| r.packets > 0));
        assert!(
            registry
                .gauge("fiat_fleet_packets_per_sec", &[("shards", "2")])
                .get()
                > 0
        );
        assert_eq!(
            registry.gauge("fiat_fleet_packets", &[]).get() as u64,
            report.reference.packets
        );
        let text = fleet_text_instrumented(3, 2, 0.05, 11, None);
        assert!(text.contains("packets/s"));
        assert!(text.contains("sequential reference"));
    }
}
