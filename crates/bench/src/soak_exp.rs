//! The long-horizon soak experiment: weeks of streamed per-home traffic
//! under a hard memory budget (DESIGN §18, ROADMAP 5).
//!
//! Not a paper artifact — like the chaos soak this measures *this
//! implementation*: every bounded-state policy (rule-table LRU eviction,
//! quarantine record cap, checkpointed audit truncation, epoch-scoped
//! replay windows) must hold a hostile multi-week schedule inside
//! [`LongSoakConfig::budget`] with **zero false drops**, and the
//! snapshot-restore replay leg must stay in byte-identical lockstep with
//! the streamed original. A caps-disabled negative control must breach
//! the same budget — otherwise the accountant measures nothing. Output
//! is deterministic for a fixed seed and ends with a `soak: PASS` /
//! `SOAK REGRESSION` trailer CI greps for.

use crate::bench_log::{self, BenchRecord, BenchRow};
use fiat_chaos::{run_long_soak, LongSoakConfig, LongSoakReport};
use fiat_telemetry::{MetricRegistry, StateMetrics};
use std::fmt::Write as _;

/// Both legs of one soak run plus the artifacts the CLI writes.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Rendered text output (ends with the CI trailer).
    pub text: String,
    /// Deterministic report JSON (`results/soak_report.json`): the two
    /// legs only — no wall times, so two runs at the same seed are
    /// byte-identical.
    pub json: String,
    /// Capped-leg report.
    pub capped: LongSoakReport,
    /// Negative-control report.
    pub negative: LongSoakReport,
    /// Capped-leg wall time, milliseconds (not part of `json`).
    pub wall_ms: f64,
}

impl SoakOutcome {
    /// PASS = capped leg clean AND the negative control proves the
    /// accountant can see unbounded growth.
    pub fn passed(&self) -> bool {
        self.capped.passed() && self.negative.budget_breaches > 0
    }

    /// Trajectory record for `BENCH_fleet.json`: the capped leg as one
    /// single-shard row, with the verdict in the note.
    pub fn bench_record(&self, seed: u64) -> BenchRecord {
        let r = &self.capped;
        let pps = if self.wall_ms > 0.0 {
            r.packets as f64 / (self.wall_ms / 1_000.0)
        } else {
            0.0
        };
        BenchRecord {
            date: bench_log::today_utc(),
            source: "soak",
            note: Some(format!(
                "long soak: {} homes x {} days, hwm total {} / budget {}, {}",
                r.homes,
                r.days,
                r.hwm.total(),
                r.budget,
                if self.passed() { "PASS" } else { "REGRESSION" }
            )),
            seed,
            homes: r.homes as usize,
            days: f64::from(r.days),
            rows: vec![BenchRow {
                shards: 1,
                packets: r.packets,
                wall_ms: self.wall_ms,
                pps,
            }],
            stages: Vec::new(),
            bottleneck: None,
        }
    }
}

/// Deterministic two-leg JSON document. Spliced by hand — the vendored
/// serde derive cannot express a borrowed wrapper struct.
fn render_json(capped: &LongSoakReport, negative: &LongSoakReport) -> String {
    let c = serde_json::to_string(capped).expect("report renders");
    let n = serde_json::to_string(negative).expect("report renders");
    format!("{{\"capped\":{c},\"negative\":{n}}}\n")
}

fn leg_row(out: &mut String, name: &str, r: &LongSoakReport) {
    writeln!(
        out,
        "{:<9} {:>5} {:>4} {:>9} {:>6} {:>11} {:>7} {:>8} {:>9} {:>10} {:>8}",
        name,
        r.homes,
        r.days,
        r.packets,
        r.proofs_delivered,
        r.false_drops,
        r.samples,
        r.budget_breaches,
        r.hwm.total(),
        r.audit_truncated,
        r.replay_checked,
    )
    .unwrap();
}

/// Run both legs at explicit configurations (tests use scaled-down
/// fleets; the CLI passes `quick`/`full` + `negative`).
pub fn soak_outcome_with(
    capped_cfg: &LongSoakConfig,
    negative_cfg: &LongSoakConfig,
    seed: u64,
    registry: Option<&MetricRegistry>,
) -> SoakOutcome {
    let metrics = registry.map(StateMetrics::new);
    let start = std::time::Instant::now();
    let capped = run_long_soak(capped_cfg, metrics.as_ref());
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    // The negative control runs without telemetry: its gauges would
    // otherwise overwrite the capped leg's high-water marks with the
    // deliberately unbounded ones.
    let negative = run_long_soak(negative_cfg, None);

    let mut out = String::new();
    writeln!(
        out,
        "# Long-horizon soak: bounded state under a memory budget"
    )
    .unwrap();
    writeln!(
        out,
        "seed: {seed}  budget: {} state elements/home  caps: rules {:?}, quarantine records {:?}, \
         audit entries {:?}",
        capped.budget,
        capped_cfg.proxy_config().max_rules,
        capped_cfg.proxy_config().max_quarantine_records,
        capped_cfg.proxy_config().max_audit_entries,
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<9} {:>5} {:>4} {:>9} {:>6} {:>11} {:>7} {:>8} {:>9} {:>10} {:>8}",
        "leg",
        "homes",
        "days",
        "packets",
        "proven",
        "false-drops",
        "samples",
        "breaches",
        "hwm-total",
        "truncated",
        "replayed",
    )
    .unwrap();
    leg_row(&mut out, "capped", &capped);
    leg_row(&mut out, "uncapped", &negative);
    writeln!(out).unwrap();
    let h = &capped.hwm;
    writeln!(
        out,
        "capped hwm: rules {} (+{} ghosts)  open {}/{} pkts  quarantine {} rec / {} held  \
         audit {}  replay {} tkt / {} ent / {} ep",
        h.rules,
        h.rule_ghosts,
        h.open_events,
        h.open_packets,
        h.quarantine_records,
        h.quarantine_held,
        h.audit_entries,
        h.replay_tickets,
        h.replay_entries,
        h.replay_epochs,
    )
    .unwrap();
    writeln!(
        out,
        "audit chain: {} appended, {} truncated behind checkpoints (capped leg)",
        capped.audit_appended, capped.audit_truncated
    )
    .unwrap();
    writeln!(
        out,
        "replay leg: {} homes restored mid-soak, {} decision mismatches, {} state mismatches",
        capped.replay_checked, capped.replay_decision_mismatches, capped.replay_state_mismatches
    )
    .unwrap();
    writeln!(
        out,
        "negative control (caps off): {} budget breaches across {} samples, audit hwm {}",
        negative.budget_breaches, negative.samples, negative.hwm.audit_entries
    )
    .unwrap();
    writeln!(out).unwrap();

    let outcome_line = if capped.passed() && negative.budget_breaches > 0 {
        format!(
            "soak: PASS ({} homes x {} days streamed: 0 false drops, 0 budget breaches, \
             {} replayed homes in lockstep; negative control breached {} times)",
            capped.homes, capped.days, capped.replay_checked, negative.budget_breaches
        )
    } else if !capped.passed() {
        format!(
            "SOAK REGRESSION: {} false drops, {} budget breaches, {} replay decision mismatches, \
             {} replay state mismatches",
            capped.false_drops,
            capped.budget_breaches,
            capped.replay_decision_mismatches,
            capped.replay_state_mismatches
        )
    } else {
        "SOAK REGRESSION: the caps-disabled negative control never breached the budget — \
         the accountant is not measuring growth"
            .to_string()
    };
    writeln!(out, "{outcome_line}").unwrap();

    let json = render_json(&capped, &negative);
    SoakOutcome {
        text: out,
        json,
        capped,
        negative,
        wall_ms,
    }
}

/// Run the experiment at CLI scale: `quick` = the CI smoke fleet,
/// otherwise the full four-week fleet.
pub fn soak_outcome(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> SoakOutcome {
    let capped = if quick {
        LongSoakConfig::quick(seed)
    } else {
        LongSoakConfig::full(seed)
    };
    soak_outcome_with(&capped, &LongSoakConfig::negative(seed), seed, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pair(seed: u64) -> (LongSoakConfig, LongSoakConfig) {
        let capped = LongSoakConfig {
            homes: 4,
            days: 15,
            replay_every: 2,
            ..LongSoakConfig::quick(seed)
        };
        let negative = LongSoakConfig {
            homes: 2,
            ..LongSoakConfig::negative(seed)
        };
        (capped, negative)
    }

    #[test]
    fn tiny_soak_passes_with_trailer() {
        let (c, n) = tiny_pair(42);
        let out = soak_outcome_with(&c, &n, 42, None);
        assert!(out.passed(), "{}", out.text);
        assert!(out.text.contains("soak: PASS"), "{}", out.text);
        assert!(!out.text.contains("SOAK REGRESSION"), "{}", out.text);
        let record = out.bench_record(42);
        assert_eq!(record.source, "soak");
        assert!(record.note.as_deref().unwrap_or("").contains("PASS"));
    }

    #[test]
    fn report_json_is_byte_identical_across_runs() {
        let (c, n) = tiny_pair(7);
        let a = soak_outcome_with(&c, &n, 7, None);
        let b = soak_outcome_with(&c, &n, 7, None);
        assert_eq!(a.json, b.json);
        assert_eq!(a.text, b.text);
        assert!(a.json.contains("\"capped\""));
        assert!(a.json.contains("\"budget_breaches\""));
    }

    #[test]
    fn registry_collects_state_gauges() {
        let registry = MetricRegistry::new();
        let (c, n) = tiny_pair(42);
        let out = soak_outcome_with(&c, &n, 42, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_state_rules_hwm"), "{text}");
        assert!(text.contains("fiat_state_audit_entries_hwm"), "{text}");
        assert!(out.capped.hwm.rules > 0);
    }
}
