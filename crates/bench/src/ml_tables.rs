//! Tables 2–5: the machine-learning evaluation of §4.
//!
//! - **Table 2**: mean balanced accuracy of nine models over all
//!   device-location event corpora (5-fold CV, unit-variance scaling).
//! - **Table 3**: per device-location precision/recall/F1 of the manual
//!   class for Nearest Centroid and BernoulliNB.
//! - **Table 4**: permutation feature importance for WyzeCam-DE under
//!   BernoulliNB (50 shuffles).
//! - **Table 5**: cross-location transfer F1 (train X, test Y) for the
//!   three NJ devices that have VPN captures.

use crate::corpus::{build_event_corpus, DeviceEventCorpus};
use fiat_ml::adaboost::AdaBoost;
use fiat_ml::cv::{cross_validate, CvResult};
use fiat_ml::forest::RandomForest;
use fiat_ml::knn::KNearestNeighbors;
use fiat_ml::metrics::ConfusionMatrix;
use fiat_ml::mlp::Mlp;
use fiat_ml::naive_bayes::{BernoulliNB, GaussianNB};
use fiat_ml::nearest_centroid::NearestCentroid;
use fiat_ml::permutation::{permutation_importance_with, FeatureImportance};
use fiat_ml::svm::LinearSvc;
use fiat_ml::tree::DecisionTree;
use fiat_ml::{Classifier, Dataset, Distance, StandardScaler};
use fiat_trace::Location;
use std::fmt::Write;

/// Label of the manual class in event datasets.
pub const MANUAL: usize = 2;

/// The nine models of Table 2, with the paper's best hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Nearest Centroid, Chebyshev distance.
    NearestCentroid,
    /// Bernoulli Naive Bayes.
    BernoulliNb,
    /// 8×128 ReLU MLP.
    NeuralNetwork,
    /// Gaussian Naive Bayes.
    GaussianNb,
    /// CART, max depth 3.
    DecisionTree,
    /// AdaBoost, 50 stumps.
    AdaBoost,
    /// Linear SVC (hinge SGD, one-vs-rest).
    SupportVector,
    /// Random forest, 50 trees.
    RandomForest,
    /// k-NN, k = 5, Euclidean.
    KNearestNeighbors,
}

impl ModelKind {
    /// All models in Table 2's row order.
    pub const ALL: [ModelKind; 9] = [
        ModelKind::NearestCentroid,
        ModelKind::BernoulliNb,
        ModelKind::NeuralNetwork,
        ModelKind::GaussianNb,
        ModelKind::DecisionTree,
        ModelKind::AdaBoost,
        ModelKind::SupportVector,
        ModelKind::RandomForest,
        ModelKind::KNearestNeighbors,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::NearestCentroid => "Nearest Centroid Classifier",
            ModelKind::BernoulliNb => "Bernoulli Naive Bayes",
            ModelKind::NeuralNetwork => "Neural Network",
            ModelKind::GaussianNb => "Gaussian Naive Bayes",
            ModelKind::DecisionTree => "Decision Tree",
            ModelKind::AdaBoost => "AdaBoost Classifier",
            ModelKind::SupportVector => "Support Vector Classifier",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::KNearestNeighbors => "K-Nearest Neighbors",
        }
    }

    /// Run 5-fold CV of this model on a dataset.
    pub fn cross_validate(self, data: &Dataset, k: usize, seed: u64) -> CvResult {
        match self {
            ModelKind::NearestCentroid => {
                cross_validate(data, k, seed, || NearestCentroid::new(Distance::Chebyshev))
            }
            ModelKind::BernoulliNb => cross_validate(data, k, seed, BernoulliNB::new),
            ModelKind::NeuralNetwork => {
                cross_validate(data, k, seed, || Mlp::new(vec![128; 8], 30, seed))
            }
            ModelKind::GaussianNb => cross_validate(data, k, seed, GaussianNB::new),
            ModelKind::DecisionTree => cross_validate(data, k, seed, || DecisionTree::new(3)),
            ModelKind::AdaBoost => cross_validate(data, k, seed, || AdaBoost::new(50, 1)),
            ModelKind::SupportVector => {
                cross_validate(data, k, seed, || LinearSvc::new(1e-4, 20, seed))
            }
            ModelKind::RandomForest => {
                cross_validate(data, k, seed, || RandomForest::new(50, 8, seed))
            }
            ModelKind::KNearestNeighbors => cross_validate(data, k, seed, || {
                KNearestNeighbors::new(5, Distance::Euclidean)
            }),
        }
    }
}

/// The 13 device-location corpora of Table 3: NJ devices (EchoDot4,
/// HomeMini, WyzeCam) at US/JP/DE plus the IL devices (Home, EchoDot3,
/// E4, Blink) at US.
pub fn table3_corpora(days: f64, seed: u64) -> Vec<DeviceEventCorpus> {
    let mut out = Vec::new();
    for loc in Location::ALL {
        let all = build_event_corpus(loc, days, seed ^ (loc.ip_base() as u64), true);
        for c in all {
            let nj = matches!(c.device, 0..=2);
            let il = matches!(c.device, 4 | 6 | 7 | 8);
            if nj || (il && loc == Location::Us) {
                out.push(c);
            }
        }
    }
    out
}

/// Display name "Device-LOC" for NJ devices, bare name for IL ones.
pub fn corpus_label(c: &DeviceEventCorpus) -> String {
    if matches!(c.device, 0..=2) {
        format!("{}-{}", c.name, c.location.suffix())
    } else {
        c.name.clone()
    }
}

/// Table 2: mean balanced accuracy per model across all corpora. The
/// (model × corpus) grid is embarrassingly parallel; std scoped threads
/// fan it out across cores (the MLP rows dominate otherwise).
pub fn table2(days: f64, seed: u64, models: &[ModelKind]) -> Vec<(ModelKind, f64)> {
    let corpora = table3_corpora(days, seed);
    let mut rows: Vec<(ModelKind, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = models
            .iter()
            .map(|&m| {
                let corpora = &corpora;
                scope.spawn(move || {
                    let mean: f64 = corpora
                        .iter()
                        .map(|c| {
                            m.cross_validate(&c.dataset, 5, seed)
                                .mean_balanced_accuracy()
                        })
                        .sum::<f64>()
                        / corpora.len() as f64;
                    (m, mean)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    rows
}

/// Render Table 2.
pub fn table2_text(days: f64, seed: u64, models: &[ModelKind]) -> String {
    let rows = table2(days, seed, models);
    let mut out = String::new();
    writeln!(out, "# Table 2: model selection (mean balanced accuracy)").unwrap();
    for (m, acc) in rows {
        writeln!(out, "{:<28} {acc:.3}", m.name()).unwrap();
    }
    out
}

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// "Device-LOC" label.
    pub label: String,
    /// NCC precision/recall/F1 on the manual class.
    pub ncc: (f64, f64, f64),
    /// BernoulliNB precision/recall/F1 on the manual class.
    pub bnb: (f64, f64, f64),
}

/// Table 3: manual-class P/R/F1 per device-location, 5-fold CV.
pub fn table3(days: f64, seed: u64) -> Vec<Table3Row> {
    table3_corpora(days, seed)
        .iter()
        .map(|c| {
            let ncc = ModelKind::NearestCentroid.cross_validate(&c.dataset, 5, seed);
            let bnb = ModelKind::BernoulliNb.cross_validate(&c.dataset, 5, seed);
            Table3Row {
                label: corpus_label(c),
                ncc: (
                    ncc.mean_precision(MANUAL),
                    ncc.mean_recall(MANUAL),
                    ncc.mean_f1(MANUAL),
                ),
                bnb: (
                    bnb.mean_precision(MANUAL),
                    bnb.mean_recall(MANUAL),
                    bnb.mean_f1(MANUAL),
                ),
            }
        })
        .collect()
}

/// Render Table 3.
pub fn table3_text(days: f64, seed: u64) -> String {
    let rows = table3(days, seed);
    let mut out = String::new();
    writeln!(out, "# Table 3: unpredictable manual event classification").unwrap();
    writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "device", "NCC-P", "NCC-R", "NCC-F1", "BNB-P", "BNB-R", "BNB-F1"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<14} {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2}",
            r.label, r.ncc.0, r.ncc.1, r.ncc.2, r.bnb.0, r.bnb.1, r.bnb.2
        )
        .unwrap();
    }
    out
}

/// Table 4: permutation importance for WyzeCam-DE under BernoulliNB.
///
/// Scored by the mean true-class log-likelihood margin rather than hard
/// F1: the 66 features are heavily redundant (five per-packet slots per
/// signal), so single-feature shuffles rarely flip a hard label, but the
/// margin moves smoothly and preserves the paper's ranking — protocol,
/// direction, and TLS on top; destination-IP octets at exactly zero.
pub fn table4(days: f64, seed: u64, n_repeats: usize) -> Vec<FeatureImportance> {
    let corpora = build_event_corpus(Location::Germany, days, seed, true);
    let wyze = corpora
        .into_iter()
        .find(|c| c.name == "WyzeCam")
        .expect("WyzeCam corpus");
    let (_, x) = StandardScaler::fit_transform(&wyze.dataset.x);
    let scaled = Dataset {
        x,
        y: wyze.dataset.y.clone(),
        n_classes: 3,
        feature_names: wyze.dataset.feature_names.clone(),
    };
    let mut model = BernoulliNB::new();
    model.fit(&scaled);
    let margin = |d: &Dataset| -> f64 {
        let mut total = 0.0;
        for (row, &y) in d.x.iter().zip(&d.y) {
            let ll = model.joint_log_likelihood(row);
            let yi = model.classes().iter().position(|&c| c == y).unwrap_or(0);
            let best_other = ll
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != yi)
                .map(|(_, &v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            total += ll[yi] - best_other;
        }
        total / d.len().max(1) as f64
    };
    permutation_importance_with(&scaled, n_repeats, seed, margin)
}

/// Render Table 4 (top 5 + the dst-ip features).
pub fn table4_text(days: f64, seed: u64, n_repeats: usize) -> String {
    let imp = table4(days, seed, n_repeats);
    let mut out = String::new();
    writeln!(
        out,
        "# Table 4: permutation importance (margin score), WyzeCam-DE, BernoulliNB"
    )
    .unwrap();
    for fi in imp.iter().take(5) {
        writeln!(out, "{:<18} {:.4}", fi.name, fi.importance).unwrap();
    }
    writeln!(out, "...").unwrap();
    // The paper's bottom rows: pkt1/pkt2 destination-IP octets at zero.
    // (pkt4/pkt5 "IP" slots of short events are zero-filled, so shuffling
    // them leaks event length, not address information.)
    let ip_max = imp
        .iter()
        .filter(|f| f.name.starts_with("pkt1-dst-ip") || f.name.starts_with("pkt2-dst-ip"))
        .map(|f| f.importance.abs())
        .fold(0.0, f64::max);
    writeln!(
        out,
        "max |importance| over pkt1/pkt2 dst-ip features: {ip_max:.4} (paper: 0.0000)"
    )
    .unwrap();
    out
}

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Device name.
    pub device: String,
    /// "X-Y" transfer direction.
    pub transfer: String,
    /// NCC F1 on the manual class.
    pub ncc_f1: f64,
    /// BernoulliNB F1 on the manual class.
    pub bnb_f1: f64,
}

fn train_test_f1<C: Classifier>(mut model: C, train: &Dataset, test: &Dataset) -> f64 {
    // Per-dataset standardization, as the paper's preprocessing ("scaling
    // all the features to unit variance") implies. This is also what makes
    // transfer work at all for distance-based models: each location's
    // constant destination-IP octets map to zero in *both* datasets, so
    // the location shift never dominates the Chebyshev distance.
    let (_, train_x) = StandardScaler::fit_transform(&train.x);
    let scaled = Dataset {
        x: train_x,
        y: train.y.clone(),
        n_classes: 3,
        feature_names: train.feature_names.clone(),
    };
    model.fit(&scaled);
    let (_, test_x) = StandardScaler::fit_transform(&test.x);
    let pred: Vec<usize> = test_x.iter().map(|r| model.predict_one(r)).collect();
    ConfusionMatrix::from_predictions(&test.y, &pred, 3).f1(MANUAL)
}

/// Table 5: cross-location transfer F1 for EchoDot4, HomeMini, WyzeCam.
pub fn table5(days: f64, seed: u64) -> Vec<Table5Row> {
    let mut corpora_by_loc = Vec::new();
    for loc in Location::ALL {
        corpora_by_loc.push(build_event_corpus(
            loc,
            days,
            seed ^ (loc.ip_base() as u64),
            true,
        ));
    }
    let pairs = [
        (Location::Us, Location::Japan, "US-JP"),
        (Location::Us, Location::Germany, "US-DE"),
        (Location::Japan, Location::Germany, "JP-DE"),
    ];
    let loc_idx = |l: Location| Location::ALL.iter().position(|&x| x == l).unwrap();
    let mut rows = Vec::new();
    for device in [0u16, 1, 2] {
        for (a, b, label) in pairs {
            let train = corpora_by_loc[loc_idx(a)]
                .iter()
                .find(|c| c.device == device)
                .unwrap();
            let test = corpora_by_loc[loc_idx(b)]
                .iter()
                .find(|c| c.device == device)
                .unwrap();
            rows.push(Table5Row {
                device: train.name.clone(),
                transfer: label.to_string(),
                ncc_f1: train_test_f1(
                    NearestCentroid::new(Distance::Chebyshev),
                    &train.dataset,
                    &test.dataset,
                ),
                bnb_f1: train_test_f1(BernoulliNB::new(), &train.dataset, &test.dataset),
            });
        }
    }
    rows
}

/// Render Table 5.
pub fn table5_text(days: f64, seed: u64) -> String {
    let rows = table5(days, seed);
    let mut out = String::new();
    writeln!(
        out,
        "# Table 5: F1 score of cross-location transfer (manual class)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<8} {:>7} {:>7}",
        "device", "transfer", "NCC", "BNB"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<10} {:<8} {:>7.2} {:>7.2}",
            r.device, r.transfer, r.ncc_f1, r.bnb_f1
        )
        .unwrap();
    }
    out
}

/// §4.1 hyper-parameter exploration: distance metrics for NCC/kNN, k for
/// kNN (3–15), decision-tree depth (2–12), and MLP depth. The paper's
/// findings: Chebyshev best for NCC, Euclidean with k = 5 for kNN, depth
/// 3 for the tree, 8 hidden layers for the MLP.
pub fn hyperparams_text(days: f64, seed: u64, include_mlp: bool) -> String {
    use std::fmt::Write as _;
    // One representative corpus (EchoDot4-US) keeps the sweep tractable;
    // the paper likewise reports a single best setting across devices.
    let corpus = build_event_corpus(Location::Us, days, seed, true);
    let data = &corpus
        .iter()
        .find(|c| c.name == "EchoDot4")
        .expect("EchoDot4 corpus")
        .dataset;
    let mut out = String::new();
    writeln!(
        out,
        "# §4.1 hyper-parameter exploration (balanced accuracy, 5-fold CV)"
    )
    .unwrap();

    writeln!(
        out,
        "
## Nearest Centroid distance"
    )
    .unwrap();
    for (name, d) in [
        ("euclidean", Distance::Euclidean),
        ("manhattan", Distance::Manhattan),
        ("chebyshev", Distance::Chebyshev),
    ] {
        let acc =
            cross_validate(data, 5, seed, || NearestCentroid::new(d)).mean_balanced_accuracy();
        writeln!(out, "NCC-{name:<10} {acc:.3}").unwrap();
    }

    writeln!(
        out,
        "
## k-NN (Euclidean)"
    )
    .unwrap();
    for k in [3usize, 5, 7, 9, 11, 15] {
        let acc = cross_validate(data, 5, seed, || {
            KNearestNeighbors::new(k, Distance::Euclidean)
        })
        .mean_balanced_accuracy();
        writeln!(out, "kNN k={k:<3} {acc:.3}").unwrap();
    }

    writeln!(
        out,
        "
## Decision tree depth"
    )
    .unwrap();
    for depth in [2usize, 3, 4, 6, 8, 12] {
        let acc =
            cross_validate(data, 5, seed, || DecisionTree::new(depth)).mean_balanced_accuracy();
        writeln!(out, "tree depth={depth:<3} {acc:.3}").unwrap();
    }

    if include_mlp {
        writeln!(
            out,
            "
## MLP hidden layers (width 128)"
        )
        .unwrap();
        for layers in [1usize, 2, 4, 8] {
            let acc = cross_validate(data, 5, seed, || Mlp::new(vec![128; layers], 30, seed))
                .mean_balanced_accuracy();
            writeln!(out, "mlp layers={layers:<3} {acc:.3}").unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAYS: f64 = 6.0;

    #[test]
    fn table3_has_thirteen_rows() {
        let corpora = table3_corpora(1.0, 0);
        assert_eq!(corpora.len(), 13);
        let labels: Vec<String> = corpora.iter().map(corpus_label).collect();
        assert!(labels.contains(&"EchoDot4-US".to_string()));
        assert!(labels.contains(&"WyzeCam-DE".to_string()));
        assert!(labels.contains(&"Home".to_string()));
        assert!(labels.contains(&"E4".to_string()));
    }

    #[test]
    fn fast_models_beat_chance_on_real_corpora() {
        // Use a couple of cheap models on a medium corpus: balanced
        // accuracy must be well above the 1/3 chance level.
        for m in [ModelKind::BernoulliNb, ModelKind::NearestCentroid] {
            let rows = table2(DAYS, 7, &[m]);
            assert!(
                rows[0].1 > 0.6,
                "{}: balanced accuracy {:.3}",
                m.name(),
                rows[0].1
            );
        }
    }

    #[test]
    fn table3_manual_f1_reasonable() {
        let rows = table3(DAYS, 11);
        for r in &rows {
            assert!(r.bnb.2 > 0.45, "{}: BNB manual F1 {:.2}", r.label, r.bnb.2);
        }
        // Mean F1 across devices in the paper's ballpark (0.76-0.99).
        let mean: f64 = rows.iter().map(|r| r.bnb.2).sum::<f64>() / rows.len() as f64;
        assert!(mean > 0.7, "mean BNB manual F1 {mean:.3}");
    }

    #[test]
    fn table4_ip_features_are_unimportant() {
        let imp = table4(DAYS, 3, 10);
        assert_eq!(imp.len(), 66);
        // The paper's Table 4 lists pkt1/pkt2 destination-IP octets at
        // exactly zero importance (the relay endpoint is class-blind).
        // pkt4/pkt5 slots of short events zero-fill and therefore leak
        // event *length*, which is excluded here.
        let ip_max = imp
            .iter()
            .filter(|f| f.name.starts_with("pkt1-dst-ip") || f.name.starts_with("pkt2-dst-ip"))
            .map(|f| f.importance.abs())
            .fold(0.0, f64::max);
        assert!(
            ip_max < 0.02 * imp[0].importance.max(1e-9),
            "IP importance {ip_max} vs top {}",
            imp[0].importance
        );
        // The top feature is a protocol/TLS/size-ish signal, not an IP.
        assert!(!imp[0].name.contains("dst-ip"), "top: {}", imp[0].name);
        assert!(
            imp[0].importance > 0.05,
            "top importance {}",
            imp[0].importance
        );
    }

    #[test]
    fn hyperparam_sweep_produces_sane_scores() {
        let text = hyperparams_text(DAYS, 2, false);
        // All reported accuracies parse and beat chance.
        let scores: Vec<f64> = text
            .lines()
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .collect();
        assert!(scores.len() >= 15, "{text}");
        assert!(scores.iter().all(|&s| s > 0.4 && s <= 1.0), "{text}");
    }

    #[test]
    fn table5_transfer_holds() {
        let rows = table5(DAYS, 5);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.bnb_f1 > 0.6,
                "{} {} BNB transfer F1 {:.2}",
                r.device,
                r.transfer,
                r.bnb_f1
            );
        }
    }
}
