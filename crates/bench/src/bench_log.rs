//! Schema-versioned performance-trajectory records (`BENCH_fleet.json`).
//!
//! One benchmark run is one appended record; the file is the repo's
//! memory of how fleet throughput moves as the runtime changes. The
//! document is a single JSON object — `{"schema": 1, "records": [...]}`
//! — with one record per line inside the array so diffs stay readable.
//!
//! Built on the vendored `serde` [`Value`] data model (no external JSON
//! dependency); [`Raw`] passes a `Value` tree through the vendored
//! `serde_json` entry points unchanged.

use serde::Value;
use std::path::Path;

/// Default trajectory file, at the repo root next to the other
/// `BENCH_*.json` material.
pub const BENCH_FLEET_PATH: &str = "BENCH_fleet.json";

/// Document schema version; bump on incompatible record changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A [`Value`] tree with pass-through `Serialize`/`Deserialize`, so a
/// whole untyped JSON document moves through the vendored `serde_json`
/// entry points (which are generic over the traits) without a schema
/// struct.
pub struct Raw(pub Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl serde::Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Raw(v.clone()))
    }
}

/// One swept shard count inside a record.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Worker threads used.
    pub shards: usize,
    /// Packets decided across all homes.
    pub packets: u64,
    /// Wall time of the run, milliseconds.
    pub wall_ms: f64,
    /// Throughput, packets per second.
    pub pps: f64,
}

/// One benchmark run: where the numbers came from and what they were.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Civil date (`YYYY-MM-DD`, UTC) the record was taken.
    pub date: String,
    /// Producer: `"seed"` (imported baseline), `"fleet"`
    /// (`experiments fleet`), `"profile"` (`experiments profile`), or
    /// `"soak"` (`experiments soak`, the long-horizon bounded-state
    /// soak).
    pub source: &'static str,
    /// Free-form context (e.g. what baseline a seed record imports).
    pub note: Option<String>,
    /// RNG seed the corpus was built from.
    pub seed: u64,
    /// Homes in the corpus.
    pub homes: usize,
    /// Capture length per home, days.
    pub days: f64,
    /// Swept shard counts, in sweep order.
    pub rows: Vec<BenchRow>,
    /// Per-stage share of shard wall time (profile runs only; empty
    /// otherwise). Keys are [`fiat_probe::Stage`] names.
    pub stages: Vec<(String, f64)>,
    /// The ranked bottleneck line (profile runs only).
    pub bottleneck: Option<String>,
}

impl BenchRecord {
    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("date".into(), Value::Str(self.date.clone())),
            ("source".into(), Value::Str(self.source.into())),
        ];
        if let Some(note) = &self.note {
            obj.push(("note".into(), Value::Str(note.clone())));
        }
        obj.push(("seed".into(), Value::U64(self.seed)));
        obj.push(("homes".into(), Value::U64(self.homes as u64)));
        obj.push(("days".into(), Value::F64(self.days)));
        obj.push((
            "rows".into(),
            Value::Arr(
                self.rows
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("shards".into(), Value::U64(r.shards as u64)),
                            ("packets".into(), Value::U64(r.packets)),
                            ("wall_ms".into(), Value::F64(r.wall_ms)),
                            ("pps".into(), Value::F64(r.pps)),
                        ])
                    })
                    .collect(),
            ),
        ));
        if !self.stages.is_empty() {
            obj.push((
                "stages".into(),
                Value::Obj(
                    self.stages
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(b) = &self.bottleneck {
            obj.push(("bottleneck".into(), Value::Str(b.clone())));
        }
        Value::Obj(obj)
    }
}

/// Today's civil date (`YYYY-MM-DD`, UTC), derived from the system clock
/// with the days-to-civil algorithm — no date dependency.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Proleptic-Gregorian civil date from days since 1970-01-01
/// (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn render_document(records: &[Value]) -> String {
    let mut out = format!("{{\"schema\":{SCHEMA_VERSION},\n \"records\":[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&serde_json::to_string(&Raw(r.clone())).expect("value renders"));
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(" ]}\n");
    out
}

/// Load and validate the trajectory document, returning its records.
/// A missing file is an empty trajectory, not an error.
pub fn load_fleet_records(path: &Path) -> Result<Vec<Value>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let Raw(doc) =
        serde_json::from_str::<Raw>(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| format!("{}: expected a JSON object", path.display()))?;
    match Value::field(obj, "schema") {
        Some(Value::U64(SCHEMA_VERSION)) => {}
        other => {
            return Err(format!(
                "{}: unsupported schema {other:?} (want {SCHEMA_VERSION})",
                path.display()
            ))
        }
    }
    Ok(Value::field(obj, "records")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing records array", path.display()))?
        .to_vec())
}

/// Append one record to the trajectory file, creating it if absent.
/// Refuses (rather than clobbers) a file with an unknown schema.
pub fn append_fleet_record(path: &Path, record: &BenchRecord) -> Result<(), String> {
    let mut records = load_fleet_records(path)?;
    records.push(record.to_value());
    std::fs::write(path, render_document(&records)).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(source: &'static str) -> BenchRecord {
        BenchRecord {
            date: "2026-08-08".into(),
            source,
            note: Some("unit test".into()),
            seed: 42,
            homes: 4,
            days: 1.0,
            rows: vec![
                BenchRow {
                    shards: 1,
                    packets: 206_291,
                    wall_ms: 88.3,
                    pps: 2_336_728.0,
                },
                BenchRow {
                    shards: 2,
                    packets: 206_291,
                    wall_ms: 83.2,
                    pps: 2_479_251.0,
                },
            ],
            stages: vec![("decide".into(), 0.93), ("merge".into(), 0.04)],
            bottleneck: Some("top suspected bottleneck: merge 4.0% — x".into()),
        }
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(20_663), (2026, 7, 29));
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
    }

    #[test]
    fn append_creates_validates_and_accumulates() {
        let dir = std::env::temp_dir().join("fiat_bench_log_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_fleet.json");
        let _ = std::fs::remove_file(&path);

        assert!(load_fleet_records(&path).unwrap().is_empty());
        append_fleet_record(&path, &record("seed")).unwrap();
        append_fleet_record(&path, &record("profile")).unwrap();

        let records = load_fleet_records(&path).unwrap();
        assert_eq!(records.len(), 2);
        let first = records[0].as_obj().unwrap();
        assert_eq!(
            Value::field(first, "source").and_then(Value::as_str),
            Some("seed")
        );
        let rows = Value::field(first, "rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        let row0 = rows[0].as_obj().unwrap();
        assert!(matches!(
            Value::field(row0, "packets"),
            Some(Value::U64(206_291))
        ));
        // Profile extras survive the round trip.
        let second = records[1].as_obj().unwrap();
        assert!(Value::field(second, "stages").is_some());
        assert!(Value::field(second, "bottleneck").is_some());
        // One record per line between the two-line header and the footer.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3 + records.len());

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_schema_is_refused_not_clobbered() {
        let dir = std::env::temp_dir().join("fiat_bench_log_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_fleet.json");
        std::fs::write(&path, "{\"schema\":99,\"records\":[]}").unwrap();
        let before = std::fs::read_to_string(&path).unwrap();
        assert!(append_fleet_record(&path, &record("fleet")).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }
}
