//! §6 delay-tolerance experiment: how slow can FIAT afford to be before
//! breaking IoT functionality? The paper empirically finds every testbed
//! device tolerates two seconds of added validation delay, because TCP's
//! timeout/retransmission absorbs the hold.

use fiat_net::SimDuration;
use fiat_simnet::tcp::TcpRetransmitModel;
use std::fmt::Write;

/// Per-device application deadlines (vendor apps surface an error after
/// this long; cameras are the most patient, plugs the least).
pub fn device_models() -> Vec<(&'static str, TcpRetransmitModel)> {
    let with_deadline = |secs: u64| TcpRetransmitModel {
        app_deadline: SimDuration::from_secs(secs),
        ..Default::default()
    };
    vec![
        ("EchoDot4", with_deadline(8)),
        ("HomeMini", with_deadline(8)),
        ("WyzeCam", with_deadline(12)),
        ("SP10", with_deadline(6)),
        ("Home", with_deadline(8)),
        ("Nest-E", with_deadline(10)),
        ("EchoDot3", with_deadline(8)),
        ("E4", with_deadline(10)),
        ("Blink", with_deadline(12)),
        ("WP3", with_deadline(6)),
    ]
}

/// Sweep added validation delay and report, per device, whether the
/// function survives. Returns (delay, per-device survival flags).
pub fn sweep(delays_ms: &[u64]) -> Vec<(SimDuration, Vec<(&'static str, bool)>)> {
    let models = device_models();
    delays_ms
        .iter()
        .map(|&ms| {
            let d = SimDuration::from_millis(ms);
            let flags = models
                .iter()
                .map(|(name, m)| (*name, m.tolerates(d)))
                .collect();
            (d, flags)
        })
        .collect()
}

/// Render the sweep.
pub fn tolerance_text() -> String {
    let delays = [0u64, 500, 1000, 2000, 3000, 5000, 8000, 12000];
    let rows = sweep(&delays);
    let mut out = String::new();
    writeln!(
        out,
        "# Tolerance: added validation delay vs device function"
    )
    .unwrap();
    write!(out, "{:<10}", "delay").unwrap();
    for (name, _) in device_models() {
        write!(out, "{name:>9}").unwrap();
    }
    writeln!(out).unwrap();
    for (d, flags) in rows {
        write!(out, "{:<10}", format!("{:.1}s", d.as_secs_f64())).unwrap();
        for (_, ok) in flags {
            write!(out, "{:>9}", if ok { "ok" } else { "BROKEN" }).unwrap();
        }
        writeln!(out).unwrap();
    }
    let min_max = device_models()
        .iter()
        .map(|(_, m)| m.max_tolerated_delay())
        .min()
        .unwrap();
    writeln!(
        out,
        "minimum tolerated delay across devices: {:.1}s (paper: all devices tolerate 2s)",
        min_max.as_secs_f64()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_tolerate_two_seconds() {
        for (name, m) in device_models() {
            assert!(
                m.tolerates(SimDuration::from_secs(2)),
                "{name} breaks at 2 s"
            );
        }
    }

    #[test]
    fn no_device_tolerates_a_minute() {
        for (name, m) in device_models() {
            assert!(
                !m.tolerates(SimDuration::from_secs(60)),
                "{name} survives 60 s?!"
            );
        }
    }

    #[test]
    fn sweep_is_monotone() {
        // Once a device breaks at some delay it stays broken at larger
        // delays.
        let delays: Vec<u64> = (0..20).map(|i| i * 1000).collect();
        let rows = sweep(&delays);
        for dev in 0..10 {
            let flags: Vec<bool> = rows.iter().map(|(_, f)| f[dev].1).collect();
            let mut broken = false;
            for f in flags {
                if broken {
                    assert!(!f);
                }
                if !f {
                    broken = true;
                }
            }
        }
    }

    #[test]
    fn text_mentions_all_devices() {
        let t = tolerance_text();
        for (name, _) in device_models() {
            assert!(t.contains(name));
        }
        assert!(t.contains("2s"));
    }
}
