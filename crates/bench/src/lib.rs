//! Experiment harness reproducing every table and figure of the FIAT
//! paper (CoNEXT '22). Each module regenerates one artifact; the
//! `experiments` binary dispatches on the artifact name and prints the
//! same rows/series the paper reports. Criterion benches in `benches/`
//! time the hot paths behind each artifact.

pub mod attack_exp;
pub mod bench_log;
pub mod chaos_exp;
pub mod control_exp;
pub mod corpus;
pub mod fig1;
pub mod fig2;
pub mod fingerprint_exp;
pub mod fleet_exp;
pub mod ml_tables;
pub mod oracle_exp;
pub mod profile_exp;
pub mod soak_exp;
pub mod table6;
pub mod table7;
pub mod tolerance;

/// Render a CDF over raw values as (x, cumulative fraction) pairs at the
/// given percentile grid (e.g. every 5 %).
pub fn cdf(values: &mut [f64], points: usize) -> Vec<(f64, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if values.is_empty() {
        return Vec::new();
    }
    (0..=points)
        .map(|i| {
            let q = i as f64 / points as f64;
            let idx = ((values.len() - 1) as f64 * q).round() as usize;
            (values[idx], q)
        })
        .collect()
}

/// Weighted CDF: values with weights; returns (x, cumulative weight
/// fraction) at each distinct value.
pub fn weighted_cdf(pairs: &mut [(f64, f64)]) -> Vec<(f64, f64)> {
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total == 0.0 {
        return Vec::new();
    }
    let mut acc = 0.0;
    pairs
        .iter()
        .map(|(x, w)| {
            acc += w;
            (*x, acc / total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut v: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let c = cdf(&mut v, 20);
        assert_eq!(c.len(), 21);
        assert_eq!(c[0].1, 0.0);
        assert_eq!(c[20].1, 1.0);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn weighted_cdf_sums_to_one() {
        let mut pairs = vec![(3.0, 2.0), (1.0, 1.0), (2.0, 1.0)];
        let c = weighted_cdf(&mut pairs);
        assert_eq!(c.last().unwrap().1, 1.0);
        // First value (1.0) carries a quarter of the weight.
        assert!((c[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(cdf(&mut Vec::new(), 10).is_empty());
        assert!(weighted_cdf(&mut Vec::new()).is_empty());
    }
}
