//! The differential-oracle experiment: run the `fiat-oracle` fuzzer —
//! a naive reference decision pipeline versus the real proxy over
//! chaos-mutated testbed traffic — and render the divergence report.
//!
//! Not a paper artifact — this checks that *this implementation* still
//! means what the paper says after refactors and optimisations. Output
//! is deterministic for a fixed seed, so CI can smoke-run it and any
//! `DIVERGENCE` line is a regression (or a new entry for DESIGN.md's
//! known-divergence ledger).

use fiat_oracle::{render_report, run_differential, OracleReport};
use fiat_telemetry::{MetricRegistry, OracleMetrics};

/// Packet floor for the full run (the acceptance bar: ≥ 10 k
/// chaos-mutated packets across the 10-device matrix).
pub const FULL_TARGET_PACKETS: u64 = 10_000;
/// Packet floor for the CI smoke run.
pub const QUICK_TARGET_PACKETS: u64 = 1_500;

/// Run the differential oracle and record telemetry.
pub fn oracle_report(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> OracleReport {
    let target = if quick {
        QUICK_TARGET_PACKETS
    } else {
        FULL_TARGET_PACKETS
    };
    let report = run_differential(seed, quick, target);
    if let Some(m) = registry.map(OracleMetrics::new) {
        m.record_run(report.packets, report.scenarios as u64);
        for d in &report.divergences {
            m.divergences(d.kind).inc();
        }
    }
    report
}

/// Render the experiment's text output (the oracle report; ends with a
/// `verdict: PASS` / `verdict: DIVERGENCE` line CI greps for).
pub fn oracle_text(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> String {
    render_report(&oracle_report(seed, quick, registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_clean_and_deterministic() {
        let a = oracle_text(42, true, None);
        let b = oracle_text(42, true, None);
        assert_eq!(a, b);
        assert!(a.contains("verdict: PASS"), "{a}");
        assert!(!a.contains("DIVERGENCE"));
    }

    #[test]
    fn quick_run_meets_the_packet_floor() {
        let report = oracle_report(7, true, None);
        assert!(report.packets >= QUICK_TARGET_PACKETS);
        assert!(report.passed(), "{:?}", report.divergences);
    }

    #[test]
    fn registry_collects_replay_volume() {
        let registry = MetricRegistry::new();
        let _ = oracle_text(42, true, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_oracle_packets_total"));
        assert!(text.contains("fiat_oracle_scenarios_total"));
    }
}
