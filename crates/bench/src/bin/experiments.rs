//! Regenerate every table and figure of the FIAT paper.
//!
//! ```text
//! experiments all                 # everything (slow; use --release)
//! experiments fig1a|fig1b|fig1c|inspector
//! experiments fig2
//! experiments hyperparams [--fast] # §4.1 sweep; --fast skips the MLP
//! experiments table2 [--fast]     # --fast skips the MLP/forest/boosting
//! experiments table3|table4|table5
//! experiments table6
//! experiments table7
//! experiments tolerance
//! experiments appendixa
//! experiments fleet [--homes H] [--shards T] [--full]  # sharded multi-home throughput sweep
//! experiments profile [--quick|--full]  # shard-scaling profile: per-stage breakdown + bottleneck
//! experiments attack [--quick]    # adversarial red-team scorecard
//! experiments fingerprint [--quick] # behavioral unknown-device gate: accuracy, spoofs, flip
//! experiments oracle [--quick]    # differential decision oracle vs naive reference
//! experiments chaos [--quick]     # chaos soak: fault injection vs graceful degradation
//! experiments control [--quick]   # control plane: enrollment, epoch lifecycle, outage, rebalance
//! experiments soak [--quick]      # long-horizon soak: weeks of streamed traffic under a memory budget
//! ```
//!
//! Scale knobs: `--days N` (testbed capture length, default 8),
//! `--seed N` (default 42). The fleet sweep adds `--homes H` (default 8)
//! and `--shards T` (max worker threads, default 8); it is not part of
//! `all` — it measures this implementation, not a paper artifact. The
//! profile sweep defaults to the 1k-home corpus at 0.05 days; `--quick`
//! shrinks it to 32 homes for CI smokes and `--full` grows it to the
//! 10k-home corpus (the provider-scale trajectory point — also accepted
//! by `fleet`), unless `--homes`/`--days` override. Output is plain
//! text; every row is also
//! mirrored to `results/<name>.txt` when `--save` is given, along with a
//! telemetry snapshot in `results/<name>_metrics.json` (harness timings
//! for every experiment; full proxy decision-path metrics for those that
//! drive a `FiatProxy`, e.g. table6). With `--save`, `fleet`, `profile`,
//! and `soak` also append a trajectory record to `BENCH_fleet.json`,
//! `profile` dumps its flight-recorder timeline to
//! `results/trace_profile.jsonl`, and `soak` writes its deterministic
//! two-leg report to `results/soak_report.json`. The long soak is not
//! part of `all` — `--quick` runs the CI smoke fleet (500 homes × 15
//! simulated days), the default is the full four-week fleet.

use fiat_bench::ml_tables::ModelKind;
use fiat_bench::{
    attack_exp, bench_log, chaos_exp, control_exp, fig1, fig2, fingerprint_exp, fleet_exp,
    ml_tables, oracle_exp, profile_exp, soak_exp, table6, table7, tolerance,
};
use fiat_core::ErrorModel;
use fiat_telemetry::{MetricRegistry, Span, WallClock};
use std::fmt::Write as _;
use std::path::Path;

// Count heap allocations (process-wide and per shard thread) so
// `experiments profile` can attribute them to shard stages. Two relaxed
// atomic bumps per allocation; every other experiment is unaffected
// beyond that.
#[global_allocator]
static ALLOC: fiat_probe::CountingAllocator = fiat_probe::CountingAllocator;

struct Args {
    days: Option<f64>,
    seed: u64,
    fast: bool,
    save: bool,
    quick: bool,
    full: bool,
    homes: Option<usize>,
    shards: usize,
}

fn parse_args(rest: &[String]) -> Args {
    let mut a = Args {
        days: None,
        seed: 42,
        fast: false,
        save: false,
        quick: false,
        full: false,
        homes: None,
        shards: 8,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--days" => {
                a.days = Some(
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--days needs a number")),
                );
                i += 1;
            }
            "--seed" => {
                a.seed = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
                i += 1;
            }
            "--homes" => {
                a.homes = Some(
                    rest.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--homes needs a number")),
                );
                i += 1;
            }
            "--shards" => {
                a.shards = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--shards needs a number"));
                i += 1;
            }
            "--fast" => a.fast = true,
            "--save" => a.save = true,
            "--quick" => a.quick = true,
            "--full" => a.full = true,
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    a
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn appendixa_text() -> String {
    let mut out = String::new();
    writeln!(out, "# Appendix A: closed-form FP/FN model").unwrap();
    writeln!(
        out,
        "{:<26} {:>8} {:>8} {:>8} {:>10}",
        "operating point", "FP-N %", "FP-M %", "FN %", "FN term2 %"
    )
    .unwrap();
    for (label, rm, rnm) in [
        ("EchoDot4 (.980/.985)", 0.980, 0.985),
        ("E4 (.960/.955)", 0.960, 0.955),
        ("perfect (1.0/1.0)", 1.0, 1.0),
    ] {
        let m = ErrorModel::with_paper_validator(rm, rnm);
        writeln!(
            out,
            "{:<26} {:>8.2} {:>8.2} {:>8.2} {:>10.2}",
            label,
            m.fp_non_manual() * 100.0,
            m.fp_manual() * 100.0,
            m.false_negative() * 100.0,
            m.r_manual * (1.0 - m.r_non_human) * 100.0,
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nNote: the paper's eq. (3) as printed multiplies by R_human (0.934)\n\
         instead of R_non_human (0.982); its Table 6 numbers follow the\n\
         printed form. `fp_non_manual_as_printed` reproduces them:"
    )
    .unwrap();
    let m = ErrorModel::with_paper_validator(0.980, 0.985);
    writeln!(
        out,
        "EchoDot4 printed FP-N: {:.2}% (paper: 1.40%)",
        m.fp_non_manual_as_printed() * 100.0
    )
    .unwrap();
    out
}

fn run_one(name: &str, args: &Args, registry: &MetricRegistry) -> Option<String> {
    let days = args.days.unwrap_or(8.0);
    let seed = args.seed;
    let text = match name {
        "fig1a" => fig1::fig1a(seed),
        "fig1b" => fig1::fig1b_text(65, 104, 6, seed),
        "fig1c" => fig1::fig1c_text(65, 10, seed),
        "inspector" => {
            let (fractions, median) = fig1::inspector(40, 4, seed);
            let above = fractions.iter().filter(|&&f| f > 0.85).count();
            format!(
                "# IoT-Inspector-style 5 s aggregation\n\
                 devices: {}  median predictability: {:.3}\n\
                 devices above 85 %: {} ({:.0}%)  (paper: half of devices > 85 %)\n",
                fractions.len(),
                median,
                above,
                100.0 * above as f64 / fractions.len() as f64
            )
        }
        "fig2" => fig2::fig2_text(days, seed),
        "hyperparams" => ml_tables::hyperparams_text(days, seed, !args.fast),
        "table2" => {
            let models: &[ModelKind] = if args.fast {
                &[
                    ModelKind::NearestCentroid,
                    ModelKind::BernoulliNb,
                    ModelKind::GaussianNb,
                    ModelKind::DecisionTree,
                    ModelKind::KNearestNeighbors,
                ]
            } else {
                &ModelKind::ALL
            };
            ml_tables::table2_text(days, seed, models)
        }
        "table3" => ml_tables::table3_text(days, seed),
        "table4" => ml_tables::table4_text(days, seed, 50),
        "table5" => ml_tables::table5_text(days, seed),
        "table6" => table6::table6_text_instrumented(days.max(4.0), 2.0, seed, Some(registry)),
        "table7" => table7::table7_text(200, seed),
        "fleet" => {
            let homes = args.homes.unwrap_or(if args.full { 10_000 } else { 8 });
            // The 10k-home corpus pairs with a short capture (same as the
            // profile sweep) — provider scale comes from home count, not
            // per-home trace length.
            let days = args.days.unwrap_or(if args.full { 0.05 } else { 8.0 });
            let report = fleet_exp::fleet_benchmark(homes, args.shards, days, seed, Some(registry));
            if args.save {
                let record = fleet_exp::fleet_bench_record(&report, days, seed);
                if let Err(e) =
                    bench_log::append_fleet_record(Path::new(bench_log::BENCH_FLEET_PATH), &record)
                {
                    eprintln!("warning: {} not updated: {e}", bench_log::BENCH_FLEET_PATH);
                }
            }
            fleet_exp::fleet_report_text(&report, days, seed)
        }
        "profile" => {
            // The profiling sweep defaults to the 1k-home corpus at a
            // short capture; --quick shrinks the corpus for CI smokes,
            // --full grows it to the 10k-home trajectory point.
            let homes = args.homes.unwrap_or(match (args.quick, args.full) {
                (true, _) => 32,
                (_, true) => 10_000,
                _ => 1000,
            });
            let days = args.days.unwrap_or(0.05);
            let report = profile_exp::profile_run(homes, args.shards, days, seed, Some(registry));
            if args.save {
                std::fs::create_dir_all("results").expect("create results dir");
                if let Some(trace) = &report.trace_jsonl {
                    std::fs::write("results/trace_profile.jsonl", trace)
                        .expect("write flight-recorder trace");
                }
                if let Err(e) = bench_log::append_fleet_record(
                    Path::new(bench_log::BENCH_FLEET_PATH),
                    &report.record,
                ) {
                    eprintln!("warning: {} not updated: {e}", bench_log::BENCH_FLEET_PATH);
                }
            }
            report.text
        }
        "soak" => {
            let outcome = soak_exp::soak_outcome(seed, args.quick, Some(registry));
            if args.save {
                std::fs::create_dir_all("results").expect("create results dir");
                // The deterministic two-leg report (no wall times) —
                // byte-identical across runs at the same seed, unlike
                // the registry snapshot the main loop writes.
                std::fs::write("results/soak_report.json", &outcome.json)
                    .expect("write soak report");
                if let Err(e) = bench_log::append_fleet_record(
                    Path::new(bench_log::BENCH_FLEET_PATH),
                    &outcome.bench_record(seed),
                ) {
                    eprintln!("warning: {} not updated: {e}", bench_log::BENCH_FLEET_PATH);
                }
            }
            outcome.text
        }
        "attack" => attack_exp::attack_text(seed, args.quick, Some(registry)),
        "fingerprint" => fingerprint_exp::fingerprint_text(seed, args.quick, Some(registry)),
        "oracle" => oracle_exp::oracle_text(seed, args.quick, Some(registry)),
        "chaos" => chaos_exp::chaos_text(seed, args.quick, Some(registry)),
        "control" => control_exp::control_text(seed, args.quick, Some(registry)),
        "tolerance" => tolerance::tolerance_text(),
        "appendixa" => appendixa_text(),
        _ => return None,
    };
    Some(text)
}

const ALL: [&str; 19] = [
    "fig1a",
    "fig1b",
    "fig1c",
    "inspector",
    "fig2",
    "hyperparams",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "tolerance",
    "appendixa",
    "attack",
    "fingerprint",
    "oracle",
    "chaos",
    "control",
];

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!(
            "usage: experiments <all|fleet|profile|soak|{}> [--days N] [--seed N] [--fast] [--save] \
             [--quick] [--full] [--homes H] [--shards T]",
            ALL.join("|")
        );
        std::process::exit(2);
    };
    let args = parse_args(rest);

    let names: Vec<&str> = if cmd == "all" {
        ALL.to_vec()
    } else {
        vec![cmd.as_str()]
    };
    for name in names {
        // A fresh registry per experiment: harness timings plus whatever
        // the experiment itself reports (table6 plumbs it into its
        // proxies), snapshotted next to the text output.
        let registry = MetricRegistry::new();
        registry.describe(
            "fiat_experiment_duration_us",
            "Wall time of one experiment run.",
        );
        registry.describe(
            "fiat_experiment_output_bytes",
            "Size of the experiment's rendered text output.",
        );
        registry.describe(
            "fiat_experiment_seed",
            "The --seed value this run used (for reproducing saved output).",
        );
        registry
            .gauge("fiat_experiment_seed", &[("experiment", name)])
            .set(args.seed as i64);
        let clock = WallClock::new();
        let duration = registry.histogram("fiat_experiment_duration_us", &[("experiment", name)]);
        let span = Span::enter(&duration, &clock);
        let Some(text) = run_one(name, &args, &registry) else {
            die(&format!("unknown experiment {name}"));
        };
        span.exit();
        registry
            .gauge("fiat_experiment_output_bytes", &[("experiment", name)])
            .set(text.len() as i64);
        println!("{text}");
        if args.save {
            std::fs::create_dir_all("results").expect("create results dir");
            std::fs::write(format!("results/{name}.txt"), &text).expect("write result");
            std::fs::write(
                format!("results/{name}_metrics.json"),
                registry.render_json(),
            )
            .expect("write metrics snapshot");
        }
    }
}
