//! Table 7: latency — FIAT's authentication race against the IoT command.
//!
//! Per device operation and scenario (LAN / mobile), the harness composes:
//!
//! - **time to first packet**: phone → vendor cloud RPC + cloud
//!   processing + cloud → home push (plus per-vendor cloud overhead);
//! - **time to human validation (0-RTT)**: app detection + secure storage
//!   access + the 0-RTT channel (one flight + processing) + ML inference;
//!   sensor sampling is off the critical path (lazy buffer, §6);
//! - the individual component rows of Table 7.

use fiat_core::client::{LatencyBreakdown, ML_VALIDATION, ONE_RTT_PROC, ZERO_RTT_PROC};
use fiat_net::SimDuration;
use fiat_simnet::{HomeNetwork, PhoneLocation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write;

/// One measured operation.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Device name.
    pub device: &'static str,
    /// Operation label (Table 7 header row).
    pub operation: &'static str,
    /// Mean time to the command's first packet, LAN / mobile.
    pub first_packet: (SimDuration, SimDuration),
    /// Mean time to human validation via 0-RTT, LAN / mobile.
    pub validation_0rtt: (SimDuration, SimDuration),
    /// Component means, LAN / mobile.
    pub app_detection: (SimDuration, SimDuration),
    /// Sensor sampling (off the critical path).
    pub sensor_sampling: (SimDuration, SimDuration),
    /// Keystore access.
    pub secure_storage: (SimDuration, SimDuration),
    /// Full 1-RTT channel time.
    pub quic_1rtt: (SimDuration, SimDuration),
    /// 0-RTT channel time.
    pub quic_0rtt: (SimDuration, SimDuration),
    /// Humanness inference.
    pub ml_validation: (SimDuration, SimDuration),
}

/// The four Table 7 device/operation columns, with per-vendor extra cloud
/// processing (camera video setup and cast sessions take longer).
const OPS: [(&str, &str, u64); 4] = [
    ("Wyze", "Get video", 450),
    ("Socket", "Turn on/off", 50),
    ("EchoDot", "Play the radio", 0),
    ("HomeMini", "Play music", 750),
];

fn mean(v: &[SimDuration]) -> SimDuration {
    if v.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u64 = v.iter().map(|d| d.as_micros()).sum();
    SimDuration::from_micros(total / v.len() as u64)
}

/// Run the Table 7 measurement with `reps` repetitions per cell.
pub fn table7(reps: usize, seed: u64) -> Vec<Table7Row> {
    OPS.iter()
        .enumerate()
        .map(|(oi, &(device, operation, extra_cloud_ms))| {
            let mut cells: Vec<Vec<SimDuration>> = vec![Vec::new(); 16];
            for (si, loc) in [PhoneLocation::Lan, PhoneLocation::Mobile]
                .into_iter()
                .enumerate()
            {
                let mut net = HomeNetwork::new(seed ^ ((oi as u64) << 8 | si as u64));
                let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee ^ (oi as u64));
                for _ in 0..reps {
                    let comp = LatencyBreakdown::sample(&mut rng);
                    let first_packet =
                        net.command_first_packet(loc) + SimDuration::from_millis(extra_cloud_ms);
                    let one_way = net.phone_to_proxy(loc);
                    let quic_0rtt = one_way + ZERO_RTT_PROC;
                    let rtt_plus = net.phone_proxy_rtt(loc) + net.phone_to_proxy(loc);
                    let quic_1rtt = rtt_plus + ONE_RTT_PROC;
                    let validation = comp.critical_path() + quic_0rtt + ML_VALIDATION;
                    let vals = [
                        first_packet,
                        validation,
                        comp.app_detection,
                        comp.sensor_sampling,
                        comp.secure_storage,
                        quic_1rtt,
                        quic_0rtt,
                        comp.ml_validation,
                    ];
                    for (k, v) in vals.into_iter().enumerate() {
                        cells[k * 2 + si].push(v);
                    }
                }
            }
            let pair = |k: usize| (mean(&cells[k * 2]), mean(&cells[k * 2 + 1]));
            Table7Row {
                device,
                operation,
                first_packet: pair(0),
                validation_0rtt: pair(1),
                app_detection: pair(2),
                sensor_sampling: pair(3),
                secure_storage: pair(4),
                quic_1rtt: pair(5),
                quic_0rtt: pair(6),
                ml_validation: pair(7),
            }
        })
        .collect()
}

/// Render Table 7.
pub fn table7_text(reps: usize, seed: u64) -> String {
    let rows = table7(reps, seed);
    let mut out = String::new();
    writeln!(
        out,
        "# Table 7: latency (LAN/Mobile, ms, mean of {reps} reps)"
    )
    .unwrap();
    let fmt = |p: (SimDuration, SimDuration)| {
        format!("{:.0}/{:.0}", p.0.as_millis_f64(), p.1.as_millis_f64())
    };
    write!(out, "{:<24}", "metric").unwrap();
    for r in &rows {
        write!(out, "{:>16}", r.device).unwrap();
    }
    writeln!(out).unwrap();
    write!(out, "{:<24}", "operation").unwrap();
    for r in &rows {
        write!(out, "{:>16}", r.operation).unwrap();
    }
    writeln!(out).unwrap();
    type MetricFn = fn(&Table7Row) -> (SimDuration, SimDuration);
    let metrics: [(&str, MetricFn); 8] = [
        ("time to first packet", |r| r.first_packet),
        ("time to validation 0RTT", |r| r.validation_0rtt),
        ("app detection", |r| r.app_detection),
        ("sensor sampling", |r| r.sensor_sampling),
        ("secure storage", |r| r.secure_storage),
        ("QUIC (1-RTT)", |r| r.quic_1rtt),
        ("QUIC (0-RTT)", |r| r.quic_0rtt),
        ("ML human validation", |r| r.ml_validation),
    ];
    for (name, f) in metrics {
        write!(out, "{name:<24}").unwrap();
        for r in &rows {
            write!(out, "{:>16}", fmt(f(r))).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Table7Row> {
        table7(50, 3)
    }

    #[test]
    fn validation_always_beats_the_command() {
        // The paper's headline: FIAT authenticates faster than the IoT
        // traffic arrives, on LAN (by >74 %) and mobile (by >50 %).
        for r in rows() {
            assert!(
                r.validation_0rtt.0.as_millis_f64() < 0.6 * r.first_packet.0.as_millis_f64(),
                "{} LAN: validation {} vs first packet {}",
                r.device,
                r.validation_0rtt.0,
                r.first_packet.0
            );
            assert!(
                r.validation_0rtt.1.as_millis_f64() < 0.7 * r.first_packet.1.as_millis_f64(),
                "{} mobile: validation {} vs first packet {}",
                r.device,
                r.validation_0rtt.1,
                r.first_packet.1
            );
        }
    }

    #[test]
    fn lan_quic_latencies_near_paper() {
        for r in rows() {
            let l0 = r.quic_0rtt.0.as_millis_f64();
            let l1 = r.quic_1rtt.0.as_millis_f64();
            // Paper: ~21-23 ms (0-RTT), ~26-28 ms (1-RTT) on LAN.
            assert!((15.0..30.0).contains(&l0), "{}: 0-RTT {l0}", r.device);
            assert!((22.0..36.0).contains(&l1), "{}: 1-RTT {l1}", r.device);
            assert!(l0 < l1, "{}: 0-RTT not faster", r.device);
        }
    }

    #[test]
    fn mobile_slower_than_lan_everywhere() {
        for r in rows() {
            assert!(r.quic_0rtt.1 > r.quic_0rtt.0, "{}", r.device);
            assert!(r.quic_1rtt.1 > r.quic_1rtt.0, "{}", r.device);
            assert!(r.first_packet.1 > r.first_packet.0, "{}", r.device);
        }
    }

    #[test]
    fn time_to_first_packet_in_paper_range() {
        // Paper LAN values: 622-1396 ms depending on the device.
        for r in rows() {
            let ms = r.first_packet.0.as_millis_f64();
            assert!((400.0..2200.0).contains(&ms), "{}: {ms}", r.device);
        }
        // HomeMini is the slowest (cast session setup).
        let rs = rows();
        let hm = rs.iter().find(|r| r.device == "HomeMini").unwrap();
        for r in &rs {
            assert!(hm.first_packet.0 >= r.first_packet.0);
        }
    }

    #[test]
    fn validation_time_near_paper() {
        // Paper: 141-161 ms LAN, 223-394 ms mobile.
        for r in rows() {
            let lan = r.validation_0rtt.0.as_millis_f64();
            let mob = r.validation_0rtt.1.as_millis_f64();
            assert!((120.0..200.0).contains(&lan), "{}: LAN {lan}", r.device);
            assert!((180.0..450.0).contains(&mob), "{}: mobile {mob}", r.device);
        }
    }
}
