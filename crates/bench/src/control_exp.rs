//! The control-plane experiment: enroll → rotate epochs → outage window
//! → recover, scored end to end.
//!
//! Not a paper artifact — like the chaos soak, this measures *this
//! implementation's* control plane (`fiat-control`): the mutual-auth
//! enrollment gate must refuse a mismatched ceremony; the key lifecycle
//! must rotate on schedule and keep the live-epoch window bounded while
//! the retired-epoch fallback keeps every genuine event deliverable
//! (**false drops = 0**); degraded mode must carry the home through a
//! control-plane outage with zero 0-RTT fallbacks (the frozen window
//! keeps last-known-good tickets serving), while the unsafe
//! keep-retiring baseline must show the cost (outage-window fallbacks)
//! — otherwise the harness demonstrates nothing; and a mid-run
//! rebalance (snapshot → restore → resume) must land on stats and an
//! audit head byte-identical to the uninterrupted cell. Output is
//! deterministic for a fixed seed and ends with a `control: PASS` /
//! `CONTROL REGRESSION` trailer CI greps for.

use fiat_control::{
    run_control_sweep, ControlConfig, ControlReport, LifecyclePolicy, PhoneEnroller, ProxyEnroller,
};
use fiat_telemetry::{ControlMetrics, MetricRegistry};
use std::fmt::Write as _;

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct ControlExpReport {
    /// Master seed.
    pub seed: u64,
    /// Whether this was the smoke run.
    pub quick: bool,
    /// Whether the enrollment gate refused a mismatched ceremony secret
    /// (and accepted a matched one).
    pub enrollment_gate_holds: bool,
    /// The shipped configuration: degraded mode on, outage injected.
    pub degraded: ControlReport,
    /// The unsafe baseline: same timeline, `freeze_on_outage` off.
    pub baseline: ControlReport,
    /// The shipped configuration with a mid-run rebalance.
    pub rebalanced: ControlReport,
}

impl ControlExpReport {
    /// Whether the rebalanced cell is byte-identical to the
    /// uninterrupted one where it must be.
    pub fn rebalance_invisible(&self) -> bool {
        self.rebalanced.stats == self.degraded.stats
            && self.rebalanced.audit_head == self.degraded.audit_head
            && self.rebalanced.audit_len == self.degraded.audit_len
            && self.rebalanced.snapshot_bytes > 0
    }

    /// The PASS gate, clause by clause.
    pub fn failures(&self) -> Vec<String> {
        let mut f = Vec::new();
        if !self.enrollment_gate_holds {
            f.push("enrollment gate did not refuse a mismatched ceremony".to_string());
        }
        let d = &self.degraded;
        if d.false_drops > 0 {
            f.push(format!(
                "{} genuine events lost packets despite the epoch fallback",
                d.false_drops
            ));
        }
        if d.rotations == 0 || d.epochs_retired == 0 {
            f.push("the lifecycle never rotated/retired — nothing was exercised".to_string());
        }
        if d.fallbacks == 0 {
            f.push("retirement never forced a 0-RTT fallback — nothing was exercised".to_string());
        }
        if d.max_live_epochs_seen > WINDOW_BOUND {
            f.push(format!(
                "live-epoch window grew to {} (bound {WINDOW_BOUND})",
                d.max_live_epochs_seen
            ));
        }
        if d.outages != 1 || d.outage_proofs == 0 {
            f.push("the outage window never covered a proof exchange".to_string());
        }
        if d.outage_fallbacks > 0 {
            f.push(format!(
                "{} fallbacks inside the outage — degraded mode did not freeze the window",
                d.outage_fallbacks
            ));
        }
        if d.degraded_decisions == 0 {
            f.push("no decision was flagged as taken in degraded mode".to_string());
        }
        if self.baseline.outage_fallbacks == 0 {
            f.push(
                "the unsafe baseline showed no outage cost — the harness is not \
                 measuring degraded mode"
                    .to_string(),
            );
        }
        if self.baseline.false_drops > 0 {
            f.push(format!(
                "{} events lost packets even in the baseline (fallback is broken)",
                self.baseline.false_drops
            ));
        }
        if !self.rebalance_invisible() {
            f.push("the rebalanced cell diverged from the uninterrupted one".to_string());
        }
        f
    }

    /// PASS = every clause in [`Self::failures`] holds.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }
}

/// The live-epoch window bound the default experiment policy runs under
/// ([`ControlConfig::new`]'s `max_live_epochs`).
const WINDOW_BOUND: u32 = 2;

/// Probe the enrollment gate: a mismatched ceremony secret must abort
/// the three-message flow (at the phone — the proxy's challenge tag
/// does not verify), and a matched one must complete it.
fn enrollment_gate_holds(seed: u64) -> bool {
    let secret = [0xD0; 32];
    // Matched ceremony completes.
    let phone = PhoneEnroller::new(&secret, seed);
    let mut proxy = ProxyEnroller::new(&secret, seed ^ 1);
    let ch = proxy.challenge(&phone.request());
    let matched = phone
        .answer_challenge(&ch)
        .is_some_and(|proof| proxy.verify_proof(&proof));
    // Mismatched ceremony aborts.
    let imposter = PhoneEnroller::new(&[0x0D; 32], seed ^ 2);
    let mut proxy = ProxyEnroller::new(&secret, seed ^ 3);
    let ch = proxy.challenge(&imposter.request());
    let refused = imposter.answer_challenge(&ch).is_none();
    matched && refused
}

/// Run the three sweep cells and the enrollment probe.
pub fn control_report(
    seed: u64,
    quick: bool,
    registry: Option<&MetricRegistry>,
) -> ControlExpReport {
    let metrics = registry.map(ControlMetrics::new);
    let shipped = ControlConfig::new(seed, quick);
    let degraded = run_control_sweep(&shipped, metrics.as_ref());
    let baseline = run_control_sweep(
        &ControlConfig {
            policy: LifecyclePolicy {
                freeze_on_outage: false,
                ..shipped.policy
            },
            ..shipped
        },
        metrics.as_ref(),
    );
    let rebalanced = run_control_sweep(
        &ControlConfig {
            rebalance: true,
            ..shipped
        },
        metrics.as_ref(),
    );
    ControlExpReport {
        seed,
        quick,
        enrollment_gate_holds: enrollment_gate_holds(seed),
        degraded,
        baseline,
        rebalanced,
    }
}

fn cell_row(out: &mut String, name: &str, r: &ControlReport) {
    writeln!(
        out,
        "{:<12} {:>7} {:>6} {:>11} {:>9} {:>7} {:>7} {:>8} {:>9} {:>7} {:>6} {:>9}",
        name,
        r.packets,
        r.manual_events,
        r.false_drops,
        r.fallbacks,
        r.rotations,
        r.epochs_retired,
        r.outages,
        r.outage_proofs,
        r.outage_fallbacks,
        r.max_live_epochs_seen,
        r.snapshot_bytes,
    )
    .unwrap();
}

/// Render the experiment's text output (ends with the `control: PASS` /
/// `CONTROL REGRESSION` trailer CI greps for).
pub fn control_text(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> String {
    let report = control_report(seed, quick, registry);
    let mut out = String::new();
    writeln!(
        out,
        "# Control plane: enrollment, epoch lifecycle, outage, rebalance"
    )
    .unwrap();
    writeln!(
        out,
        "seed: {}  quick: {}  (rotation 4 min, 2 live epochs; outage spans the third \
         quarter of the capture; rebalance at the midpoint packet)",
        report.seed, report.quick
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:<12} {:>7} {:>6} {:>11} {:>9} {:>7} {:>7} {:>8} {:>9} {:>7} {:>6} {:>9}",
        "cell",
        "packets",
        "events",
        "false-drops",
        "fallbacks",
        "rotate",
        "retire",
        "outages",
        "out-proof",
        "out-fall",
        "window",
        "snap-B",
    )
    .unwrap();
    cell_row(&mut out, "degraded-on", &report.degraded);
    cell_row(&mut out, "unsafe-base", &report.baseline);
    cell_row(&mut out, "rebalanced", &report.rebalanced);
    writeln!(out).unwrap();
    writeln!(
        out,
        "enrollment gate: {}",
        if report.enrollment_gate_holds {
            "matched ceremony enrolled, mismatched refused"
        } else {
            "BROKEN"
        }
    )
    .unwrap();
    writeln!(
        out,
        "outage cost without degraded mode: {} fallbacks inside the window (vs {} with)",
        report.baseline.outage_fallbacks, report.degraded.outage_fallbacks
    )
    .unwrap();
    writeln!(
        out,
        "rebalance: {} snapshot bytes, stats {}  audit head {}",
        report.rebalanced.snapshot_bytes,
        if report.rebalanced.stats == report.degraded.stats {
            "identical"
        } else {
            "DIVERGED"
        },
        if report.rebalanced.audit_head == report.degraded.audit_head {
            "identical"
        } else {
            "DIVERGED"
        },
    )
    .unwrap();
    writeln!(out).unwrap();
    if report.passed() {
        writeln!(
            out,
            "control: PASS (enrollment gated; 0 false drops; window <= 2; outage \
             survived with 0 fallbacks, baseline shows {}; rebalance byte-identical)",
            report.baseline.outage_fallbacks
        )
        .unwrap();
    } else {
        for f in report.failures() {
            writeln!(out, "CONTROL REGRESSION: {f}").unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_and_is_deterministic() {
        let a = control_text(42, true, None);
        let b = control_text(42, true, None);
        assert_eq!(a, b);
        assert!(a.contains("control: PASS"), "{a}");
        assert!(!a.contains("CONTROL REGRESSION"), "{a}");
    }

    #[test]
    fn quick_run_exercises_every_layer() {
        let report = control_report(42, true, None);
        assert!(report.enrollment_gate_holds);
        assert!(report.degraded.rotations > 0);
        assert!(report.degraded.fallbacks > 0);
        assert!(report.degraded.outage_proofs > 0);
        assert_eq!(report.degraded.outage_fallbacks, 0);
        assert!(report.baseline.outage_fallbacks > 0);
        assert!(report.rebalance_invisible());
    }

    #[test]
    fn registry_collects_control_metrics() {
        let registry = MetricRegistry::new();
        let _ = control_text(42, true, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_control_epoch_rotations_total"));
        assert!(text.contains("fiat_control_outages_total"));
        assert!(text.contains("fiat_control_snapshots_total"));
        assert!(text.contains("fiat_control_enrollments_total"));
    }
}
