//! Shared corpus construction: testbed captures → unpredictable events →
//! labeled ML datasets, per device and location.

use fiat_core::classifier::event_dataset;
use fiat_core::{group_events, PredictabilityEngine, EVENT_GAP};
use fiat_ml::Dataset;
use fiat_net::{FlowDef, PacketRecord};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};

/// Devices excluded from the ML analysis (§4: simple size rules suffice
/// for SP10, WP3, Nest-E).
pub const SIMPLE_RULE_DEVICES: [u16; 3] = [3, 5, 9];

/// The event corpus of one device at one location.
pub struct DeviceEventCorpus {
    /// Device index in the testbed.
    pub device: u16,
    /// Device name (Table 1).
    pub name: String,
    /// Location of the capture.
    pub location: Location,
    /// Labeled 66-feature event dataset (labels: 0 control, 1 automated,
    /// 2 manual).
    pub dataset: Dataset,
}

/// Generate a capture and slice it into per-device event datasets.
/// `ml_only` drops the simple-rule devices (as §4 does).
pub fn build_event_corpus(
    location: Location,
    days: f64,
    seed: u64,
    ml_only: bool,
) -> Vec<DeviceEventCorpus> {
    // Interaction rates chosen so a ~8-day capture yields the paper's
    // event counts (~50 manual, 60-180 non-manual per device).
    let capture = TestbedTrace::generate(TestbedConfig {
        location,
        days,
        seed,
        manual_per_day: 6.0,
        routines_per_day: 5.0,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&capture.trace.packets, &capture.trace.dns);
    let events = group_events(&capture.trace.packets, &flags, EVENT_GAP);

    capture
        .devices
        .iter()
        .enumerate()
        .filter(|(i, _)| !ml_only || !SIMPLE_RULE_DEVICES.contains(&(*i as u16)))
        .map(|(i, dev)| {
            let device = i as u16;
            let dev_events: Vec<_> = events
                .iter()
                .filter(|e| e.device == device)
                .cloned()
                .collect();
            DeviceEventCorpus {
                device,
                name: dev.name.clone(),
                location,
                dataset: event_dataset(&dev_events, &capture.trace.packets),
            }
        })
        .collect()
}

/// Enforcement-style event corpus: events grouped exactly as the proxy
/// sees them — rules learned from a 20-minute bootstrap, every later
/// rule-miss grouped with the 5 s rule. This is the right training
/// distribution for the *deployed* classifier (Table 6); the offline
/// corpus of [`build_event_corpus`] matches the paper's §4 analysis.
pub fn build_enforcement_corpus(
    location: Location,
    days: f64,
    seed: u64,
) -> Vec<DeviceEventCorpus> {
    let capture = TestbedTrace::generate(TestbedConfig {
        location,
        days,
        seed,
        manual_per_day: 6.0,
        routines_per_day: 5.0,
        confusion_scale: 0.3,
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    // Ideal-horizon rule table: every periodic control flow is learned
    // (as after a long deployment), but command streams are not (the
    // >= 1 s rule-interval policy) — exactly the packet mix the proxy's
    // event grouper sees at enforcement time.
    let rules = fiat_core::RuleTable::learn(&engine, &capture.trace.packets, &capture.trace.dns);
    let flags: Vec<bool> = capture
        .trace
        .packets
        .iter()
        .map(|p| rules.matches(FlowDef::PortLess, p, &capture.trace.dns))
        .collect();
    let events = group_events(&capture.trace.packets, &flags, EVENT_GAP);
    capture
        .devices
        .iter()
        .enumerate()
        .map(|(i, dev)| {
            let device = i as u16;
            let dev_events: Vec<_> = events
                .iter()
                .filter(|e| e.device == device)
                .cloned()
                .collect();
            DeviceEventCorpus {
                device,
                name: dev.name.clone(),
                location,
                dataset: event_dataset(&dev_events, &capture.trace.packets),
            }
        })
        .collect()
}

/// A capture plus its analysis artifacts, for experiments that need the
/// packets themselves.
pub struct AnalyzedCapture {
    /// The generated capture.
    pub capture: TestbedTrace,
    /// Per-packet predictability flags (PortLess).
    pub flags: Vec<bool>,
    /// Grouped unpredictable events.
    pub events: Vec<fiat_core::UnpredictableEvent>,
}

/// Generate and analyze a capture in one step.
pub fn analyzed_capture(location: Location, days: f64, seed: u64) -> AnalyzedCapture {
    let capture = TestbedTrace::generate(TestbedConfig {
        location,
        days,
        seed,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(&capture.trace.packets, &capture.trace.dns);
    let events = group_events(&capture.trace.packets, &flags, EVENT_GAP);
    AnalyzedCapture {
        capture,
        flags,
        events,
    }
}

/// Packets of one device, cloned out of a capture (helper for per-device
/// pipelines).
pub fn device_packets(capture: &TestbedTrace, device: u16) -> Vec<PacketRecord> {
    capture
        .trace
        .packets
        .iter()
        .filter(|p| p.device == device)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_corpus_excludes_simple_rule_devices() {
        let corpus = build_event_corpus(Location::Us, 0.5, 0, true);
        assert_eq!(corpus.len(), 7);
        let names: Vec<&str> = corpus.iter().map(|c| c.name.as_str()).collect();
        assert!(!names.contains(&"SP10"));
        assert!(!names.contains(&"WP3"));
        assert!(!names.contains(&"Nest-E"));
    }

    #[test]
    fn full_corpus_has_ten_devices() {
        let corpus = build_event_corpus(Location::Us, 0.5, 0, false);
        assert_eq!(corpus.len(), 10);
    }

    #[test]
    fn datasets_have_66_features_and_events() {
        let corpus = build_event_corpus(Location::Us, 1.0, 1, true);
        for c in &corpus {
            assert_eq!(c.dataset.n_features(), 66, "{}", c.name);
            assert!(c.dataset.len() > 3, "{} has too few events", c.name);
            assert_eq!(c.dataset.n_classes, 3);
        }
    }

    #[test]
    fn analyzed_capture_is_consistent() {
        let a = analyzed_capture(Location::Us, 0.2, 2);
        assert_eq!(a.flags.len(), a.capture.trace.len());
        // Every grouped event references unpredictable packets only.
        for e in &a.events {
            for &i in &e.packets {
                assert!(!a.flags[i]);
            }
        }
    }
}
