//! The chaos-soak experiment: sweep proof-channel fault rates × link
//! latency profiles over the 10-device testbed and score graceful
//! degradation of the decision path.
//!
//! Not a paper artifact — like the attack scorecard and the decision
//! oracle, this measures *this implementation*: with client retries and
//! the pending-verdict quarantine at the default 10 s deadline, genuine
//! manual events must never lose packets when their proof is eventually
//! delivered (**false drops = 0** in every retries-on cell), and
//! disabling retries must make the same cells measurably worse
//! (otherwise the harness demonstrates nothing). Output is
//! deterministic for a fixed seed and ends with a `chaos: PASS` /
//! `CHAOS REGRESSION` trailer CI greps for.

use fiat_chaos::{run_soak, SoakConfig, SoakReport};
use fiat_net::SimDuration;
use fiat_simnet::LatencyProfile;
use fiat_telemetry::{ChaosMetrics, MetricRegistry};
use std::fmt::Write as _;

/// Proof-channel loss rates for the full sweep.
const FULL_LOSSES: [f64; 3] = [0.0, 0.05, 0.15];
/// Loss rate for the smoke sweep (the acceptance-bar cell).
const QUICK_LOSSES: [f64; 1] = [0.05];
/// Loss rate of the retries-off degradation legs. High enough that a
/// single-attempt client is near-certain to lose at least one proof.
const DEGRADE_LOSS: f64 = 0.15;

/// One soak cell's configuration and result.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Proof-channel loss rate.
    pub loss: f64,
    /// Latency-profile name.
    pub profile: &'static str,
    /// Whether the client retried.
    pub retries: bool,
    /// The soak result.
    pub report: SoakReport,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Master seed.
    pub seed: u64,
    /// Whether this was the smoke sweep.
    pub quick: bool,
    /// Quarantine proof deadline used throughout.
    pub deadline: SimDuration,
    /// Retries-on cells (the PASS gate: zero false drops in each).
    pub cells: Vec<ChaosCell>,
    /// Retries-off degradation legs at [`DEGRADE_LOSS`], paired with the
    /// matching retries-on cell by profile.
    pub degraded: Vec<ChaosCell>,
}

impl ChaosReport {
    /// The retries-on cell matching a degradation leg's profile.
    fn on_cell(&self, profile: &str) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| c.profile == profile && (c.loss - DEGRADE_LOSS).abs() < 1e-9)
    }

    /// Whether a degradation leg is measurably worse than its
    /// retries-on twin.
    pub fn leg_degraded(&self, leg: &ChaosCell) -> bool {
        let Some(on) = self.on_cell(leg.profile) else {
            return false;
        };
        leg.report.proofs_delivered < on.report.proofs_delivered
            || leg.report.dropped_events() > on.report.dropped_events()
    }

    /// PASS = every retries-on cell has zero false drops AND at least
    /// one retries-off leg shows degradation.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.report.false_drops == 0)
            && self.degraded.iter().any(|leg| self.leg_degraded(leg))
    }
}

/// Run the sweep and record telemetry.
pub fn chaos_report(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> ChaosReport {
    let metrics = registry.map(ChaosMetrics::new);
    let deadline = SimDuration::from_secs(10);
    let profiles: &[(&'static str, LatencyProfile)] = if quick {
        &[
            ("lan_wifi", LatencyProfile::lan_wifi()),
            ("lte", LatencyProfile::lte()),
        ]
    } else {
        &[
            ("lan_wifi", LatencyProfile::lan_wifi()),
            ("lte", LatencyProfile::lte()),
            ("wan_vpn_detour", LatencyProfile::wan_vpn_detour()),
        ]
    };
    let losses: &[f64] = if quick { &QUICK_LOSSES } else { &FULL_LOSSES };

    let cell_seed = |li: usize, pi: usize| -> u64 {
        seed.wrapping_mul(1_000_003)
            .wrapping_add(((li as u64) << 32) | pi as u64)
    };
    let cfg = |cs: u64, loss: f64, latency: LatencyProfile, retries: bool| SoakConfig {
        seed: cs,
        quick,
        loss,
        latency,
        retries,
        proof_deadline: deadline,
        windows: loss > 0.0,
    };

    let mut cells = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (pi, &(name, latency)) in profiles.iter().enumerate() {
            let report = run_soak(
                &cfg(cell_seed(li, pi), loss, latency, true),
                metrics.as_ref(),
            );
            cells.push(ChaosCell {
                loss,
                profile: name,
                retries: true,
                report,
            });
        }
    }
    // Degradation legs: same seed and trace as the matching retries-on
    // cell, retries disabled. The smoke sweep doesn't include a cell at
    // `DEGRADE_LOSS`, so inject the retries-on twin when missing — the
    // comparison is only meaningful against the identical trace.
    let degrade_li = FULL_LOSSES
        .iter()
        .position(|&l| (l - DEGRADE_LOSS).abs() < 1e-9)
        .unwrap_or(FULL_LOSSES.len() - 1);
    let degrade_profiles: &[usize] = if quick { &[0] } else { &[0, 1, 2] };
    let mut degraded = Vec::new();
    for &pi in degrade_profiles {
        let (name, latency) = profiles[pi];
        let cs = cell_seed(degrade_li, pi);
        if cells
            .iter()
            .all(|c| c.profile != name || (c.loss - DEGRADE_LOSS).abs() >= 1e-9)
        {
            let report = run_soak(&cfg(cs, DEGRADE_LOSS, latency, true), metrics.as_ref());
            cells.push(ChaosCell {
                loss: DEGRADE_LOSS,
                profile: name,
                retries: true,
                report,
            });
        }
        let report = run_soak(&cfg(cs, DEGRADE_LOSS, latency, false), metrics.as_ref());
        degraded.push(ChaosCell {
            loss: DEGRADE_LOSS,
            profile: name,
            retries: false,
            report,
        });
    }
    ChaosReport {
        seed,
        quick,
        deadline,
        cells,
        degraded,
    }
}

fn cell_row(out: &mut String, c: &ChaosCell) {
    let r = &c.report;
    writeln!(
        out,
        "{:>5.0}% {:<15} {:^7} {:>6} {:>6} {:>11} {:>9} {:>5} {:>8} {:>7} {:>7} {:>6}",
        c.loss * 100.0,
        c.profile,
        if c.retries { "on" } else { "off" },
        r.manual_events,
        r.proofs_delivered,
        r.false_drops,
        r.unproven_drops,
        r.stats.quarantined,
        r.stats.quarantine_released,
        r.stats.quarantine_expired,
        r.retries,
        r.total_faults(),
    )
    .unwrap();
}

/// Render the experiment's text output (ends with the `chaos: PASS` /
/// `CHAOS REGRESSION` trailer CI greps for).
pub fn chaos_text(seed: u64, quick: bool, registry: Option<&MetricRegistry>) -> String {
    let report = chaos_report(seed, quick, registry);
    let mut out = String::new();
    writeln!(
        out,
        "# Chaos soak: proof-channel faults vs graceful degradation"
    )
    .unwrap();
    writeln!(
        out,
        "seed: {}  quick: {}  proof deadline: {} s  (faults: drop/dup/corrupt derive from loss; \
         delay 15%; offline 45 s + sensor 30 s windows when loss > 0)",
        report.seed,
        report.quick,
        report.deadline.as_micros() / 1_000_000
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "{:>6} {:<15} {:^7} {:>6} {:>6} {:>11} {:>9} {:>5} {:>8} {:>7} {:>7} {:>6}",
        "loss",
        "profile",
        "retries",
        "events",
        "proven",
        "false-drops",
        "unproven",
        "held",
        "released",
        "expired",
        "resent",
        "faults"
    )
    .unwrap();
    for c in &report.cells {
        cell_row(&mut out, c);
    }
    for c in &report.degraded {
        cell_row(&mut out, c);
    }
    writeln!(out).unwrap();
    for leg in &report.degraded {
        let on = report.on_cell(leg.profile);
        let (op, od) = on.map_or((0, 0), |c| {
            (c.report.proofs_delivered, c.report.dropped_events())
        });
        writeln!(
            out,
            "degradation @{:.0}% loss, {}: proven {} -> {}, dropped events {} -> {}  [{}]",
            DEGRADE_LOSS * 100.0,
            leg.profile,
            op,
            leg.report.proofs_delivered,
            od,
            leg.report.dropped_events(),
            if report.leg_degraded(leg) {
                "DEGRADED"
            } else {
                "no change"
            }
        )
        .unwrap();
    }
    let false_drops: u64 = report.cells.iter().map(|c| c.report.false_drops).sum();
    writeln!(out).unwrap();
    if report.passed() {
        writeln!(
            out,
            "chaos: PASS (0 false drops across {} retries-on cells; no-retry legs degrade)",
            report.cells.len()
        )
        .unwrap();
    } else if false_drops > 0 {
        writeln!(
            out,
            "CHAOS REGRESSION: {false_drops} genuine manual events lost packets despite an \
             eventually-delivered proof"
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "CHAOS REGRESSION: disabling retries showed no degradation — the harness is not \
             measuring the resilience path"
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_and_is_deterministic() {
        let a = chaos_text(42, true, None);
        let b = chaos_text(42, true, None);
        assert_eq!(a, b);
        assert!(a.contains("chaos: PASS"), "{a}");
        assert!(!a.contains("CHAOS REGRESSION"), "{a}");
    }

    #[test]
    fn quick_sweep_exercises_quarantine_and_retries() {
        let report = chaos_report(42, true, None);
        let held: u64 = report
            .cells
            .iter()
            .map(|c| c.report.stats.quarantined)
            .sum();
        let resent: u64 = report.cells.iter().map(|c| c.report.retries).sum();
        assert!(held > 0, "no cell ever quarantined: {report:?}");
        assert!(resent > 0, "no cell ever retried: {report:?}");
        assert!(report.degraded.iter().any(|l| report.leg_degraded(l)));
    }

    #[test]
    fn registry_collects_chaos_metrics() {
        let registry = MetricRegistry::new();
        let _ = chaos_text(42, true, Some(&registry));
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_chaos_faults_total"));
        assert!(text.contains("fiat_proof_retries_total"));
        assert!(text.contains("fiat_chaos_false_drops_total"));
    }
}
