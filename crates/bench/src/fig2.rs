//! Figure 2: predictability of control / automated / manual traffic per
//! testbed device, PortLess definition.

use fiat_core::PredictabilityEngine;
use fiat_net::{FlowDef, TrafficClass};
use fiat_trace::{Location, TestbedConfig, TestbedTrace};
use std::fmt::Write;

/// One row of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Device name.
    pub name: String,
    /// Predictable fraction of control traffic.
    pub control: f64,
    /// Predictable fraction of automated traffic.
    pub automated: f64,
    /// Predictable fraction of manual traffic.
    pub manual: f64,
}

/// Compute Figure 2 for one capture.
pub fn fig2(days: f64, seed: u64) -> Vec<Fig2Row> {
    let capture = TestbedTrace::generate(TestbedConfig {
        location: Location::Us,
        days,
        seed,
        ..Default::default()
    });
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let report = engine.report(&capture.trace.packets, &capture.trace.dns);
    capture
        .devices
        .iter()
        .enumerate()
        .map(|(i, dev)| Fig2Row {
            name: dev.name.clone(),
            control: report.fraction(i as u16, TrafficClass::Control),
            automated: report.fraction(i as u16, TrafficClass::Automated),
            manual: report.fraction(i as u16, TrafficClass::Manual),
        })
        .collect()
}

/// Render Figure 2 as text.
pub fn fig2_text(days: f64, seed: u64) -> String {
    let rows = fig2(days, seed);
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 2: per-device predictability by class (PortLess)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>10} {:>8}",
        "device", "control", "automated", "manual"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:<10} {:>8.1}% {:>9.1}% {:>7.1}%",
            r.name,
            r.control * 100.0,
            r.automated * 100.0,
            r.manual * 100.0
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Fig2Row> {
        fig2(2.0, 42)
    }

    #[test]
    fn control_highly_predictable_for_non_nest_devices() {
        for r in rows() {
            if r.name != "Nest-E" {
                assert!(
                    r.control > 0.95,
                    "{}: control predictability {:.3}",
                    r.name,
                    r.control
                );
            }
        }
    }

    #[test]
    fn nest_is_the_control_outlier() {
        let rows = rows();
        let nest = rows.iter().find(|r| r.name == "Nest-E").unwrap();
        // Paper: 90.7 % vs ~98 % for everyone else.
        assert!(
            nest.control < 0.96 && nest.control > 0.80,
            "Nest control {:.3}",
            nest.control
        );
        let min_other = rows
            .iter()
            .filter(|r| r.name != "Nest-E")
            .map(|r| r.control)
            .fold(1.0, f64::min);
        assert!(nest.control < min_other);
    }

    #[test]
    fn plugs_have_near_zero_event_predictability() {
        // Two-packet events cannot repeat an interval (paper: exactly 0);
        // rare microsecond-level birthday collisions across events allow
        // a sliver of slack.
        for r in rows() {
            if r.name == "SP10" || r.name == "WP3" {
                assert!(r.manual < 0.05, "{}: manual {}", r.name, r.manual);
                assert!(r.automated < 0.05, "{}: automated {}", r.name, r.automated);
            }
        }
    }

    #[test]
    fn cameras_manual_more_predictable_than_speakers() {
        let rows = rows();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().manual;
        // Streaming tails make camera manual traffic 60-65 % predictable.
        for cam in ["WyzeCam", "Blink"] {
            assert!(
                get(cam) > 0.5,
                "{cam} manual predictability {:.3}",
                get(cam)
            );
            for speaker in ["EchoDot4", "Home"] {
                assert!(
                    get(cam) > get(speaker),
                    "{cam} {:.3} vs {speaker} {:.3}",
                    get(cam),
                    get(speaker)
                );
            }
        }
    }

    #[test]
    fn automated_more_predictable_than_manual_for_speakers() {
        for r in rows() {
            if ["EchoDot4", "HomeMini", "Home", "EchoDot3"].contains(&r.name.as_str()) {
                assert!(
                    r.automated > r.manual,
                    "{}: automated {:.3} <= manual {:.3}",
                    r.name,
                    r.automated,
                    r.manual
                );
            }
        }
    }

    #[test]
    fn text_renders_all_devices() {
        let t = fig2_text(0.5, 0);
        for name in ["EchoDot4", "WyzeCam", "SP10", "Nest-E", "WP3"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
