//! The pairing ceremony (§5.4 "Pairing").
//!
//! FIAT's app and the IoT proxy pair locally — scanning a QR code on the
//! proxy, or an audio beacon at install time. The ceremony transports a
//! random secret out-of-band; both sides derive the same key material and
//! seal it in their respective TEEs (Android keystore, SGX). Nothing
//! derived from the ceremony secret ever leaves a keystore afterwards.

use fiat_crypto::{Hkdf, KeyHandle, KeyPurpose, TeeKeystore};

/// The outcome of a successful pairing on one side.
#[derive(Debug, Clone, Copy)]
pub struct Paired {
    /// Handle to the sealed HMAC signing key.
    pub sign_key: KeyHandle,
    /// Handle to the sealed AEAD encryption key.
    pub encrypt_key: KeyHandle,
}

/// The channel PSK both sides feed to the QUIC layer. Kept out of the
/// keystore because the QUIC handshake needs raw key material; in a real
/// deployment the QUIC stack would also live inside the TEE boundary.
pub type ChannelPsk = [u8; 32];

/// Run one side of the ceremony: derive and seal the pairing keys from
/// the out-of-band `ceremony_secret` (the QR code contents).
pub fn pair(store: &TeeKeystore, ceremony_secret: &[u8; 32]) -> (Paired, ChannelPsk) {
    let hk = Hkdf::extract(b"fiat-pairing", ceremony_secret);
    let mut sign = [0u8; 32];
    hk.expand(b"sign", &mut sign);
    let mut encrypt = [0u8; 32];
    hk.expand(b"encrypt", &mut encrypt);
    let mut psk = [0u8; 32];
    hk.expand(b"channel", &mut psk);
    (
        Paired {
            sign_key: store.import(sign, KeyPurpose::Sign),
            encrypt_key: store.import(encrypt, KeyPurpose::Encrypt),
        },
        psk,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_derive_matching_keys() {
        let phone = TeeKeystore::new();
        let proxy = TeeKeystore::new();
        let secret = [0x5au8; 32];
        let (p_phone, psk_phone) = pair(&phone, &secret);
        let (p_proxy, psk_proxy) = pair(&proxy, &secret);
        assert_eq!(psk_phone, psk_proxy);
        // A tag made on the phone verifies at the proxy.
        let tag = phone.sign(p_phone.sign_key, b"evidence").unwrap();
        assert!(proxy.verify(p_proxy.sign_key, b"evidence", &tag).unwrap());
    }

    #[test]
    fn different_ceremonies_do_not_interoperate() {
        let phone = TeeKeystore::new();
        let proxy = TeeKeystore::new();
        let (p_phone, psk_a) = pair(&phone, &[1u8; 32]);
        let (p_proxy, psk_b) = pair(&proxy, &[2u8; 32]);
        assert_ne!(psk_a, psk_b);
        let tag = phone.sign(p_phone.sign_key, b"evidence").unwrap();
        assert!(!proxy.verify(p_proxy.sign_key, b"evidence", &tag).unwrap());
    }

    #[test]
    fn sign_and_encrypt_keys_are_distinct() {
        let store = TeeKeystore::new();
        let (p, psk) = pair(&store, &[7u8; 32]);
        // Purpose binding: the encrypt key cannot sign and vice versa.
        assert!(store.sign(p.encrypt_key, b"x").is_err());
        assert!(store.seal(p.sign_key, &[0; 12], b"", b"x").is_err());
        // The PSK differs from both sealed keys' derivation labels (can't
        // read them back, but signing with PSK-as-key must not verify).
        let tag = store.sign(p.sign_key, b"x").unwrap();
        assert_ne!(tag, fiat_crypto::HmacSha256::mac(&psk, b"x"));
    }
}
