//! User-facing security notifications (§5.4: "the user is notified of a
//! potential security breach"; §7: "reporting such logs to the users can
//! effectively relieve the concerns and allow the users to notice the
//! silent false negatives").
//!
//! [`NotificationCenter`] digests the audit trail into alerts a home user
//! can act on: per-device blocked-command alerts (rate-limited so a noisy
//! device does not spam), lockout alerts, and a periodic digest that also
//! surfaces *allowed* manual events — the §7 defence against silent false
//! negatives: the user sees every manual authorization FIAT granted and
//! can recognize ones they did not perform.

use crate::audit::{AuditEntry, AuditVerdict};
use fiat_net::{SimDuration, SimTime};
use std::collections::HashMap;

/// Severity of a user notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational digest entry.
    Info,
    /// A command was blocked.
    Warning,
    /// A device was locked out (active attack suspected).
    Critical,
}

/// One notification shown to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// When it was raised.
    pub at: SimTime,
    /// Device concerned.
    pub device: u16,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

/// Digests audit entries into rate-limited notifications.
#[derive(Debug)]
pub struct NotificationCenter {
    /// Minimum spacing between Warning-level alerts per device.
    pub warn_cooldown: SimDuration,
    last_warn: HashMap<u16, SimTime>,
    suppressed: HashMap<u16, u64>,
    pending: Vec<Notification>,
    // Digest bookkeeping: allowed manual events since the last digest.
    allowed_manual: HashMap<u16, u64>,
}

impl Default for NotificationCenter {
    fn default() -> Self {
        Self::new(SimDuration::from_mins(5))
    }
}

impl NotificationCenter {
    /// Center with the given per-device warning cooldown.
    pub fn new(warn_cooldown: SimDuration) -> Self {
        NotificationCenter {
            warn_cooldown,
            last_warn: HashMap::new(),
            suppressed: HashMap::new(),
            pending: Vec::new(),
            allowed_manual: HashMap::new(),
        }
    }

    /// Ingest one audit entry (call in order).
    pub fn ingest(&mut self, entry: &AuditEntry) {
        match entry.verdict {
            AuditVerdict::DroppedUnverified => {
                let due = self
                    .last_warn
                    .get(&entry.device)
                    .is_none_or(|&t| entry.ts.since(t) >= self.warn_cooldown);
                if due {
                    let extra = self.suppressed.remove(&entry.device).unwrap_or(0);
                    let suffix = if extra > 0 {
                        format!(" ({extra} similar alerts suppressed)")
                    } else {
                        String::new()
                    };
                    self.pending.push(Notification {
                        at: entry.ts,
                        device: entry.device,
                        severity: Severity::Warning,
                        message: format!(
                            "Blocked an unverified manual command to device {}{suffix}",
                            entry.device
                        ),
                    });
                    self.last_warn.insert(entry.device, entry.ts);
                } else {
                    *self.suppressed.entry(entry.device).or_default() += 1;
                }
            }
            AuditVerdict::LockedOut => {
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Critical,
                    message: format!(
                        "Device {} locked out after repeated unverified commands — \
                         verify manually to restore",
                        entry.device
                    ),
                });
            }
            AuditVerdict::AllowedManualVerified
            | AuditVerdict::AllowedCascade
            | AuditVerdict::QuarantineReleased => {
                *self.allowed_manual.entry(entry.device).or_default() += 1;
            }
            AuditVerdict::QuarantineExpired => {
                // A held command timed out waiting for its proof: the
                // user's action (or an attacker's) went undelivered —
                // tell them, with the same cooldown as unverified drops.
                let due = self
                    .last_warn
                    .get(&entry.device)
                    .is_none_or(|&t| entry.ts.since(t) >= self.warn_cooldown);
                if due {
                    self.pending.push(Notification {
                        at: entry.ts,
                        device: entry.device,
                        severity: Severity::Warning,
                        message: format!(
                            "Held command to device {} expired without a humanness proof",
                            entry.device
                        ),
                    });
                    self.last_warn.insert(entry.device, entry.ts);
                } else {
                    *self.suppressed.entry(entry.device).or_default() += 1;
                }
            }
            AuditVerdict::AllowedUnknownDevice => {
                // Audited once per device, so this cannot spam: surface
                // the enforcement gap where the user can see it.
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Warning,
                    message: format!(
                        "Device {} is not enrolled — its traffic bypasses FIAT enforcement",
                        entry.device
                    ),
                });
            }
            AuditVerdict::DegradedModeEntered => {
                // Proxy-wide transition (the device field is the
                // AUDIT_PROXY_DEVICE sentinel); never rate-limited — the
                // control plane flaps far slower than packet verdicts.
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Warning,
                    message: "Proxy lost its control plane — serving last-known-good key epochs"
                        .to_string(),
                });
            }
            AuditVerdict::DegradedModeExited => {
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Info,
                    message: "Proxy control plane restored — key lifecycle resumed".to_string(),
                });
            }
            AuditVerdict::SpoofSuspected => {
                // One entry per sealed evidence window, so no cooldown
                // needed — and an impersonation attempt is exactly what
                // the user must see immediately.
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Critical,
                    message: format!(
                        "Device {} behaves like a different device class than it claims — \
                         possible spoofing; its traffic is quarantined",
                        entry.device
                    ),
                });
            }
            AuditVerdict::UnknownQuarantined => {
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Warning,
                    message: format!(
                        "Unrecognized device {} matched no known behavior — \
                         its traffic is quarantined until enrolled",
                        entry.device
                    ),
                });
            }
            AuditVerdict::FingerprintMatched => {
                self.pending.push(Notification {
                    at: entry.ts,
                    device: entry.device,
                    severity: Severity::Info,
                    message: format!(
                        "Unenrolled device {} provisionally allowed: behavior matches its \
                         claimed class — enroll it to lift the provisional status",
                        entry.device
                    ),
                });
            }
            AuditVerdict::AllowedNonManual => {}
        }
    }

    /// Drain pending alerts (warnings and criticals).
    pub fn drain(&mut self) -> Vec<Notification> {
        std::mem::take(&mut self.pending)
    }

    /// Produce the periodic digest at `now`: one Info line per device that
    /// had manual authorizations since the last digest, so the user can
    /// spot authorizations they did not perform (§7's silent-FN defence).
    pub fn digest(&mut self, now: SimTime) -> Vec<Notification> {
        let mut out: Vec<Notification> = self
            .allowed_manual
            .drain()
            .map(|(device, n)| Notification {
                at: now,
                device,
                severity: Severity::Info,
                message: format!(
                    "Device {device}: {n} manual command(s) authorized since the last digest"
                ),
            })
            .collect();
        out.sort_by_key(|n| n.device);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::EventClass;

    fn entry(ts_s: u64, device: u16, verdict: AuditVerdict) -> AuditEntry {
        AuditEntry {
            ts: SimTime::from_secs(ts_s),
            device,
            class: EventClass::Manual,
            verdict,
        }
    }

    #[test]
    fn drops_raise_warnings_with_cooldown() {
        let mut nc = NotificationCenter::new(SimDuration::from_secs(60));
        nc.ingest(&entry(0, 3, AuditVerdict::DroppedUnverified));
        nc.ingest(&entry(10, 3, AuditVerdict::DroppedUnverified)); // suppressed
        nc.ingest(&entry(20, 3, AuditVerdict::DroppedUnverified)); // suppressed
        nc.ingest(&entry(70, 3, AuditVerdict::DroppedUnverified)); // cooldown over
        let alerts = nc.drain();
        assert_eq!(alerts.len(), 2);
        assert!(alerts[0].message.contains("Blocked"));
        assert!(
            alerts[1].message.contains("2 similar alerts suppressed"),
            "{}",
            alerts[1].message
        );
        assert!(nc.drain().is_empty());
    }

    #[test]
    fn cooldowns_are_per_device() {
        let mut nc = NotificationCenter::new(SimDuration::from_secs(60));
        nc.ingest(&entry(0, 1, AuditVerdict::DroppedUnverified));
        nc.ingest(&entry(1, 2, AuditVerdict::DroppedUnverified));
        assert_eq!(nc.drain().len(), 2);
    }

    #[test]
    fn lockout_is_critical_and_never_suppressed() {
        let mut nc = NotificationCenter::new(SimDuration::from_secs(600));
        nc.ingest(&entry(0, 3, AuditVerdict::DroppedUnverified));
        nc.ingest(&entry(1, 3, AuditVerdict::LockedOut));
        nc.ingest(&entry(2, 3, AuditVerdict::LockedOut));
        let alerts = nc.drain();
        assert_eq!(alerts.len(), 3);
        assert_eq!(
            alerts
                .iter()
                .filter(|a| a.severity == Severity::Critical)
                .count(),
            2
        );
    }

    #[test]
    fn digest_surfaces_allowed_manual_events() {
        let mut nc = NotificationCenter::default();
        nc.ingest(&entry(0, 1, AuditVerdict::AllowedManualVerified));
        nc.ingest(&entry(1, 1, AuditVerdict::AllowedManualVerified));
        nc.ingest(&entry(2, 4, AuditVerdict::AllowedCascade));
        nc.ingest(&entry(3, 2, AuditVerdict::AllowedNonManual)); // not digested
        let d = nc.digest(SimTime::from_secs(100));
        assert_eq!(d.len(), 2);
        assert!(d[0].message.contains("2 manual command(s)"));
        assert_eq!(d[1].device, 4);
        // Digest resets the counters.
        assert!(nc.digest(SimTime::from_secs(200)).is_empty());
    }

    #[test]
    fn unknown_device_raises_warning() {
        let mut nc = NotificationCenter::default();
        nc.ingest(&entry(0, 9, AuditVerdict::AllowedUnknownDevice));
        let alerts = nc.drain();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].severity, Severity::Warning);
        assert!(alerts[0].message.contains("not enrolled"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
