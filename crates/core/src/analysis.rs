//! Appendix A: closed-form false-positive/negative probabilities.
//!
//! FIAT's end-to-end errors compose the unpredictable-event classifier's
//! recalls with the humanness validator's recalls:
//!
//! - **FP-N** (eq. 3): a non-manual event is blocked — misclassified as
//!   manual *and* the (correctly) absent human is detected as absent.
//! - **FP-M** (eq. 4): a legitimate manual event is blocked — correctly
//!   classified manual but the human mis-rejected.
//! - **FN** (eq. 5): an attack succeeds — the manual event is either
//!   misclassified as non-manual (allowed unconditionally) or correctly
//!   classified but the absent human mis-validated as present.
//!
//! Note: the paper's eq. (2)/(3) print `P{non_human|non_human} = R_human`
//! — a typo (it should be `R_non_human`); Table 6's printed numbers follow
//! the typo'd form. [`ErrorModel::fp_non_manual`] implements the correct
//! semantics, and [`ErrorModel::fp_non_manual_as_printed`] reproduces the
//! paper's arithmetic for comparison against Table 6.

/// The four recalls the composition depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Event-classifier recall on manual events.
    pub r_manual: f64,
    /// Event-classifier recall on non-manual events.
    pub r_non_manual: f64,
    /// Humanness-validator recall on human interactions.
    pub r_human: f64,
    /// Humanness-validator recall on non-human (attack) attempts.
    pub r_non_human: f64,
}

impl ErrorModel {
    /// Construct, validating that all recalls are probabilities.
    pub fn new(r_manual: f64, r_non_manual: f64, r_human: f64, r_non_human: f64) -> Self {
        for (name, v) in [
            ("r_manual", r_manual),
            ("r_non_manual", r_non_manual),
            ("r_human", r_human),
            ("r_non_human", r_non_human),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} out of [0,1]");
        }
        ErrorModel {
            r_manual,
            r_non_manual,
            r_human,
            r_non_human,
        }
    }

    /// The paper's Table 6 operating point for the humanness validator
    /// (recall 0.934 human / 0.982 non-human) with given classifier recalls.
    pub fn with_paper_validator(r_manual: f64, r_non_manual: f64) -> Self {
        Self::new(r_manual, r_non_manual, 0.934, 0.982)
    }

    /// Eq. 3 (corrected): P{blocked | non-manual event, no human present}.
    pub fn fp_non_manual(&self) -> f64 {
        (1.0 - self.r_non_manual) * self.r_non_human
    }

    /// Eq. 3 exactly as printed in the paper (uses `r_human` where the
    /// derivation calls for `r_non_human`); matches Table 6's numbers.
    pub fn fp_non_manual_as_printed(&self) -> f64 {
        (1.0 - self.r_non_manual) * self.r_human
    }

    /// Eq. 4: P{blocked | legitimate manual event}.
    pub fn fp_manual(&self) -> f64 {
        self.r_manual * (1.0 - self.r_human)
    }

    /// Eq. 5: P{attack succeeds | attacker-injected manual event}.
    pub fn false_negative(&self) -> f64 {
        1.0 - self.r_manual + self.r_manual * (1.0 - self.r_non_human)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 6, Echo Dot 4 row: manual recall .980, non-manual .985,
    /// printed columns 1.40 / 1.76 / 3.76 (%).
    #[test]
    fn echo_dot4_row_reproduced() {
        let m = ErrorModel::with_paper_validator(0.980, 0.985);
        assert!((m.fp_non_manual_as_printed() * 100.0 - 1.40).abs() < 0.02);
        assert!((m.false_negative() * 100.0 - 3.76).abs() < 0.02);
        // The 1.76 printed in the "FP Non-M." column equals the second FN
        // term, r_manual * (1 - r_non_human):
        let second_term = m.r_manual * (1.0 - m.r_non_human);
        assert!((second_term * 100.0 - 1.76).abs() < 0.02);
    }

    /// Table 6, E4 row: manual recall .960, non-manual .955 → FN 5.72 %.
    #[test]
    fn e4_row_reproduced() {
        let m = ErrorModel::with_paper_validator(0.960, 0.955);
        assert!(
            (m.false_negative() * 100.0 - 5.72).abs() < 0.03,
            "{}",
            m.false_negative() * 100.0
        );
    }

    #[test]
    fn perfect_recalls_zero_errors() {
        let m = ErrorModel::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!(m.fp_non_manual(), 0.0);
        assert_eq!(m.fp_manual(), 0.0);
        assert_eq!(m.false_negative(), 0.0);
    }

    #[test]
    fn degenerate_classifier_all_false_negative() {
        // Classifier never recognizes manual events: every attack slips.
        let m = ErrorModel::new(0.0, 1.0, 0.9, 0.9);
        assert_eq!(m.false_negative(), 1.0);
        assert_eq!(m.fp_manual(), 0.0);
    }

    #[test]
    fn monotonic_in_recalls() {
        // Improving the non-human recall must not increase FN.
        let lo = ErrorModel::new(0.95, 0.95, 0.93, 0.90);
        let hi = ErrorModel::new(0.95, 0.95, 0.93, 0.99);
        assert!(hi.false_negative() < lo.false_negative());
        // Improving human recall must not increase FP-M.
        let lo = ErrorModel::new(0.95, 0.95, 0.90, 0.98);
        let hi = ErrorModel::new(0.95, 0.95, 0.99, 0.98);
        assert!(hi.fp_manual() < lo.fp_manual());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_rejected() {
        let _ = ErrorModel::new(1.2, 0.9, 0.9, 0.9);
    }
}
