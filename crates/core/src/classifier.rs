//! Per-device unpredictable-event classification (§4, §5.4).
//!
//! Simple devices (SP10, WP3, Nest-E) get a size rule: a distinctive
//! first-packet size marks manual traffic. Complex devices get an ML
//! model over the 66 event features; the deployed choice is BernoulliNB
//! "given its high accuracy overall and better transferability than NCC"
//! (§6, footnote 2), but a Nearest-Centroid variant is provided for the
//! Table 2/3 comparisons.

use crate::events::UnpredictableEvent;
use crate::features::{event_feature_names, event_features};
use fiat_ml::naive_bayes::BernoulliNB;
use fiat_ml::nearest_centroid::NearestCentroid;
use fiat_ml::{Classifier, Dataset, Distance, StandardScaler};
use fiat_net::{PacketRecord, TrafficClass};
use serde::{Deserialize, Serialize};

/// Event class labels, aligned with [`TrafficClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// Unpredictable control chatter.
    Control,
    /// Routine-triggered.
    Automated,
    /// Human-triggered.
    Manual,
}

impl EventClass {
    /// Integer label used by the ML layer.
    pub fn label(self) -> usize {
        match self {
            EventClass::Control => 0,
            EventClass::Automated => 1,
            EventClass::Manual => 2,
        }
    }

    /// Inverse of [`EventClass::label`].
    pub fn from_label(l: usize) -> EventClass {
        match l {
            0 => EventClass::Control,
            1 => EventClass::Automated,
            _ => EventClass::Manual,
        }
    }

    /// Conversion from ground-truth labels.
    pub fn from_traffic(c: TrafficClass) -> EventClass {
        match c {
            TrafficClass::Control => EventClass::Control,
            TrafficClass::Automated => EventClass::Automated,
            TrafficClass::Manual => EventClass::Manual,
        }
    }

    /// Whether this class requires humanness validation.
    pub fn is_manual(self) -> bool {
        matches!(self, EventClass::Manual)
    }
}

/// Index of the `pkt1-len` feature in the 66-vector.
const PKT1_LEN_IDX: usize = 4;

/// A per-device event classifier.
#[derive(Clone)]
pub enum EventClassifier {
    /// §4 size rule: first packet of `manual_size` bytes ⇒ manual.
    SimpleRule {
        /// The distinctive manual notification size (235 or 267 B).
        manual_size: u16,
    },
    /// Bernoulli Naive Bayes over scaled features (the deployed model).
    Bernoulli {
        /// Scaler fitted on training features.
        scaler: StandardScaler,
        /// The fitted model.
        model: BernoulliNB,
    },
    /// Nearest-centroid (Chebyshev) over scaled features.
    Centroid {
        /// Scaler fitted on training features.
        scaler: StandardScaler,
        /// The fitted model.
        model: NearestCentroid,
    },
}

impl EventClassifier {
    /// Build the size rule.
    pub fn simple_rule(manual_size: u16) -> Self {
        EventClassifier::SimpleRule { manual_size }
    }

    /// Train the BernoulliNB variant on an event dataset.
    pub fn train_bernoulli(data: &Dataset) -> Self {
        let (scaler, x) = StandardScaler::fit_transform(&data.x);
        let scaled = Dataset {
            x,
            y: data.y.clone(),
            n_classes: 3,
            feature_names: data.feature_names.clone(),
        };
        let mut model = BernoulliNB::new();
        model.fit(&scaled);
        EventClassifier::Bernoulli { scaler, model }
    }

    /// Train the Nearest-Centroid (Chebyshev) variant.
    pub fn train_centroid(data: &Dataset) -> Self {
        let (scaler, x) = StandardScaler::fit_transform(&data.x);
        let scaled = Dataset {
            x,
            y: data.y.clone(),
            n_classes: 3,
            feature_names: data.feature_names.clone(),
        };
        let mut model = NearestCentroid::new(Distance::Chebyshev);
        model.fit(&scaled);
        EventClassifier::Centroid { scaler, model }
    }

    /// Classify a 66-feature vector.
    pub fn classify(&self, features: &[f64]) -> EventClass {
        match self {
            EventClassifier::SimpleRule { manual_size } => {
                if features[PKT1_LEN_IDX] == *manual_size as f64 {
                    EventClass::Manual
                } else {
                    EventClass::Control
                }
            }
            EventClassifier::Bernoulli { scaler, model } => {
                let mut f = features.to_vec();
                scaler.transform_row(&mut f);
                EventClass::from_label(model.predict_one(&f))
            }
            EventClassifier::Centroid { scaler, model } => {
                let mut f = features.to_vec();
                scaler.transform_row(&mut f);
                EventClass::from_label(model.predict_one(&f))
            }
        }
    }

    /// Classify an event directly.
    pub fn classify_event(
        &self,
        event: &UnpredictableEvent,
        packets: &[PacketRecord],
    ) -> EventClass {
        self.classify(&event_features(event, packets))
    }
}

/// Build a labeled event dataset from grouped events and the packet slice
/// (labels from each event's majority ground truth).
pub fn event_dataset(events: &[UnpredictableEvent], packets: &[PacketRecord]) -> Dataset {
    let x: Vec<Vec<f64>> = events.iter().map(|e| event_features(e, packets)).collect();
    let y: Vec<usize> = events
        .iter()
        .map(|e| EventClass::from_traffic(e.majority_label(packets)).label())
        .collect();
    Dataset::new(x, y)
        .with_n_classes(3)
        .with_feature_names(event_feature_names())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, SimTime, TcpFlags, TlsVersion, Transport};
    use std::net::Ipv4Addr;

    fn pkt(ts_ms: u64, size: u16, label: TrafficClass, tls: TlsVersion) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            device: 0,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 5000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls,
            size,
            label,
        }
    }

    fn event(packets: &[PacketRecord], idx: Vec<usize>) -> UnpredictableEvent {
        UnpredictableEvent {
            device: 0,
            packets: idx.clone(),
            start: packets[idx[0]].ts,
            end: packets[*idx.last().unwrap()].ts,
        }
    }

    #[test]
    fn simple_rule_matches_exact_size() {
        let c = EventClassifier::simple_rule(235);
        let packets = vec![
            pkt(0, 235, TrafficClass::Manual, TlsVersion::Tls12),
            pkt(100, 235, TrafficClass::Manual, TlsVersion::Tls12),
        ];
        let ev = event(&packets, vec![0, 1]);
        assert_eq!(c.classify_event(&ev, &packets), EventClass::Manual);

        let other = vec![pkt(0, 219, TrafficClass::Automated, TlsVersion::Tls12)];
        let ev2 = event(&other, vec![0]);
        assert_eq!(c.classify_event(&ev2, &other), EventClass::Control);
    }

    /// Synthesize a separable event dataset: manual events are TLS 1.3
    /// big-packet bursts, automated are mid TLS 1.2, control small no-TLS.
    fn toy_event_data(n: usize) -> (Vec<PacketRecord>, Vec<UnpredictableEvent>) {
        let mut packets = Vec::new();
        let mut events = Vec::new();
        let mut t = 0u64;
        for k in 0..n {
            let (size, label, tls) = match k % 3 {
                0 => (900, TrafficClass::Manual, TlsVersion::Tls13),
                1 => (400, TrafficClass::Automated, TlsVersion::Tls12),
                _ => (150, TrafficClass::Control, TlsVersion::None),
            };
            let start = packets.len();
            for j in 0..3 {
                packets.push(pkt(t + j * 100, size + (k % 5) as u16, label, tls));
            }
            events.push(UnpredictableEvent {
                device: 0,
                packets: (start..start + 3).collect(),
                start: SimTime::from_millis(t),
                end: SimTime::from_millis(t + 200),
            });
            t += 60_000;
        }
        (packets, events)
    }

    #[test]
    fn bernoulli_classifier_learns_classes() {
        let (packets, events) = toy_event_data(30);
        let data = event_dataset(&events, &packets);
        assert_eq!(data.n_classes, 3);
        let c = EventClassifier::train_bernoulli(&data);
        let correct = events
            .iter()
            .filter(|e| {
                c.classify_event(e, &packets)
                    == EventClass::from_traffic(e.majority_label(&packets))
            })
            .count();
        assert!(correct >= 28, "correct {correct}/30");
    }

    #[test]
    fn centroid_classifier_learns_classes() {
        let (packets, events) = toy_event_data(30);
        let data = event_dataset(&events, &packets);
        let c = EventClassifier::train_centroid(&data);
        let correct = events
            .iter()
            .filter(|e| {
                c.classify_event(e, &packets)
                    == EventClass::from_traffic(e.majority_label(&packets))
            })
            .count();
        assert!(correct >= 28, "correct {correct}/30");
    }

    #[test]
    fn event_dataset_shape() {
        let (packets, events) = toy_event_data(9);
        let d = event_dataset(&events, &packets);
        assert_eq!(d.len(), 9);
        assert_eq!(d.n_features(), 66);
        assert_eq!(d.class_counts(), vec![3, 3, 3]);
        assert_eq!(d.feature_names[PKT1_LEN_IDX], "pkt1-len");
    }

    #[test]
    fn class_conversions_roundtrip() {
        for c in [
            EventClass::Control,
            EventClass::Automated,
            EventClass::Manual,
        ] {
            assert_eq!(EventClass::from_label(c.label()), c);
        }
        assert!(EventClass::Manual.is_manual());
        assert!(!EventClass::Automated.is_manual());
        assert_eq!(
            EventClass::from_traffic(TrafficClass::Manual),
            EventClass::Manual
        );
    }
}
