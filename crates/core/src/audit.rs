//! Tamper-evident audit log (§7 "Technology Acceptance").
//!
//! The proxy logs every unpredictable event it decides — class, verdict,
//! whether a human was verified — in a SHA-256 hash chain. An attacker
//! wanting to hide a silent false negative must rewrite the chain, which
//! requires breaking into the proxy's TEE (out of the threat model).
//!
//! ## Checkpointed truncation
//!
//! A proxy that runs for months cannot keep every entry in memory, so the
//! log supports a bounded mode ([`AuditLog::set_max_entries`]): when the
//! in-memory chain exceeds the cap, the oldest half is dropped in one
//! block and the chain hash of the *last dropped entry* becomes the
//! **checkpoint** — the trust anchor the surviving suffix chains from.
//! Truncation discards entry bodies, never hash-chain integrity: the
//! checkpoint commits to everything dropped (it is the head of the
//! dropped prefix), so [`verify_chain_from`] validates the suffix exactly
//! as [`verify_chain`] validates a full log, and an external verifier who
//! archived the dropped prefix can still join the two at the checkpoint.

use crate::classifier::EventClass;
use fiat_crypto::Sha256;
use fiat_net::SimTime;
use serde::{Deserialize, Serialize};

/// Sentinel device id for proxy-wide audit entries (degraded-mode
/// transitions) that concern no single device.
pub const AUDIT_PROXY_DEVICE: u16 = u16::MAX;

/// Verdict recorded for an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditVerdict {
    /// Event allowed as non-manual.
    AllowedNonManual,
    /// Manual event allowed after humanness validation.
    AllowedManualVerified,
    /// Manual event allowed via an interaction-graph cascade (§7).
    AllowedCascade,
    /// Manual event dropped (no human verified).
    DroppedUnverified,
    /// Device locked out (brute-force protection).
    LockedOut,
    /// Traffic of an unregistered device allowed fail-open (incremental
    /// deployment). Recorded once per device, at first sighting.
    AllowedUnknownDevice,
    /// A quarantined manual event released retroactively: its humanness
    /// proof arrived (late but) before the proof deadline.
    QuarantineReleased,
    /// A quarantined manual event demoted at its proof deadline: no proof
    /// arrived in time, so the held packets were discarded and the
    /// episode counted toward the lockout.
    QuarantineExpired,
    /// The proxy lost its control plane and entered degraded mode:
    /// decisions from here on ran against last-known-good key epochs.
    /// Recorded with the [`AUDIT_PROXY_DEVICE`] sentinel — the
    /// transition concerns the proxy, not a device.
    DegradedModeEntered,
    /// The control plane came back; the proxy left degraded mode.
    DegradedModeExited,
    /// An unknown device's traffic behaviorally matched its claimed
    /// class: provisional allow, recorded once when the fingerprint
    /// evidence window sealed.
    FingerprintMatched,
    /// An unknown device's traffic behaviorally matched a *different*
    /// class than the one it claims (spoof suspected): quarantined.
    SpoofSuspected,
    /// An unknown device produced no confident behavioral match inside
    /// the evidence window: quarantined instead of the legacy fail-open.
    UnknownQuarantined,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Decision time.
    pub ts: SimTime,
    /// Device concerned.
    pub device: u16,
    /// Classifier output.
    pub class: EventClass,
    /// Verdict applied.
    pub verdict: AuditVerdict,
}

impl AuditEntry {
    /// Deterministic 16-byte record fed to the hash chain:
    /// timestamp µs (8, BE) | device (2, BE) | class label (1) |
    /// verdict (1) | FNV-1a-32 of the first 12 bytes (4, BE). The
    /// trailing checksum makes every byte load-bearing — a record
    /// truncated or padded by a buggy (or malicious) serializer cannot
    /// produce the same chain input as a well-formed one.
    fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.ts.as_micros().to_be_bytes());
        out[8..10].copy_from_slice(&self.device.to_be_bytes());
        out[10] = self.class.label() as u8;
        out[11] = match self.verdict {
            AuditVerdict::AllowedNonManual => 0,
            AuditVerdict::AllowedManualVerified => 1,
            AuditVerdict::DroppedUnverified => 2,
            AuditVerdict::LockedOut => 3,
            AuditVerdict::AllowedCascade => 4,
            AuditVerdict::AllowedUnknownDevice => 5,
            // Later additions take the next free code so the pinned
            // golden vectors for 0..=5 stay valid.
            AuditVerdict::QuarantineReleased => 6,
            AuditVerdict::QuarantineExpired => 7,
            AuditVerdict::DegradedModeEntered => 8,
            AuditVerdict::DegradedModeExited => 9,
            AuditVerdict::FingerprintMatched => 10,
            AuditVerdict::SpoofSuspected => 11,
            AuditVerdict::UnknownQuarantined => 12,
        };
        let mut fnv: u32 = 0x811c_9dc5;
        for &b in &out[..12] {
            fnv ^= u32::from(b);
            fnv = fnv.wrapping_mul(0x0100_0193);
        }
        out[12..].copy_from_slice(&fnv.to_be_bytes());
        out
    }
}

/// Verify an exported (entries, hashes) pair against the chain rules,
/// independent of any [`AuditLog`] instance.
///
/// This is what an external verifier (the companion app, or the
/// red-team scorecard in `fiat-attack`) runs over a log it received:
/// `true` iff every stored hash equals `SHA-256(prev || record)` walking
/// from the genesis tag, and the two slices have equal length. Any
/// rewritten entry, flipped hash byte, deletion, or reordering breaks at
/// least one link.
pub fn verify_chain(entries: &[AuditEntry], hashes: &[[u8; 32]]) -> bool {
    verify_chain_with(b"fiat-audit-genesis", entries, hashes)
}

/// Verify an exported `(entries, hashes)` suffix whose chain starts at a
/// truncation `checkpoint` instead of genesis: `true` iff every stored
/// hash equals `SHA-256(prev || record)` walking from the checkpoint.
/// This is what a verifier runs over a log that was checkpoint-truncated
/// (see the module docs) — the checkpoint is the chain hash of the last
/// dropped entry and commits to the whole dropped prefix.
pub fn verify_chain_from(
    checkpoint: &[u8; 32],
    entries: &[AuditEntry],
    hashes: &[[u8; 32]],
) -> bool {
    verify_chain_with(checkpoint, entries, hashes)
}

fn verify_chain_with(anchor: &[u8], entries: &[AuditEntry], hashes: &[[u8; 32]]) -> bool {
    if entries.len() != hashes.len() {
        return false;
    }
    let mut prev: Vec<u8> = anchor.to_vec();
    for (e, stored) in entries.iter().zip(hashes) {
        let mut h = Sha256::new();
        h.update(&prev);
        h.update(&e.encode());
        if &h.finalize() != stored {
            return false;
        }
        prev = stored.to_vec();
    }
    true
}

/// Hash-chained audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    hashes: Vec<[u8; 32]>,
    /// Truncation checkpoint: chain hash of the last dropped entry, or
    /// `None` when the chain still starts at genesis.
    checkpoint: Option<[u8; 32]>,
    /// Entries dropped by checkpointed truncation so far.
    truncated: u64,
    /// In-memory entry cap; `None` = unbounded (the historical default).
    max_entries: Option<usize>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a log from exported `(entries, hashes)` — the restore half
    /// of a snapshot. Returns `None` when the pair fails
    /// [`verify_chain`]: a snapshot that does not verify was tampered
    /// with (or truncated) and must not be resumed from.
    pub fn from_parts(entries: Vec<AuditEntry>, hashes: Vec<[u8; 32]>) -> Option<Self> {
        Self::from_parts_at(None, 0, entries, hashes)
    }

    /// Rebuild a log whose chain starts at a truncation `checkpoint`
    /// (`None` = genesis) with `truncated` entries already dropped.
    /// Returns `None` when the suffix fails verification from the given
    /// anchor.
    pub fn from_parts_at(
        checkpoint: Option<[u8; 32]>,
        truncated: u64,
        entries: Vec<AuditEntry>,
        hashes: Vec<[u8; 32]>,
    ) -> Option<Self> {
        let ok = match &checkpoint {
            Some(cp) => verify_chain_from(cp, &entries, &hashes),
            None => verify_chain(&entries, &hashes),
        };
        if !ok {
            return None;
        }
        Some(AuditLog {
            entries,
            hashes,
            checkpoint,
            truncated,
            max_entries: None,
        })
    }

    /// Bound the in-memory chain: when an append pushes the length past
    /// `max`, the oldest half is dropped in one block and the checkpoint
    /// advances (see the module docs). `None` restores the unbounded
    /// historical behavior. An over-cap log is truncated immediately.
    pub fn set_max_entries(&mut self, max: Option<usize>) {
        self.max_entries = max;
        self.enforce_cap();
    }

    /// Configured in-memory entry cap.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Truncation checkpoint (chain hash of the last dropped entry), or
    /// `None` while the chain still starts at genesis.
    pub fn checkpoint(&self) -> Option<[u8; 32]> {
        self.checkpoint
    }

    /// Entries dropped by checkpointed truncation so far.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    fn enforce_cap(&mut self) {
        let Some(max) = self.max_entries else { return };
        if self.entries.len() <= max {
            return;
        }
        // Drop down to half the cap in one block so truncation cost is
        // amortized O(1) per append, not O(n) on every over-cap entry.
        let keep = max / 2;
        let drop_n = self.entries.len() - keep;
        self.checkpoint = Some(self.hashes[drop_n - 1]);
        self.truncated += drop_n as u64;
        self.entries.drain(..drop_n);
        self.hashes.drain(..drop_n);
    }

    /// Append an entry, extending the hash chain.
    pub fn append(&mut self, entry: AuditEntry) {
        let prev: &[u8] = match self.hashes.last() {
            Some(h) => h,
            None => match &self.checkpoint {
                Some(cp) => cp,
                None => b"fiat-audit-genesis",
            },
        };
        let mut h = Sha256::new();
        h.update(prev);
        h.update(&entry.encode());
        self.hashes.push(h.finalize());
        self.entries.push(entry);
        self.enforce_cap();
    }

    /// Entries currently in memory, in order (the suffix after any
    /// checkpointed truncation).
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries currently in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the in-memory log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries ever appended, including truncated ones.
    pub fn total_appended(&self) -> u64 {
        self.truncated + self.entries.len() as u64
    }

    /// Head hash committing to the whole log (what the TEE would attest).
    /// Falls back to the checkpoint when every in-memory entry has been
    /// truncated — the commitment to history never regresses.
    pub fn head(&self) -> Option<[u8; 32]> {
        self.hashes.last().copied().or(self.checkpoint)
    }

    /// Per-entry chain hashes, parallel to [`entries`](Self::entries).
    /// Export both and an external party can re-verify the chain with
    /// [`verify_chain`] (or [`verify_chain_from`] the checkpoint, for a
    /// truncated log) without trusting this process.
    pub fn hashes(&self) -> &[[u8; 32]] {
        &self.hashes
    }

    /// Verify the chain against the stored entries; `false` if any entry
    /// or hash was altered. A truncated log verifies from its checkpoint.
    pub fn verify(&self) -> bool {
        match &self.checkpoint {
            Some(cp) => verify_chain_from(cp, &self.entries, &self.hashes),
            None => verify_chain(&self.entries, &self.hashes),
        }
    }

    /// Entries for a device with a given verdict (e.g. to show the user
    /// unverified drops).
    pub fn drops_for(&self, device: u16) -> impl Iterator<Item = &AuditEntry> {
        self.entries
            .iter()
            .filter(move |e| e.device == device && e.verdict == AuditVerdict::DroppedUnverified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts_s: u64, device: u16, verdict: AuditVerdict) -> AuditEntry {
        AuditEntry {
            ts: SimTime::from_secs(ts_s),
            device,
            class: EventClass::Manual,
            verdict,
        }
    }

    #[test]
    fn chain_verifies_when_untouched() {
        let mut log = AuditLog::new();
        for i in 0..10 {
            log.append(entry(i, 0, AuditVerdict::AllowedManualVerified));
        }
        assert!(log.verify());
        assert_eq!(log.len(), 10);
        assert!(log.head().is_some());
    }

    #[test]
    fn tampering_with_entry_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        // Attacker rewrites the drop into an allow.
        log.entries[0].verdict = AuditVerdict::AllowedManualVerified;
        assert!(!log.verify());
    }

    #[test]
    fn tampering_with_hash_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        log.hashes[0][0] ^= 1;
        assert!(!log.verify());
    }

    #[test]
    fn removing_entry_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        // Deleting the incriminating entry but keeping its hash breaks the
        // count invariant; deleting both breaks the successor's link.
        log.entries.remove(0);
        assert!(!log.verify());
    }

    #[test]
    fn verify_chain_on_exported_copy() {
        // An external verifier works from (entries, hashes) snapshots,
        // not the log object. Tampering with either side of the export
        // must fail verification.
        let mut log = AuditLog::new();
        for i in 0..6 {
            let verdict = if i == 3 {
                AuditVerdict::DroppedUnverified
            } else {
                AuditVerdict::AllowedManualVerified
            };
            log.append(entry(i, 2, verdict));
        }
        let entries: Vec<AuditEntry> = log.entries().to_vec();
        let hashes: Vec<[u8; 32]> = log.hashes().to_vec();
        assert_eq!(hashes.len(), entries.len());
        assert!(verify_chain(&entries, &hashes));

        // Rewriting the incriminating drop into an allow.
        let mut tampered = entries.clone();
        tampered[3].verdict = AuditVerdict::AllowedManualVerified;
        assert!(!verify_chain(&tampered, &hashes));

        // Truncating the tail (hiding the most recent records).
        assert!(!verify_chain(&entries[..4], &hashes));
        assert!(!verify_chain(&entries, &hashes[..4]));
    }

    #[test]
    fn verify_chain_detects_reordering() {
        // Swapping two records *and* their hashes keeps each pairwise
        // (entry, hash) association intact, but breaks the prev-links on
        // both sides of the swap.
        let mut log = AuditLog::new();
        for i in 0..5 {
            log.append(entry(i, 1, AuditVerdict::DroppedUnverified));
        }
        let mut entries: Vec<AuditEntry> = log.entries().to_vec();
        let mut hashes: Vec<[u8; 32]> = log.hashes().to_vec();
        entries.swap(1, 3);
        hashes.swap(1, 3);
        assert!(!verify_chain(&entries, &hashes));
    }

    #[test]
    fn drops_filter() {
        let mut log = AuditLog::new();
        log.append(entry(1, 3, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 3, AuditVerdict::AllowedNonManual));
        log.append(entry(3, 4, AuditVerdict::DroppedUnverified));
        assert_eq!(log.drops_for(3).count(), 1);
        assert_eq!(log.drops_for(4).count(), 1);
        assert_eq!(log.drops_for(5).count(), 0);
    }

    #[test]
    fn from_parts_restores_and_rejects_tampering() {
        let mut log = AuditLog::new();
        for i in 0..4 {
            log.append(entry(i, 1, AuditVerdict::AllowedManualVerified));
        }
        let entries = log.entries().to_vec();
        let hashes = log.hashes().to_vec();

        // A faithful export restores and the chain still extends.
        let mut restored = AuditLog::from_parts(entries.clone(), hashes.clone()).unwrap();
        assert_eq!(restored.head(), log.head());
        restored.append(entry(9, 1, AuditVerdict::DroppedUnverified));
        log.append(entry(9, 1, AuditVerdict::DroppedUnverified));
        assert_eq!(restored.head(), log.head());
        assert!(restored.verify());

        // A tampered export must not produce a log.
        let mut bad = entries.clone();
        bad[2].verdict = AuditVerdict::LockedOut;
        assert!(AuditLog::from_parts(bad, hashes.clone()).is_none());
        assert!(AuditLog::from_parts(entries[..3].to_vec(), hashes).is_none());
    }

    #[test]
    fn degraded_mode_verdicts_take_next_codes() {
        // Codes 8/9 extend the documented encoding without disturbing
        // the pinned golden vectors for 0..=7.
        let enter = AuditEntry {
            ts: SimTime::from_secs(1),
            device: AUDIT_PROXY_DEVICE,
            class: EventClass::Control,
            verdict: AuditVerdict::DegradedModeEntered,
        };
        let exit = AuditEntry {
            ts: SimTime::from_secs(2),
            device: AUDIT_PROXY_DEVICE,
            class: EventClass::Control,
            verdict: AuditVerdict::DegradedModeExited,
        };
        let mut log = AuditLog::new();
        log.append(enter);
        log.append(exit);
        assert!(log.verify());
        let mut other = AuditLog::new();
        other.append(AuditEntry {
            verdict: AuditVerdict::DegradedModeExited,
            ..log.entries()[0].clone()
        });
        assert_ne!(log.hashes()[0], other.hashes()[0]);
    }

    #[test]
    fn empty_log() {
        let log = AuditLog::new();
        assert!(log.verify());
        assert!(log.is_empty());
        assert_eq!(log.head(), None);
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn golden_chain_hashes_are_pinned() {
        // Golden vectors computed independently (Python hashlib) from the
        // documented record layout: ts µs (8, BE) | device (2, BE) |
        // class (1) | verdict (1) | FNV-1a-32 of bytes 0..12 (4, BE),
        // chained as SHA-256(prev || record) from b"fiat-audit-genesis".
        // A change to the encoding or the chain breaks this test — bump
        // the vectors only on a deliberate format change.
        let e1 = AuditEntry {
            ts: SimTime::from_secs(1),
            device: 7,
            class: EventClass::Manual,
            verdict: AuditVerdict::DroppedUnverified,
        };
        let e2 = AuditEntry {
            ts: SimTime::from_secs(2),
            device: 7,
            class: EventClass::Control,
            verdict: AuditVerdict::AllowedNonManual,
        };
        assert_eq!(hex(&e1.encode()), "00000000000f424000070202ad0d7503");
        assert_eq!(hex(&e2.encode()), "00000000001e84800007000000eb04ae");

        let mut log = AuditLog::new();
        log.append(e1);
        assert_eq!(
            hex(&log.head().unwrap()),
            "7d4ad8078ba7ed8d2a38da40f1a0c5c6ff71b617f7557b1e064c1db2dc61f6c9"
        );
        log.append(e2);
        assert_eq!(
            hex(&log.head().unwrap()),
            "f390779bf447069fc045fd0dbc8102481010c136974ce547a97402287bc59b88"
        );
        assert!(log.verify());
    }

    #[test]
    fn checkpointed_truncation_keeps_chain_verifiable() {
        let mut bounded = AuditLog::new();
        bounded.set_max_entries(Some(8));
        let mut unbounded = AuditLog::new();
        for i in 0..40 {
            let e = entry(i, 2, AuditVerdict::DroppedUnverified);
            bounded.append(e.clone());
            unbounded.append(e);
        }
        // The cap held, entries were dropped, and the commitment to the
        // full history is unchanged: both logs attest the same head.
        assert!(bounded.len() <= 8);
        assert!(bounded.truncated() > 0);
        assert_eq!(bounded.total_appended(), 40);
        assert_eq!(bounded.head(), unbounded.head());
        assert!(bounded.verify());

        // The suffix verifies from the checkpoint, not from genesis.
        let cp = bounded.checkpoint().expect("truncation sets checkpoint");
        assert!(verify_chain_from(&cp, bounded.entries(), bounded.hashes()));
        assert!(!verify_chain(bounded.entries(), bounded.hashes()));

        // The checkpoint is the chain hash of the last dropped entry, so
        // an archived prefix joins the live suffix at the checkpoint.
        let dropped = bounded.truncated() as usize;
        assert_eq!(cp, unbounded.hashes()[dropped - 1]);
        assert!(verify_chain(
            &unbounded.entries()[..dropped],
            &unbounded.hashes()[..dropped]
        ));
    }

    #[test]
    fn truncated_log_restores_via_from_parts_at() {
        let mut log = AuditLog::new();
        log.set_max_entries(Some(6));
        for i in 0..20 {
            log.append(entry(i, 1, AuditVerdict::AllowedManualVerified));
        }
        let cp = log.checkpoint();
        let truncated = log.truncated();
        let entries = log.entries().to_vec();
        let hashes = log.hashes().to_vec();

        // A faithful export restores from the checkpoint and the chain
        // still extends identically to the original.
        let mut restored = AuditLog::from_parts_at(cp, truncated, entries.clone(), hashes.clone())
            .expect("restores");
        assert_eq!(restored.head(), log.head());
        assert_eq!(restored.truncated(), log.truncated());
        restored.append(entry(99, 1, AuditVerdict::DroppedUnverified));
        log.append(entry(99, 1, AuditVerdict::DroppedUnverified));
        assert_eq!(restored.head(), log.head());
        assert!(restored.verify());

        // Genesis-anchored restore of a truncated suffix must refuse —
        // and so must a tampered suffix from the right checkpoint.
        assert!(AuditLog::from_parts(entries.clone(), hashes.clone()).is_none());
        let mut bad = entries.clone();
        bad[0].verdict = AuditVerdict::LockedOut;
        assert!(AuditLog::from_parts_at(cp, truncated, bad, hashes).is_none());
    }

    #[test]
    fn head_falls_back_to_checkpoint_when_all_entries_truncated() {
        let mut log = AuditLog::new();
        log.set_max_entries(Some(1));
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        let head_before = log.head();
        log.append(entry(2, 0, AuditVerdict::DroppedUnverified));
        // max 1 keeps max/2 = 0 entries: everything is truncated, but the
        // head still commits to both entries (and never regresses).
        assert!(log.is_empty());
        assert_eq!(log.truncated(), 2);
        assert!(log.head().is_some());
        assert_ne!(log.head(), head_before);
        assert!(log.verify());
    }

    #[test]
    fn encode_uses_all_sixteen_bytes() {
        // The checksum tail must depend on the header: entries differing
        // in any field produce different trailing bytes, and no entry
        // leaves them zero.
        let a = entry(1, 0, AuditVerdict::DroppedUnverified).encode();
        let b = entry(1, 1, AuditVerdict::DroppedUnverified).encode();
        let c = entry(1, 0, AuditVerdict::LockedOut).encode();
        assert_ne!(a[12..], b[12..]);
        assert_ne!(a[12..], c[12..]);
        assert_ne!(a[12..], [0u8; 4]);
    }
}
