//! Tamper-evident audit log (§7 "Technology Acceptance").
//!
//! The proxy logs every unpredictable event it decides — class, verdict,
//! whether a human was verified — in a SHA-256 hash chain. An attacker
//! wanting to hide a silent false negative must rewrite the chain, which
//! requires breaking into the proxy's TEE (out of the threat model).

use crate::classifier::EventClass;
use fiat_crypto::Sha256;
use fiat_net::SimTime;
use serde::{Deserialize, Serialize};

/// Sentinel device id for proxy-wide audit entries (degraded-mode
/// transitions) that concern no single device.
pub const AUDIT_PROXY_DEVICE: u16 = u16::MAX;

/// Verdict recorded for an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditVerdict {
    /// Event allowed as non-manual.
    AllowedNonManual,
    /// Manual event allowed after humanness validation.
    AllowedManualVerified,
    /// Manual event allowed via an interaction-graph cascade (§7).
    AllowedCascade,
    /// Manual event dropped (no human verified).
    DroppedUnverified,
    /// Device locked out (brute-force protection).
    LockedOut,
    /// Traffic of an unregistered device allowed fail-open (incremental
    /// deployment). Recorded once per device, at first sighting.
    AllowedUnknownDevice,
    /// A quarantined manual event released retroactively: its humanness
    /// proof arrived (late but) before the proof deadline.
    QuarantineReleased,
    /// A quarantined manual event demoted at its proof deadline: no proof
    /// arrived in time, so the held packets were discarded and the
    /// episode counted toward the lockout.
    QuarantineExpired,
    /// The proxy lost its control plane and entered degraded mode:
    /// decisions from here on ran against last-known-good key epochs.
    /// Recorded with the [`AUDIT_PROXY_DEVICE`] sentinel — the
    /// transition concerns the proxy, not a device.
    DegradedModeEntered,
    /// The control plane came back; the proxy left degraded mode.
    DegradedModeExited,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Decision time.
    pub ts: SimTime,
    /// Device concerned.
    pub device: u16,
    /// Classifier output.
    pub class: EventClass,
    /// Verdict applied.
    pub verdict: AuditVerdict,
}

impl AuditEntry {
    /// Deterministic 16-byte record fed to the hash chain:
    /// timestamp µs (8, BE) | device (2, BE) | class label (1) |
    /// verdict (1) | FNV-1a-32 of the first 12 bytes (4, BE). The
    /// trailing checksum makes every byte load-bearing — a record
    /// truncated or padded by a buggy (or malicious) serializer cannot
    /// produce the same chain input as a well-formed one.
    fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.ts.as_micros().to_be_bytes());
        out[8..10].copy_from_slice(&self.device.to_be_bytes());
        out[10] = self.class.label() as u8;
        out[11] = match self.verdict {
            AuditVerdict::AllowedNonManual => 0,
            AuditVerdict::AllowedManualVerified => 1,
            AuditVerdict::DroppedUnverified => 2,
            AuditVerdict::LockedOut => 3,
            AuditVerdict::AllowedCascade => 4,
            AuditVerdict::AllowedUnknownDevice => 5,
            // Later additions take the next free code so the pinned
            // golden vectors for 0..=5 stay valid.
            AuditVerdict::QuarantineReleased => 6,
            AuditVerdict::QuarantineExpired => 7,
            AuditVerdict::DegradedModeEntered => 8,
            AuditVerdict::DegradedModeExited => 9,
        };
        let mut fnv: u32 = 0x811c_9dc5;
        for &b in &out[..12] {
            fnv ^= u32::from(b);
            fnv = fnv.wrapping_mul(0x0100_0193);
        }
        out[12..].copy_from_slice(&fnv.to_be_bytes());
        out
    }
}

/// Verify an exported (entries, hashes) pair against the chain rules,
/// independent of any [`AuditLog`] instance.
///
/// This is what an external verifier (the companion app, or the
/// red-team scorecard in `fiat-attack`) runs over a log it received:
/// `true` iff every stored hash equals `SHA-256(prev || record)` walking
/// from the genesis tag, and the two slices have equal length. Any
/// rewritten entry, flipped hash byte, deletion, or reordering breaks at
/// least one link.
pub fn verify_chain(entries: &[AuditEntry], hashes: &[[u8; 32]]) -> bool {
    if entries.len() != hashes.len() {
        return false;
    }
    let mut prev: Vec<u8> = b"fiat-audit-genesis".to_vec();
    for (e, stored) in entries.iter().zip(hashes) {
        let mut h = Sha256::new();
        h.update(&prev);
        h.update(&e.encode());
        if &h.finalize() != stored {
            return false;
        }
        prev = stored.to_vec();
    }
    true
}

/// Hash-chained audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
    hashes: Vec<[u8; 32]>,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a log from exported `(entries, hashes)` — the restore half
    /// of a snapshot. Returns `None` when the pair fails
    /// [`verify_chain`]: a snapshot that does not verify was tampered
    /// with (or truncated) and must not be resumed from.
    pub fn from_parts(entries: Vec<AuditEntry>, hashes: Vec<[u8; 32]>) -> Option<Self> {
        if !verify_chain(&entries, &hashes) {
            return None;
        }
        Some(AuditLog { entries, hashes })
    }

    /// Append an entry, extending the hash chain.
    pub fn append(&mut self, entry: AuditEntry) {
        let prev: &[u8] = match self.hashes.last() {
            Some(h) => h,
            None => b"fiat-audit-genesis",
        };
        let mut h = Sha256::new();
        h.update(prev);
        h.update(&entry.encode());
        self.hashes.push(h.finalize());
        self.entries.push(entry);
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Head hash committing to the whole log (what the TEE would attest).
    pub fn head(&self) -> Option<[u8; 32]> {
        self.hashes.last().copied()
    }

    /// Per-entry chain hashes, parallel to [`entries`](Self::entries).
    /// Export both and an external party can re-verify the chain with
    /// [`verify_chain`] without trusting this process.
    pub fn hashes(&self) -> &[[u8; 32]] {
        &self.hashes
    }

    /// Verify the chain against the stored entries; `false` if any entry
    /// or hash was altered.
    pub fn verify(&self) -> bool {
        verify_chain(&self.entries, &self.hashes)
    }

    /// Entries for a device with a given verdict (e.g. to show the user
    /// unverified drops).
    pub fn drops_for(&self, device: u16) -> impl Iterator<Item = &AuditEntry> {
        self.entries
            .iter()
            .filter(move |e| e.device == device && e.verdict == AuditVerdict::DroppedUnverified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ts_s: u64, device: u16, verdict: AuditVerdict) -> AuditEntry {
        AuditEntry {
            ts: SimTime::from_secs(ts_s),
            device,
            class: EventClass::Manual,
            verdict,
        }
    }

    #[test]
    fn chain_verifies_when_untouched() {
        let mut log = AuditLog::new();
        for i in 0..10 {
            log.append(entry(i, 0, AuditVerdict::AllowedManualVerified));
        }
        assert!(log.verify());
        assert_eq!(log.len(), 10);
        assert!(log.head().is_some());
    }

    #[test]
    fn tampering_with_entry_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        // Attacker rewrites the drop into an allow.
        log.entries[0].verdict = AuditVerdict::AllowedManualVerified;
        assert!(!log.verify());
    }

    #[test]
    fn tampering_with_hash_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        log.hashes[0][0] ^= 1;
        assert!(!log.verify());
    }

    #[test]
    fn removing_entry_detected() {
        let mut log = AuditLog::new();
        log.append(entry(1, 0, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 0, AuditVerdict::AllowedNonManual));
        // Deleting the incriminating entry but keeping its hash breaks the
        // count invariant; deleting both breaks the successor's link.
        log.entries.remove(0);
        assert!(!log.verify());
    }

    #[test]
    fn verify_chain_on_exported_copy() {
        // An external verifier works from (entries, hashes) snapshots,
        // not the log object. Tampering with either side of the export
        // must fail verification.
        let mut log = AuditLog::new();
        for i in 0..6 {
            let verdict = if i == 3 {
                AuditVerdict::DroppedUnverified
            } else {
                AuditVerdict::AllowedManualVerified
            };
            log.append(entry(i, 2, verdict));
        }
        let entries: Vec<AuditEntry> = log.entries().to_vec();
        let hashes: Vec<[u8; 32]> = log.hashes().to_vec();
        assert_eq!(hashes.len(), entries.len());
        assert!(verify_chain(&entries, &hashes));

        // Rewriting the incriminating drop into an allow.
        let mut tampered = entries.clone();
        tampered[3].verdict = AuditVerdict::AllowedManualVerified;
        assert!(!verify_chain(&tampered, &hashes));

        // Truncating the tail (hiding the most recent records).
        assert!(!verify_chain(&entries[..4], &hashes));
        assert!(!verify_chain(&entries, &hashes[..4]));
    }

    #[test]
    fn verify_chain_detects_reordering() {
        // Swapping two records *and* their hashes keeps each pairwise
        // (entry, hash) association intact, but breaks the prev-links on
        // both sides of the swap.
        let mut log = AuditLog::new();
        for i in 0..5 {
            log.append(entry(i, 1, AuditVerdict::DroppedUnverified));
        }
        let mut entries: Vec<AuditEntry> = log.entries().to_vec();
        let mut hashes: Vec<[u8; 32]> = log.hashes().to_vec();
        entries.swap(1, 3);
        hashes.swap(1, 3);
        assert!(!verify_chain(&entries, &hashes));
    }

    #[test]
    fn drops_filter() {
        let mut log = AuditLog::new();
        log.append(entry(1, 3, AuditVerdict::DroppedUnverified));
        log.append(entry(2, 3, AuditVerdict::AllowedNonManual));
        log.append(entry(3, 4, AuditVerdict::DroppedUnverified));
        assert_eq!(log.drops_for(3).count(), 1);
        assert_eq!(log.drops_for(4).count(), 1);
        assert_eq!(log.drops_for(5).count(), 0);
    }

    #[test]
    fn from_parts_restores_and_rejects_tampering() {
        let mut log = AuditLog::new();
        for i in 0..4 {
            log.append(entry(i, 1, AuditVerdict::AllowedManualVerified));
        }
        let entries = log.entries().to_vec();
        let hashes = log.hashes().to_vec();

        // A faithful export restores and the chain still extends.
        let mut restored = AuditLog::from_parts(entries.clone(), hashes.clone()).unwrap();
        assert_eq!(restored.head(), log.head());
        restored.append(entry(9, 1, AuditVerdict::DroppedUnverified));
        log.append(entry(9, 1, AuditVerdict::DroppedUnverified));
        assert_eq!(restored.head(), log.head());
        assert!(restored.verify());

        // A tampered export must not produce a log.
        let mut bad = entries.clone();
        bad[2].verdict = AuditVerdict::LockedOut;
        assert!(AuditLog::from_parts(bad, hashes.clone()).is_none());
        assert!(AuditLog::from_parts(entries[..3].to_vec(), hashes).is_none());
    }

    #[test]
    fn degraded_mode_verdicts_take_next_codes() {
        // Codes 8/9 extend the documented encoding without disturbing
        // the pinned golden vectors for 0..=7.
        let enter = AuditEntry {
            ts: SimTime::from_secs(1),
            device: AUDIT_PROXY_DEVICE,
            class: EventClass::Control,
            verdict: AuditVerdict::DegradedModeEntered,
        };
        let exit = AuditEntry {
            ts: SimTime::from_secs(2),
            device: AUDIT_PROXY_DEVICE,
            class: EventClass::Control,
            verdict: AuditVerdict::DegradedModeExited,
        };
        let mut log = AuditLog::new();
        log.append(enter);
        log.append(exit);
        assert!(log.verify());
        let mut other = AuditLog::new();
        other.append(AuditEntry {
            verdict: AuditVerdict::DegradedModeExited,
            ..log.entries()[0].clone()
        });
        assert_ne!(log.hashes()[0], other.hashes()[0]);
    }

    #[test]
    fn empty_log() {
        let log = AuditLog::new();
        assert!(log.verify());
        assert!(log.is_empty());
        assert_eq!(log.head(), None);
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn golden_chain_hashes_are_pinned() {
        // Golden vectors computed independently (Python hashlib) from the
        // documented record layout: ts µs (8, BE) | device (2, BE) |
        // class (1) | verdict (1) | FNV-1a-32 of bytes 0..12 (4, BE),
        // chained as SHA-256(prev || record) from b"fiat-audit-genesis".
        // A change to the encoding or the chain breaks this test — bump
        // the vectors only on a deliberate format change.
        let e1 = AuditEntry {
            ts: SimTime::from_secs(1),
            device: 7,
            class: EventClass::Manual,
            verdict: AuditVerdict::DroppedUnverified,
        };
        let e2 = AuditEntry {
            ts: SimTime::from_secs(2),
            device: 7,
            class: EventClass::Control,
            verdict: AuditVerdict::AllowedNonManual,
        };
        assert_eq!(hex(&e1.encode()), "00000000000f424000070202ad0d7503");
        assert_eq!(hex(&e2.encode()), "00000000001e84800007000000eb04ae");

        let mut log = AuditLog::new();
        log.append(e1);
        assert_eq!(
            hex(&log.head().unwrap()),
            "7d4ad8078ba7ed8d2a38da40f1a0c5c6ff71b617f7557b1e064c1db2dc61f6c9"
        );
        log.append(e2);
        assert_eq!(
            hex(&log.head().unwrap()),
            "f390779bf447069fc045fd0dbc8102481010c136974ce547a97402287bc59b88"
        );
        assert!(log.verify());
    }

    #[test]
    fn encode_uses_all_sixteen_bytes() {
        // The checksum tail must depend on the header: entries differing
        // in any field produce different trailing bytes, and no entry
        // leaves them zero.
        let a = entry(1, 0, AuditVerdict::DroppedUnverified).encode();
        let b = entry(1, 1, AuditVerdict::DroppedUnverified).encode();
        let c = entry(1, 0, AuditVerdict::LockedOut).encode();
        assert_ne!(a[12..], b[12..]);
        assert_ne!(a[12..], c[12..]);
        assert_ne!(a[12..], [0u8; 4]);
    }
}
