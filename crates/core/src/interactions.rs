//! Device-to-device interaction rules (§7 "Complex Scenarios").
//!
//! Some IoT devices command others — Alexa turns on the smart light. The
//! light's inbound command is manual-shaped but no phone was touched, so
//! plain FIAT would drop it. The paper proposes allow rules forming a
//! **directed acyclic graph** over devices: an edge `A → B` means
//! "unpredictable traffic toward B is allowed while A has a recently
//! authorized event". Acyclicity keeps authorization grounded: every
//! permitted chain bottoms out at a device whose own event passed the
//! human check (a cycle would let two devices vouch for each other
//! forever).

use fiat_net::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

/// Error returned when an edge would break the DAG invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// Adding this edge would create a cycle.
    WouldCycle,
    /// Self-edges are meaningless.
    SelfEdge,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::WouldCycle => write!(f, "edge would create an authorization cycle"),
            GraphError::SelfEdge => write!(f, "self-edges are not allowed"),
        }
    }
}

/// The interaction DAG plus the runtime state needed to evaluate it:
/// which trigger devices were recently authorized.
#[derive(Debug, Default)]
pub struct InteractionGraph {
    /// Edges trigger → set of targets.
    edges: HashMap<u16, HashSet<u16>>,
    /// Last time each device had an *authorized* event (manual verified
    /// or cascaded).
    authorized_at: HashMap<u16, SimTime>,
    /// How long a trigger authorization covers downstream commands.
    pub cascade_window: SimDuration,
}

impl InteractionGraph {
    /// Empty graph with the given cascade window.
    pub fn new(cascade_window: SimDuration) -> Self {
        InteractionGraph {
            cascade_window,
            ..Default::default()
        }
    }

    /// Add an allow edge `trigger → target` ("Alexa may command the
    /// light"), rejecting cycles and self-edges.
    pub fn add_edge(&mut self, trigger: u16, target: u16) -> Result<(), GraphError> {
        if trigger == target {
            return Err(GraphError::SelfEdge);
        }
        if self.reachable(target, trigger) {
            return Err(GraphError::WouldCycle);
        }
        self.edges.entry(trigger).or_default().insert(target);
        Ok(())
    }

    /// Whether `to` is reachable from `from` along edges.
    fn reachable(&self, from: u16, to: u16) -> bool {
        if from == to {
            return true;
        }
        let mut queue = VecDeque::from([from]);
        let mut seen = HashSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if let Some(next) = self.edges.get(&n) {
                for &m in next {
                    if m == to {
                        return true;
                    }
                    if seen.insert(m) {
                        queue.push_back(m);
                    }
                }
            }
        }
        false
    }

    /// Record that `device` had an authorized event at `now` (called by
    /// the proxy when it allows a verified manual event).
    pub fn record_authorized(&mut self, device: u16, now: SimTime) {
        self.authorized_at.insert(device, now);
    }

    /// Whether an unpredictable manual-looking event at `target` is
    /// covered by a cascade: some upstream trigger with an edge to
    /// `target` was authorized within the window. Chains are followed —
    /// phone → Alexa → light needs Alexa authorized, and Alexa's own
    /// authorization may itself have cascaded.
    pub fn cascade_covers(&self, target: u16, now: SimTime) -> bool {
        self.edges
            .iter()
            .filter(|(_, targets)| targets.contains(&target))
            .any(|(&trigger, _)| {
                let fresh = self
                    .authorized_at
                    .get(&trigger)
                    .is_some_and(|&t| now.since(t) <= self.cascade_window && now >= t);
                fresh || self.cascade_covers(trigger, now)
            })
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: SimDuration = SimDuration::from_secs(10);
    const ALEXA: u16 = 0;
    const LIGHT: u16 = 1;
    const BLINDS: u16 = 2;

    #[test]
    fn edge_management_and_dag_invariant() {
        let mut g = InteractionGraph::new(WINDOW);
        g.add_edge(ALEXA, LIGHT).unwrap();
        g.add_edge(LIGHT, BLINDS).unwrap();
        assert_eq!(g.edge_count(), 2);
        // Closing the cycle is rejected, directly and transitively.
        assert_eq!(g.add_edge(LIGHT, ALEXA), Err(GraphError::WouldCycle));
        assert_eq!(g.add_edge(BLINDS, ALEXA), Err(GraphError::WouldCycle));
        assert_eq!(g.add_edge(ALEXA, ALEXA), Err(GraphError::SelfEdge));
        // Duplicate edges are idempotent.
        g.add_edge(ALEXA, LIGHT).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn cascade_covers_within_window() {
        let mut g = InteractionGraph::new(WINDOW);
        g.add_edge(ALEXA, LIGHT).unwrap();
        assert!(!g.cascade_covers(LIGHT, SimTime::from_secs(100)));
        g.record_authorized(ALEXA, SimTime::from_secs(100));
        assert!(g.cascade_covers(LIGHT, SimTime::from_secs(105)));
        // Window expiry.
        assert!(!g.cascade_covers(LIGHT, SimTime::from_secs(111)));
        // The trigger itself is not covered by its own authorization.
        assert!(!g.cascade_covers(ALEXA, SimTime::from_secs(105)));
    }

    #[test]
    fn chains_cascade_transitively() {
        let mut g = InteractionGraph::new(WINDOW);
        g.add_edge(ALEXA, LIGHT).unwrap();
        g.add_edge(LIGHT, BLINDS).unwrap();
        g.record_authorized(ALEXA, SimTime::from_secs(50));
        // Alexa fresh -> light covered; light covered -> blinds covered
        // even though the light itself never recorded authorization.
        assert!(g.cascade_covers(LIGHT, SimTime::from_secs(52)));
        assert!(g.cascade_covers(BLINDS, SimTime::from_secs(52)));
    }

    #[test]
    fn no_backward_cascade() {
        let mut g = InteractionGraph::new(WINDOW);
        g.add_edge(ALEXA, LIGHT).unwrap();
        g.record_authorized(LIGHT, SimTime::from_secs(50));
        // Authorizing the target says nothing about the trigger.
        assert!(!g.cascade_covers(ALEXA, SimTime::from_secs(51)));
    }

    #[test]
    fn authorization_in_the_future_does_not_cover() {
        let mut g = InteractionGraph::new(WINDOW);
        g.add_edge(ALEXA, LIGHT).unwrap();
        g.record_authorized(ALEXA, SimTime::from_secs(100));
        assert!(!g.cascade_covers(LIGHT, SimTime::from_secs(95)));
    }
}
