//! The phone-side FIAT app (§5.3).
//!
//! An Android service that (1) detects which IoT companion app is in the
//! foreground via the accessibility service, (2) keeps a lazy IMU buffer
//! and raises the sampling rate to 250 Hz when one is, (3) extracts the 48
//! sensor features, signs them with the TEE-sealed pairing key, and (4)
//! ships the evidence to the proxy over QUIC — 0-RTT when a session
//! ticket is cached.
//!
//! Latency constants reproduce the client-side component costs measured
//! in Table 7 (app detection 61–87 ms, sensor sampling 235–259 ms, secure
//! storage access 45–56 ms, ML validation 2–3 ms) plus the QUIC
//! processing overheads that, composed with link latency, land on the
//! paper's 21.8 ms (0-RTT) / 27.5 ms (1-RTT) LAN figures.

use crate::pairing::{pair, Paired};
use crate::pipeline::AuthError;
use fiat_crypto::TeeKeystore;
use fiat_net::SimDuration;
use fiat_quic::{Client as QuicClient, ClientHello, Packet, QuicError, ServerHello, ZeroRttPacket};
use fiat_sensors::{extract_features, ImuTrace, MotionKind};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// QUIC 0-RTT processing overhead (crypto + stack, both endpoints).
pub const ZERO_RTT_PROC: SimDuration = SimDuration::from_millis(16);
/// QUIC 1-RTT processing overhead (handshake crypto costs more).
pub const ONE_RTT_PROC: SimDuration = SimDuration::from_millis(11);
/// Proxy-side ML humanness validation (Table 7: 2–3 ms).
pub const ML_VALIDATION: SimDuration = SimDuration::from_micros(2300);

/// Sampled client-side component latencies for one authorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Foreground-app detection via the accessibility service.
    pub app_detection: SimDuration,
    /// Raising the lazy buffer to 250 Hz and windowing enough samples.
    pub sensor_sampling: SimDuration,
    /// TEE keystore access for signing.
    pub secure_storage: SimDuration,
    /// Proxy-side humanness inference.
    pub ml_validation: SimDuration,
}

impl LatencyBreakdown {
    /// Sample component latencies from the Table 7 ranges.
    pub fn sample(rng: &mut StdRng) -> Self {
        LatencyBreakdown {
            app_detection: SimDuration::from_millis(rng.gen_range(60..=90)),
            sensor_sampling: SimDuration::from_millis(rng.gen_range(233..=260)),
            secure_storage: SimDuration::from_micros(rng.gen_range(45_000..=56_000)),
            ml_validation: SimDuration::from_micros(rng.gen_range(2_000..=2_900)),
        }
    }

    /// Client-side critical path to emission, *excluding* sensor sampling
    /// (§6: with a lazy buffer, sampling overlaps app use and only the
    /// 60–80 ms rate-raise is on the path, folded into app detection).
    pub fn critical_path(&self) -> SimDuration {
        self.app_detection + self.secure_storage
    }
}

/// The signed humanness evidence the app sends (§5.3: "raw sensor data —
/// or more precisely features extracted as per the ML model").
#[derive(Debug, Clone, PartialEq)]
pub struct AuthMessage {
    /// Android package name of the foreground IoT app.
    pub app_package: String,
    /// The 48 extracted IMU features.
    pub features: Vec<f64>,
    /// Ground-truth motion kind — carried for the simulation's calibrated
    /// validator only; a real deployment has no such field.
    pub truth: MotionKind,
    /// Client timestamp (microseconds), bound into the signature.
    pub ts_micros: u64,
}

impl AuthMessage {
    /// Serialize (without tag).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.app_package.len() + self.features.len() * 8);
        out.extend_from_slice(&(self.app_package.len() as u16).to_be_bytes());
        out.extend_from_slice(self.app_package.as_bytes());
        out.push(match self.truth {
            MotionKind::HumanTouch => 1,
            MotionKind::Resting => 0,
            MotionKind::SyntheticSway => 2,
        });
        out.extend_from_slice(&self.ts_micros.to_be_bytes());
        out.extend_from_slice(&(self.features.len() as u16).to_be_bytes());
        for f in &self.features {
            out.extend_from_slice(&f.to_be_bytes());
        }
        out
    }

    /// Parse a message encoded by [`AuthMessage::encode`].
    pub fn decode(bytes: &[u8]) -> Option<AuthMessage> {
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Option<&[u8]> {
            let s = bytes.get(*i..*i + n)?;
            *i += n;
            Some(s)
        };
        let name_len = u16::from_be_bytes(take(&mut i, 2)?.try_into().ok()?) as usize;
        let app_package = String::from_utf8(take(&mut i, name_len)?.to_vec()).ok()?;
        let truth = match take(&mut i, 1)?[0] {
            1 => MotionKind::HumanTouch,
            0 => MotionKind::Resting,
            2 => MotionKind::SyntheticSway,
            _ => return None,
        };
        let ts_micros = u64::from_be_bytes(take(&mut i, 8)?.try_into().ok()?);
        let n = u16::from_be_bytes(take(&mut i, 2)?.try_into().ok()?) as usize;
        let mut features = Vec::with_capacity(n);
        for _ in 0..n {
            features.push(f64::from_be_bytes(take(&mut i, 8)?.try_into().ok()?));
        }
        if i != bytes.len() {
            return None;
        }
        Some(AuthMessage {
            app_package,
            features,
            truth,
            ts_micros,
        })
    }
}

/// The FIAT client app: keystore, pairing keys, and QUIC client.
pub struct FiatApp {
    store: TeeKeystore,
    keys: Paired,
    quic: QuicClient,
    rng: StdRng,
}

impl FiatApp {
    /// Install and pair the app using the out-of-band ceremony secret.
    pub fn new(ceremony_secret: &[u8; 32], seed: u64) -> Self {
        let store = TeeKeystore::new();
        let (keys, psk) = pair(&store, ceremony_secret);
        FiatApp {
            store,
            keys,
            quic: QuicClient::new(psk),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Begin the 1-RTT handshake with the proxy.
    pub fn handshake_request(&mut self) -> ClientHello {
        let mut random = [0u8; 32];
        self.rng.fill(&mut random);
        self.quic.start_handshake(random)
    }

    /// Complete the handshake; afterwards 0-RTT tickets are cached.
    pub fn complete_handshake(&mut self, hello: &ServerHello) -> Result<(), fiat_quic::QuicError> {
        self.quic.finish_handshake(hello)
    }

    /// Whether 0-RTT evidence can be sent immediately.
    pub fn can_zero_rtt(&self) -> bool {
        self.quic.can_zero_rtt()
    }

    /// Build, sign, and 0-RTT-seal humanness evidence for the given
    /// foreground app and sensor capture.
    pub fn authorize_zero_rtt(
        &mut self,
        app_package: &str,
        imu: &ImuTrace,
        truth: MotionKind,
        ts_micros: u64,
    ) -> Result<ZeroRttPacket, fiat_quic::QuicError> {
        let payload = self.signed_payload(app_package, imu, truth, ts_micros);
        self.quic.seal_zero_rtt(&payload)
    }

    /// Same evidence over the established 1-RTT connection.
    pub fn authorize_one_rtt(
        &mut self,
        app_package: &str,
        imu: &ImuTrace,
        truth: MotionKind,
        ts_micros: u64,
    ) -> Result<fiat_quic::Packet, fiat_quic::QuicError> {
        let payload = self.signed_payload(app_package, imu, truth, ts_micros);
        self.quic.seal(&payload)
    }

    fn signed_payload(
        &mut self,
        app_package: &str,
        imu: &ImuTrace,
        truth: MotionKind,
        ts_micros: u64,
    ) -> Vec<u8> {
        let msg = AuthMessage {
            app_package: app_package.to_string(),
            features: extract_features(imu),
            truth,
            ts_micros,
        };
        let mut payload = msg.encode();
        let tag = self
            .store
            .sign(self.keys.sign_key, &payload)
            .expect("sealed sign key");
        payload.extend_from_slice(&tag);
        payload
    }

    /// Split a received payload into message bytes and tag (proxy side).
    pub fn split_payload(payload: &[u8]) -> Option<(&[u8], &[u8])> {
        if payload.len() < 32 {
            return None;
        }
        Some(payload.split_at(payload.len() - 32))
    }

    /// Sample this authorization's component latencies.
    pub fn sample_latency(&mut self) -> LatencyBreakdown {
        LatencyBreakdown::sample(&mut self.rng)
    }

    /// Drop the cached session ticket. Called when the proxy answers
    /// `StaleTicket`/`UnknownTicket`/`RetiredEpoch`: the ticket was
    /// evicted from the anti-replay store (or its whole epoch retired by
    /// key rotation), so 0-RTT is dead until a fresh handshake.
    pub fn forget_ticket(&mut self) {
        self.quic.forget_ticket();
    }

    /// Authorize with retries: re-sign and re-seal the evidence each
    /// attempt (a byte-identical resend would be rejected as a replay),
    /// back off with capped exponential delay + jitter on loss, and fall
    /// back to 1-RTT when the proxy rejects 0-RTT. `deliver` models the
    /// channel: it carries each attempt to the proxy and reports what
    /// came back (or that nothing did).
    pub fn authorize_with_retry(
        &mut self,
        app_package: &str,
        imu: &ImuTrace,
        truth: MotionKind,
        ts_micros: u64,
        policy: &RetryPolicy,
        mut deliver: impl FnMut(AuthAttempt, u32) -> DeliveryResult,
    ) -> RetryOutcome {
        let mut outcome = RetryOutcome {
            verified: false,
            attempts: 0,
            fell_back: false,
            total_backoff: SimDuration::ZERO,
        };
        for attempt in 0..policy.max_attempts {
            outcome.attempts = attempt + 1;
            let use_zero_rtt = self.can_zero_rtt() && !outcome.fell_back;
            let sealed = if use_zero_rtt {
                self.authorize_zero_rtt(app_package, imu, truth, ts_micros)
                    .map(AuthAttempt::ZeroRtt)
            } else {
                self.authorize_one_rtt(app_package, imu, truth, ts_micros)
                    .map(AuthAttempt::OneRtt)
            };
            let Ok(att) = sealed else {
                // No usable session at all (never handshaken): nothing a
                // retry can fix from here.
                return outcome;
            };
            match deliver(att, attempt) {
                DeliveryResult::Verified(v) => {
                    outcome.verified = v;
                    return outcome;
                }
                DeliveryResult::Lost => {
                    // The frame (or its ack) vanished; wait and resend.
                    if attempt + 1 < policy.max_attempts {
                        outcome.total_backoff += policy.delay(attempt, &mut self.rng);
                    }
                }
                DeliveryResult::Rejected(e) => match e {
                    // The ticket fell out of the proxy's replay store, or
                    // its whole epoch was retired by key rotation: only a
                    // fresh handshake (and a proof re-signed under the
                    // new ticket) restores 0-RTT; meanwhile the
                    // established 1-RTT keys still work.
                    AuthError::Transport(
                        QuicError::StaleTicket | QuicError::UnknownTicket | QuicError::RetiredEpoch,
                    ) => {
                        self.forget_ticket();
                        outcome.fell_back = true;
                    }
                    // Early data rejected (corrupted in flight, or the
                    // replay filter ate a duplicate): same evidence,
                    // re-signed, over 1-RTT.
                    AuthError::Transport(_) if use_zero_rtt => {
                        outcome.fell_back = true;
                    }
                    // 1-RTT rejection or an authentication failure is
                    // terminal — retrying the same evidence cannot
                    // change the verdict.
                    _ => return outcome,
                },
            }
        }
        outcome
    }
}

/// Capped exponential backoff with jitter for proof (re)delivery.
///
/// Defaults: 150 ms initial, 2 s cap, 6 attempts — worst-case cumulative
/// backoff ≈ 5.3 s, comfortably inside a 10 s quarantine deadline, and
/// six independent 5%-loss trials leave ~1.6e-8 residual failure mass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay after the first lost attempt.
    pub initial: SimDuration,
    /// Upper bound on any single delay (before jitter).
    pub cap: SimDuration,
    /// Total attempts (the first transmission counts as one).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial: SimDuration::from_millis(150),
            cap: SimDuration::from_secs(2),
            max_attempts: 6,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt + 1`: `min(initial · 2^attempt,
    /// cap)` plus uniform jitter in `[0, base/4]` so a fleet of phones
    /// that lost the same frame does not resend in lockstep.
    pub fn delay(&self, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let base = self
            .initial
            .as_micros()
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.cap.as_micros());
        let jitter = if base == 0 {
            0
        } else {
            rng.gen_range(0..=base / 4)
        };
        SimDuration::from_micros(base + jitter)
    }
}

/// One sealed delivery attempt, 0-RTT or fallback 1-RTT.
#[derive(Debug, Clone)]
pub enum AuthAttempt {
    /// Early data under a cached session ticket.
    ZeroRtt(ZeroRttPacket),
    /// Over the established 1-RTT connection.
    OneRtt(Packet),
}

/// What the channel reported back for one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryResult {
    /// The proxy processed the proof; the bool is its humanness verdict.
    Verified(bool),
    /// The frame (or its acknowledgement) never arrived.
    Lost,
    /// The proxy received but rejected the frame.
    Rejected(AuthError),
}

/// Summary of an [`FiatApp::authorize_with_retry`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Whether the proxy verified humanness.
    pub verified: bool,
    /// Attempts spent (including the successful one).
    pub attempts: u32,
    /// Whether the client abandoned 0-RTT for the 1-RTT fallback.
    pub fell_back: bool,
    /// Total backoff the policy imposed across lost attempts.
    pub total_backoff: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_roundtrip() {
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 400, 0);
        let msg = AuthMessage {
            app_package: "com.google.android.apps.chromecast.app".into(),
            features: extract_features(&imu),
            truth: MotionKind::HumanTouch,
            ts_micros: 123_456_789,
        };
        let bytes = msg.encode();
        let back = AuthMessage::decode(&bytes).unwrap();
        assert_eq!(back, msg);
        assert_eq!(back.features.len(), 48);
    }

    #[test]
    fn decode_rejects_garbage_and_truncation() {
        let msg = AuthMessage {
            app_package: "a".into(),
            features: vec![1.0, 2.0],
            truth: MotionKind::Resting,
            ts_micros: 0,
        };
        let bytes = msg.encode();
        assert!(AuthMessage::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(AuthMessage::decode(&[]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(AuthMessage::decode(&extra).is_none());
        let mut bad_truth = bytes;
        bad_truth[3] = 9; // truth byte after 2-byte len + 1-byte name
        assert!(AuthMessage::decode(&bad_truth).is_none());
    }

    #[test]
    fn latency_samples_within_table7_ranges() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let l = LatencyBreakdown::sample(&mut rng);
            assert!(l.app_detection >= SimDuration::from_millis(60));
            assert!(l.app_detection <= SimDuration::from_millis(90));
            assert!(l.sensor_sampling >= SimDuration::from_millis(233));
            assert!(l.sensor_sampling <= SimDuration::from_millis(260));
            assert!(l.secure_storage >= SimDuration::from_millis(45));
            assert!(l.secure_storage <= SimDuration::from_millis(56));
            assert!(l.ml_validation >= SimDuration::from_millis(2));
            assert!(l.ml_validation <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn critical_path_excludes_sensor_sampling() {
        let l = LatencyBreakdown {
            app_detection: SimDuration::from_millis(70),
            sensor_sampling: SimDuration::from_millis(250),
            secure_storage: SimDuration::from_millis(50),
            ml_validation: SimDuration::from_millis(2),
        };
        assert_eq!(l.critical_path(), SimDuration::from_millis(120));
    }

    #[test]
    fn signed_payload_has_trailing_tag() {
        let mut app = FiatApp::new(&[9u8; 32], 0);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 400, 1);
        let payload = app.signed_payload("com.wyze.app", &imu, MotionKind::HumanTouch, 42);
        let (msg_bytes, tag) = FiatApp::split_payload(&payload).unwrap();
        assert_eq!(tag.len(), 32);
        let msg = AuthMessage::decode(msg_bytes).unwrap();
        assert_eq!(msg.app_package, "com.wyze.app");
        // Verifies under the same ceremony secret.
        let store = TeeKeystore::new();
        let (keys, _) = pair(&store, &[9u8; 32]);
        assert!(store.verify(keys.sign_key, msg_bytes, tag).unwrap());
        // And fails under a different ceremony.
        let other = TeeKeystore::new();
        let (okeys, _) = pair(&other, &[8u8; 32]);
        assert!(!other.verify(okeys.sign_key, msg_bytes, tag).unwrap());
    }

    #[test]
    fn zero_rtt_requires_prior_handshake() {
        let mut app = FiatApp::new(&[1u8; 32], 0);
        assert!(!app.can_zero_rtt());
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 400, 2);
        assert!(app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 0)
            .is_err());
    }

    // ---- retry / fallback resilience -----------------------------------

    use crate::pipeline::{FiatProxy, ProxyConfig};
    use fiat_net::SimTime;
    use fiat_sensors::HumannessValidator;

    const SECRET: [u8; 32] = [0x42; 32];

    fn paired_app_and_proxy(seed: u64) -> (FiatApp, FiatProxy) {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        let mut app = FiatApp::new(&SECRET, seed);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        (app, proxy)
    }

    #[test]
    fn retry_policy_delay_is_capped_exponential_with_bounded_jitter() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(0);
        for attempt in 0..12u32 {
            let base = (150_000u64 << attempt.min(32)).min(2_000_000);
            for _ in 0..50 {
                let d = policy.delay(attempt, &mut rng).as_micros();
                assert!(d >= base, "attempt {attempt}: {d} < {base}");
                assert!(d <= base + base / 4, "attempt {attempt}: {d} too jittery");
            }
        }
        // Same seed, same delays: the backoff schedule is deterministic.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for attempt in 0..6 {
            assert_eq!(policy.delay(attempt, &mut a), policy.delay(attempt, &mut b));
        }
    }

    #[test]
    fn retry_resends_fresh_frames_until_delivered() {
        let (mut app, mut proxy) = paired_app_and_proxy(3);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 5);
        let mut tries = 0u32;
        let policy = RetryPolicy::default();
        let outcome = app.authorize_with_retry(
            "app",
            &imu,
            MotionKind::HumanTouch,
            1_000,
            &policy,
            |att, _| {
                tries += 1;
                let AuthAttempt::ZeroRtt(z) = att else {
                    panic!("ticket cached: all attempts should ride 0-RTT");
                };
                match tries {
                    // Frame lost outright.
                    1 => DeliveryResult::Lost,
                    // Delivered, but the acknowledgement is lost — the
                    // proxy has verified once already; the client must
                    // NOT resend those bytes (replay) but a re-signed
                    // fresh frame.
                    2 => {
                        proxy.on_auth_zero_rtt(&z, SimTime::from_secs(1)).unwrap();
                        DeliveryResult::Lost
                    }
                    _ => match proxy.on_auth_zero_rtt(&z, SimTime::from_secs(2)) {
                        Ok(v) => DeliveryResult::Verified(v),
                        Err(e) => DeliveryResult::Rejected(e),
                    },
                }
            },
        );
        assert!(outcome.verified);
        assert_eq!(outcome.attempts, 3);
        assert!(!outcome.fell_back);
        // Two lost attempts: backoff covers at least 150 + 300 ms.
        assert!(outcome.total_backoff >= SimDuration::from_millis(450));
        assert!(outcome.total_backoff <= SimDuration::from_micros(562_500));
    }

    #[test]
    fn stale_ticket_rejection_falls_back_to_one_rtt() {
        let (mut app, mut proxy) = paired_app_and_proxy(4);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 6);
        let policy = RetryPolicy::default();
        let outcome = app.authorize_with_retry(
            "app",
            &imu,
            MotionKind::HumanTouch,
            2_000,
            &policy,
            |att, attempt| match (attempt, att) {
                // The proxy evicted our ticket from its replay store.
                (0, AuthAttempt::ZeroRtt(_)) => {
                    DeliveryResult::Rejected(AuthError::Transport(QuicError::StaleTicket))
                }
                // The fallback must arrive re-signed over 1-RTT.
                (_, AuthAttempt::OneRtt(p)) => {
                    match proxy.on_auth_one_rtt(&p, SimTime::from_secs(3)) {
                        Ok(v) => DeliveryResult::Verified(v),
                        Err(e) => DeliveryResult::Rejected(e),
                    }
                }
                (n, AuthAttempt::ZeroRtt(_)) => panic!("attempt {n} still used 0-RTT"),
            },
        );
        assert!(outcome.verified);
        assert_eq!(outcome.attempts, 2);
        assert!(outcome.fell_back);
        // The dead ticket is gone until the next handshake.
        assert!(!app.can_zero_rtt());
        assert_eq!(outcome.total_backoff, SimDuration::ZERO);
    }

    #[test]
    fn retired_epoch_rejection_falls_back_to_one_rtt() {
        let (mut app, mut proxy) = paired_app_and_proxy(9);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 6);
        let policy = RetryPolicy::default();
        // The control plane rotated the ticket epoch and retired the old
        // one after the app's handshake: its cached 0-RTT ticket is dead,
        // but the auth must degrade to 1-RTT, not fail.
        proxy.rotate_ticket_epoch();
        proxy.retire_ticket_epochs_below(1);
        let outcome = app.authorize_with_retry(
            "app",
            &imu,
            MotionKind::HumanTouch,
            2_000,
            &policy,
            |att, _| match att {
                AuthAttempt::ZeroRtt(z) => {
                    match proxy.on_auth_zero_rtt(&z, SimTime::from_secs(2)) {
                        Ok(v) => DeliveryResult::Verified(v),
                        Err(e) => DeliveryResult::Rejected(e),
                    }
                }
                AuthAttempt::OneRtt(p) => match proxy.on_auth_one_rtt(&p, SimTime::from_secs(3)) {
                    Ok(v) => DeliveryResult::Verified(v),
                    Err(e) => DeliveryResult::Rejected(e),
                },
            },
        );
        assert!(outcome.verified);
        assert_eq!(outcome.attempts, 2);
        assert!(outcome.fell_back);
        // The retired ticket is gone until the next handshake.
        assert!(!app.can_zero_rtt());
    }

    #[test]
    fn terminal_rejection_stops_retrying() {
        let (mut app, _proxy) = paired_app_and_proxy(5);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 7);
        let policy = RetryPolicy::default();
        let mut tries = 0u32;
        let outcome =
            app.authorize_with_retry("app", &imu, MotionKind::HumanTouch, 0, &policy, |_, _| {
                tries += 1;
                DeliveryResult::Rejected(AuthError::BadSignature)
            });
        assert!(!outcome.verified);
        assert_eq!(tries, 1);
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn retry_without_any_session_gives_up_without_delivering() {
        let mut app = FiatApp::new(&SECRET, 6);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 8);
        let policy = RetryPolicy::default();
        let outcome =
            app.authorize_with_retry("app", &imu, MotionKind::HumanTouch, 0, &policy, |_, _| {
                panic!("nothing sealable: deliver must never run")
            });
        assert!(!outcome.verified);
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn exhausted_retries_report_failure() {
        let (mut app, _proxy) = paired_app_and_proxy(7);
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 9);
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let outcome =
            app.authorize_with_retry("app", &imu, MotionKind::HumanTouch, 0, &policy, |_, _| {
                DeliveryResult::Lost
            });
        assert!(!outcome.verified);
        assert_eq!(outcome.attempts, 3);
        // No backoff after the final attempt — only between attempts.
        assert!(outcome.total_backoff >= SimDuration::from_millis(450));
        assert!(outcome.total_backoff <= SimDuration::from_micros(562_500));
    }
}
