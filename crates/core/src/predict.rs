//! The §2.1 predictability heuristic.
//!
//! Packets are bucketed by flow key ([`FlowDef::Classic`] 6-tuple or
//! [`FlowDef::PortLess`]); within a bucket, the inter-arrival time of each
//! consecutive packet pair is computed. If an inter-arrival matches any
//! previously computed inter-arrival for that bucket, *all packets
//! associated with that inter-arrival — previous or future — are
//! predictable*. Real traffic jitters by tens of milliseconds, so
//! intervals are quantized into tolerance bins before matching.

use fiat_net::{
    DnsTable, FlowDef, InternedFlowKey, PacketRecord, SimDuration, SimTime, TrafficClass,
};
use fiat_telemetry::{Counter, MetricRegistry};
use std::collections::{HashMap, HashSet};

/// Default interval quantization bin: one microsecond, i.e. exact
/// matching at capture resolution — what the paper's heuristic does.
/// Timer-driven IoT control traffic re-fires at coarse scheduler ticks,
/// so its inter-arrival values repeat exactly; the irregular gaps inside
/// command bursts are effectively continuous and (almost) never do.
/// Coarser bins trade false "predictable" matches for jitter tolerance —
/// the `ablation_flowdef` bench sweeps this.
pub const DEFAULT_TOLERANCE: SimDuration = SimDuration::from_micros(1);

/// Offline analyzer: marks each packet of a trace predictable or not.
#[derive(Debug, Clone)]
pub struct PredictabilityEngine {
    /// Flow definition for bucketing.
    pub def: FlowDef,
    /// Interval quantization bin.
    pub tolerance: SimDuration,
}

impl PredictabilityEngine {
    /// Engine with the given flow definition and default tolerance.
    pub fn new(def: FlowDef) -> Self {
        PredictabilityEngine {
            def,
            tolerance: DEFAULT_TOLERANCE,
        }
    }

    /// Override the tolerance bin (for the gap-threshold ablation).
    pub fn with_tolerance(mut self, tolerance: SimDuration) -> Self {
        assert!(tolerance > SimDuration::ZERO, "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    pub(crate) fn bin(&self, d: SimDuration) -> u64 {
        d.as_micros() / self.tolerance.as_micros().max(1)
    }

    /// Analyze packets (with the trace's DNS table), returning one flag
    /// per packet: `true` = predictable.
    pub fn analyze(&self, packets: &[PacketRecord], dns: &DnsTable) -> Vec<bool> {
        // Bucket id -> list of (packet index, timestamp), in trace order.
        // Keys are interned ([`InternedFlowKey`]), so bucketing allocates
        // only for the bucket vectors, never per packet for the key.
        let mut buckets: HashMap<(u16, InternedFlowKey), Vec<(usize, SimTime)>> = HashMap::new();
        for (i, p) in packets.iter().enumerate() {
            let key = (p.device, InternedFlowKey::of(self.def, p, dns));
            buckets.entry(key).or_default().push((i, p.ts));
        }

        let mut predictable = vec![false; packets.len()];
        for members in buckets.values() {
            // interval bin -> packet indices associated with it.
            let mut by_bin: HashMap<u64, Vec<usize>> = HashMap::new();
            for w in members.windows(2) {
                let (i_prev, t_prev) = w[0];
                let (i_cur, t_cur) = w[1];
                let b = self.bin(t_cur - t_prev);
                let entry = by_bin.entry(b).or_default();
                entry.push(i_prev);
                entry.push(i_cur);
            }
            for indices in by_bin.values() {
                // An interval value seen at least twice (i.e. >= 3 distinct
                // packets involved across >= 2 pairs) is a repeat.
                if indices.len() >= 4 {
                    for &i in indices {
                        predictable[i] = true;
                    }
                }
            }
        }
        predictable
    }

    /// Analyze and summarize per device and traffic class.
    pub fn report(&self, packets: &[PacketRecord], dns: &DnsTable) -> PredictabilityReport {
        let flags = self.analyze(packets, dns);
        let mut per_device: HashMap<u16, ClassCounts> = HashMap::new();
        for (p, &f) in packets.iter().zip(&flags) {
            per_device.entry(p.device).or_default().add(p.label, f);
        }
        PredictabilityReport { per_device, flags }
    }

    /// For Figure 1(c): for each predictable bucket, the maximum matched
    /// interval, weighted by the bucket's predictable packet count.
    /// Returns `(max_interval, n_predictable_packets)` per bucket.
    pub fn max_intervals(
        &self,
        packets: &[PacketRecord],
        dns: &DnsTable,
    ) -> Vec<(SimDuration, usize)> {
        let mut buckets: HashMap<(u16, InternedFlowKey), Vec<SimTime>> = HashMap::new();
        for p in packets {
            buckets
                .entry((p.device, InternedFlowKey::of(self.def, p, dns)))
                .or_default()
                .push(p.ts);
        }
        let mut out = Vec::new();
        for times in buckets.values() {
            let mut by_bin: HashMap<u64, (SimDuration, HashSet<usize>)> = HashMap::new();
            for (k, w) in times.windows(2).enumerate() {
                let iv = w[1] - w[0];
                let e = by_bin.entry(self.bin(iv)).or_insert((iv, HashSet::new()));
                e.0 = e.0.max(iv);
                e.1.insert(k);
                e.1.insert(k + 1);
            }
            let mut max_iv = SimDuration::ZERO;
            let mut n = HashSet::new();
            for (iv, idx) in by_bin.values() {
                if idx.len() >= 3 {
                    max_iv = max_iv.max(*iv);
                    n.extend(idx.iter().copied());
                }
            }
            if !n.is_empty() {
                out.push((max_iv, n.len()));
            }
        }
        out
    }
}

/// Per-class predictable/total counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: [(u64, u64); 3], // (predictable, total) per class
}

impl ClassCounts {
    fn class_idx(c: TrafficClass) -> usize {
        match c {
            TrafficClass::Control => 0,
            TrafficClass::Automated => 1,
            TrafficClass::Manual => 2,
        }
    }

    fn add(&mut self, class: TrafficClass, predictable: bool) {
        let (p, t) = &mut self.counts[Self::class_idx(class)];
        *t += 1;
        if predictable {
            *p += 1;
        }
    }

    /// Fraction of packets of `class` that were predictable (0 if none).
    pub fn fraction(&self, class: TrafficClass) -> f64 {
        let (p, t) = self.counts[Self::class_idx(class)];
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }

    /// Total packets of `class`.
    pub fn total(&self, class: TrafficClass) -> u64 {
        self.counts[Self::class_idx(class)].1
    }

    /// Overall predictable fraction across classes.
    pub fn overall_fraction(&self) -> f64 {
        let p: u64 = self.counts.iter().map(|(p, _)| p).sum();
        let t: u64 = self.counts.iter().map(|(_, t)| t).sum();
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }
}

/// Summary of a predictability analysis.
#[derive(Debug, Clone)]
pub struct PredictabilityReport {
    /// Per-device class counters.
    pub per_device: HashMap<u16, ClassCounts>,
    /// The raw per-packet flags (aligned with the analyzed slice).
    pub flags: Vec<bool>,
}

impl PredictabilityReport {
    /// Predictable fraction for one device and class.
    pub fn fraction(&self, device: u16, class: TrafficClass) -> f64 {
        self.per_device
            .get(&device)
            .map_or(0.0, |c| c.fraction(class))
    }

    /// Overall predictable fraction for one device.
    pub fn device_fraction(&self, device: u16) -> f64 {
        self.per_device
            .get(&device)
            .map_or(0.0, |c| c.overall_fraction())
    }
}

/// Minimum repeating interval for a bucket to become an allow rule.
///
/// Rules target periodic *control* flows, whose periods run from ~10 s to
/// 10 min (Fig 1c). A single command burst also repeats an interval — a
/// camera's 33 ms video cadence — but admitting it as a rule would let a
/// later unauthorized command stream straight through the proxy, so
/// sub-second repeats never make rules (they still count as predictable
/// in the offline analysis, as in Fig 2).
pub const MIN_RULE_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Telemetry handles for rule learning and enforcement lookups. The
/// default is a set of detached counters (not owned by any registry), so
/// uninstrumented callers pay one relaxed atomic op and nothing else.
#[derive(Debug, Clone, Default)]
pub struct RuleTelemetry {
    /// Bootstrap flow buckets admitted as rules.
    pub buckets_learned: Counter,
    /// Bootstrap flow buckets examined but rejected (no qualifying
    /// repeating interval).
    pub buckets_rejected: Counter,
    /// Enforcement-time lookups that hit a rule.
    pub match_hits: Counter,
    /// Enforcement-time lookups that missed.
    pub match_misses: Counter,
}

impl RuleTelemetry {
    /// Handles registered in `registry` under the `fiat_rules_*` names.
    pub fn registered(registry: &MetricRegistry) -> Self {
        registry.describe(
            "fiat_rules_buckets_total",
            "Bootstrap flow buckets examined for rules, by outcome.",
        );
        registry.describe(
            "fiat_rules_match_total",
            "Rule-table lookups at enforcement time, by outcome.",
        );
        RuleTelemetry {
            buckets_learned: registry
                .counter("fiat_rules_buckets_total", &[("outcome", "learned")]),
            buckets_rejected: registry
                .counter("fiat_rules_buckets_total", &[("outcome", "rejected")]),
            match_hits: registry.counter("fiat_rules_match_total", &[("outcome", "hit")]),
            match_misses: registry.counter("fiat_rules_match_total", &[("outcome", "miss")]),
        }
    }
}

/// Exported state of one evicted-rule ghost (see [`RuleTable`]): enough
/// to resume the re-learn pattern match after a snapshot restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhostState {
    /// Device the evicted rule belonged to.
    pub device: u16,
    /// The evicted flow key.
    pub key: InternedFlowKey,
    /// Timestamp of the last miss on this key, if any.
    pub last_ts: Option<SimTime>,
    /// Quantized inter-arrival bin of the last miss pair, if any.
    pub last_bin: Option<u64>,
}

/// Per-ghost re-learn progress: a rule evicted by the LRU cap leaves a
/// ghost behind, and the ghost re-promotes to a rule when the flow
/// repeats a qualifying interval again — exactly the evidence the
/// bootstrap learner demanded.
#[derive(Debug, Clone, Copy)]
struct Ghost {
    last_ts: Option<SimTime>,
    last_bin: Option<u64>,
    stamp: u64,
}

/// The enforcement-time rule table (§5.4 "Rules Creation"): flows observed
/// as predictable during the bootstrap window become allow rules; a rule
/// hit at enforcement time means "predictable, allow".
///
/// ## Bounded mode (LRU + ghost re-learn)
///
/// With [`RuleTable::set_capacity`] the table holds at most `cap` rules:
/// inserting past the cap evicts the least-recently-*matched* rule
/// (deterministically — every touch takes a unique monotonic stamp, so
/// the minimum is unambiguous). An evicted rule is not forgotten
/// outright: it becomes a *ghost*, and if the flow keeps repeating a
/// qualifying interval (two consecutive inter-arrivals in the same
/// tolerance bin, at least [`MIN_RULE_INTERVAL`] long — the same
/// evidence bootstrap learning demanded) it re-promotes to a live rule.
/// Eviction therefore costs an evicted periodic flow a couple of
/// event-path traversals (latency), never a false drop, while a hostile
/// device cycling fresh keys can never grow the table past the cap —
/// fresh keys were never learned, so they have no ghost and no re-learn
/// path. Ghosts are capped at the same size and evicted the same way.
#[derive(Debug, Clone, Default)]
pub struct RuleTable {
    rules: HashMap<(u16, InternedFlowKey), u64>,
    ghosts: HashMap<(u16, InternedFlowKey), Ghost>,
    stamp: u64,
    cap: Option<usize>,
    /// Interval quantization bin for ghost re-learn, µs (0 acts as 1).
    tolerance_us: u64,
    telemetry: RuleTelemetry,
}

impl RuleTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learn rules from a bootstrap capture: a bucket becomes a rule when
    /// it repeats an interval of at least [`MIN_RULE_INTERVAL`].
    pub fn learn(
        engine: &PredictabilityEngine,
        packets: &[PacketRecord],
        dns: &DnsTable,
    ) -> RuleTable {
        Self::learn_instrumented(engine, packets, dns, RuleTelemetry::default())
    }

    /// [`RuleTable::learn`], reporting bucket outcomes and subsequent
    /// lookup hits/misses through `telemetry`.
    pub fn learn_instrumented(
        engine: &PredictabilityEngine,
        packets: &[PacketRecord],
        dns: &DnsTable,
        telemetry: RuleTelemetry,
    ) -> RuleTable {
        let mut buckets: HashMap<(u16, InternedFlowKey), Vec<SimTime>> = HashMap::new();
        for p in packets {
            buckets
                .entry((p.device, InternedFlowKey::of(engine.def, p, dns)))
                .or_default()
                .push(p.ts);
        }
        // Qualifying buckets get their LRU stamps in (last-seen, key)
        // order, so "least recently matched" is well-defined — and
        // deterministic — from the moment the table is born.
        let mut qualifying: Vec<(SimTime, (u16, InternedFlowKey))> = Vec::new();
        for (key, times) in buckets {
            let mut counts: HashMap<u64, (SimDuration, u32)> = HashMap::new();
            for w in times.windows(2) {
                let iv = w[1] - w[0];
                let e = counts.entry(engine.bin(iv)).or_insert((iv, 0));
                e.1 += 1;
            }
            if counts
                .values()
                .any(|(iv, n)| *n >= 2 && *iv >= MIN_RULE_INTERVAL)
            {
                telemetry.buckets_learned.inc();
                qualifying.push((*times.last().expect("qualifying bucket nonempty"), key));
            } else {
                telemetry.buckets_rejected.inc();
            }
        }
        qualifying.sort();
        let mut table = RuleTable {
            tolerance_us: engine.tolerance.as_micros(),
            telemetry,
            ..RuleTable::default()
        };
        for (_, key) in qualifying {
            table.stamp += 1;
            table.rules.insert(key, table.stamp);
        }
        table
    }

    /// Whether a packet hits a learned rule, without touching LRU or
    /// ghost state (read-only observers; the enforcement path uses
    /// [`RuleTable::matches_touch`]). The lookup key is interned
    /// ([`InternedFlowKey`]) and never touches the heap. Rules only match
    /// against the same `DnsTable` (interner) they were learned with.
    pub fn matches(&self, def: FlowDef, pkt: &PacketRecord, dns: &DnsTable) -> bool {
        let hit = self
            .rules
            .contains_key(&(pkt.device, InternedFlowKey::of(def, pkt, dns)));
        if hit {
            self.telemetry.match_hits.inc();
        } else {
            self.telemetry.match_misses.inc();
        }
        hit
    }

    /// [`RuleTable::matches`] for the enforcement hot path: a hit
    /// refreshes the rule's LRU stamp; a miss advances the key's ghost
    /// (if the rule was evicted) and re-promotes it once the flow repeats
    /// a qualifying interval — the packet completing the pattern already
    /// counts as a hit.
    pub fn matches_touch(&mut self, def: FlowDef, pkt: &PacketRecord, dns: &DnsTable) -> bool {
        let key = (pkt.device, InternedFlowKey::of(def, pkt, dns));
        if let Some(stamp) = self.rules.get_mut(&key) {
            self.stamp += 1;
            *stamp = self.stamp;
            self.telemetry.match_hits.inc();
            return true;
        }
        if self.advance_ghost(key, pkt.ts) {
            self.telemetry.match_hits.inc();
            return true;
        }
        self.telemetry.match_misses.inc();
        false
    }

    /// Advance the re-learn pattern for an evicted key; `true` when this
    /// packet completed the qualifying repeat and the rule was promoted
    /// back into the table.
    fn advance_ghost(&mut self, key: (u16, InternedFlowKey), ts: SimTime) -> bool {
        let Some(g) = self.ghosts.get_mut(&key) else {
            return false;
        };
        self.stamp += 1;
        g.stamp = self.stamp;
        let mut promote = false;
        if let Some(prev) = g.last_ts {
            let iv = ts - prev;
            let bin = iv.as_micros() / self.tolerance_us.max(1);
            promote = g.last_bin == Some(bin) && iv >= MIN_RULE_INTERVAL;
            g.last_bin = Some(bin);
        }
        g.last_ts = Some(ts);
        if promote {
            self.ghosts.remove(&key);
            self.insert(key.0, key.1);
        }
        promote
    }

    /// Number of live rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of evicted-rule ghosts currently tracked.
    pub fn ghost_len(&self) -> usize {
        self.ghosts.len()
    }

    /// Cap the table (and its ghost set) at `cap` entries, evicting
    /// least-recently-matched rules immediately if already over. `None`
    /// restores the unbounded historical behavior.
    pub fn set_capacity(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.evict_rules_over_cap();
        self.evict_ghosts_over_cap();
    }

    /// Configured rule cap.
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Override the ghost re-learn tolerance bin (defaults to the learn
    /// engine's; restore paths re-supply it from config).
    pub fn set_tolerance(&mut self, tolerance: SimDuration) {
        self.tolerance_us = tolerance.as_micros();
    }

    fn evict_rules_over_cap(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.rules.len() > cap {
            // Unique stamps make the minimum unambiguous, so eviction is
            // deterministic regardless of hash iteration order.
            let victim = *self
                .rules
                .iter()
                .min_by_key(|(_, s)| **s)
                .expect("nonempty over-cap table")
                .0;
            self.rules.remove(&victim);
            self.stamp += 1;
            self.ghosts.insert(
                victim,
                Ghost {
                    last_ts: None,
                    last_bin: None,
                    stamp: self.stamp,
                },
            );
            self.evict_ghosts_over_cap();
        }
    }

    fn evict_ghosts_over_cap(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.ghosts.len() > cap {
            let victim = *self
                .ghosts
                .iter()
                .min_by_key(|(_, g)| g.stamp)
                .expect("nonempty over-cap ghosts")
                .0;
            self.ghosts.remove(&victim);
        }
    }

    /// Insert a rule directly (used for the §7 DAG-style allow rules,
    /// e.g. "always allow Alexa → smart light"). Intern the key (via
    /// `FlowKey::intern`) against the same `DnsTable` later lookups use.
    /// In bounded mode an over-cap insert evicts the least-recently-
    /// matched rule into a ghost.
    pub fn insert(&mut self, device: u16, key: InternedFlowKey) {
        let k = (device, key);
        self.stamp += 1;
        self.rules.insert(k, self.stamp);
        self.ghosts.remove(&k);
        self.evict_rules_over_cap();
    }

    /// Restore one ghost (snapshot restore path); appended in call order,
    /// so feeding [`RuleTable::export_ghosts`] back preserves the
    /// eviction order.
    pub fn insert_ghost(&mut self, g: GhostState) {
        self.stamp += 1;
        self.ghosts.insert(
            (g.device, g.key),
            Ghost {
                last_ts: g.last_ts,
                last_bin: g.last_bin,
                stamp: self.stamp,
            },
        );
        self.evict_ghosts_over_cap();
    }

    /// Empty table reporting lookup outcomes through `telemetry` — the
    /// restore half of a snapshot, where rules are re-inserted rather
    /// than re-learned (re-learning would double the bucket counters).
    pub fn with_telemetry(telemetry: RuleTelemetry) -> Self {
        RuleTable {
            telemetry,
            ..RuleTable::default()
        }
    }

    /// Iterate the learned `(device, key)` rules, in arbitrary (hash)
    /// order. Callers that need determinism — e.g. a snapshot — must
    /// use [`RuleTable::export_lru`] or sort after resolving.
    pub fn iter(&self) -> impl Iterator<Item = &(u16, InternedFlowKey)> {
        self.rules.keys()
    }

    /// Live rules in LRU order, least recently matched first. Re-inserting
    /// them in this order (as snapshot restore does) reproduces the
    /// eviction order exactly, so a restored proxy evicts the same rules
    /// the uninterrupted one would.
    pub fn export_lru(&self) -> Vec<(u16, InternedFlowKey)> {
        let mut v: Vec<(u64, (u16, InternedFlowKey))> =
            self.rules.iter().map(|(k, s)| (*s, *k)).collect();
        v.sort_unstable_by_key(|(s, _)| *s);
        v.into_iter().map(|(_, k)| k).collect()
    }

    /// Evicted-rule ghosts in LRU order, least recently touched first
    /// (same restore contract as [`RuleTable::export_lru`]).
    pub fn export_ghosts(&self) -> Vec<GhostState> {
        let mut v: Vec<(u64, GhostState)> = self
            .ghosts
            .iter()
            .map(|(k, g)| {
                (
                    g.stamp,
                    GhostState {
                        device: k.0,
                        key: k.1,
                        last_ts: g.last_ts,
                        last_bin: g.last_bin,
                    },
                )
            })
            .collect();
        v.sort_unstable_by_key(|(s, _)| *s);
        v.into_iter().map(|(_, g)| g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, TcpFlags, TlsVersion, Transport};
    use std::net::Ipv4Addr;

    fn pkt(ts_ms: u64, size: u16, port: u16) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            device: 0,
            direction: Direction::FromDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: port,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size,
            label: TrafficClass::Control,
        }
    }

    #[test]
    fn periodic_flow_is_fully_predictable() {
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 1000, 100, 5000)).collect();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        assert!(flags.iter().all(|&f| f), "{flags:?}");
    }

    #[test]
    fn two_packet_flow_never_predictable() {
        // Only one interval: cannot match a previous interval.
        let packets = vec![pkt(0, 235, 5000), pkt(100, 235, 5000)];
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    fn irregular_intervals_unpredictable() {
        // Distinct intervals in distinct bins never repeat.
        let times = [0u64, 1000, 3500, 9000, 20000];
        let packets: Vec<PacketRecord> = times.iter().map(|&t| pkt(t, 100, 5000)).collect();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        assert!(flags.iter().all(|&f| !f), "{flags:?}");
    }

    #[test]
    fn jitter_within_tolerance_still_matches() {
        // Period 1000 ms with ±80 ms jitter lands in the same 250 ms bin
        // often enough that most packets are predictable.
        let times = [0u64, 1010, 2020, 3080, 4100, 5150, 6170];
        let packets: Vec<PacketRecord> = times.iter().map(|&t| pkt(t, 100, 5000)).collect();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        let frac = flags.iter().filter(|&&f| f).count() as f64 / flags.len() as f64;
        assert!(frac > 0.8, "{flags:?}");
    }

    #[test]
    fn port_churn_breaks_classic_not_portless() {
        // Same flow, but the source port changes every 2 packets.
        let packets: Vec<PacketRecord> = (0..12)
            .map(|i| pkt(i * 1000, 100, 5000 + (i / 2) as u16))
            .collect();
        let dns = DnsTable::new();
        let classic = PredictabilityEngine::new(FlowDef::Classic).analyze(&packets, &dns);
        let portless = PredictabilityEngine::new(FlowDef::PortLess).analyze(&packets, &dns);
        assert!(classic.iter().all(|&f| !f), "classic: {classic:?}");
        assert!(portless.iter().all(|&f| f), "portless: {portless:?}");
    }

    #[test]
    fn different_sizes_bucket_separately() {
        let mut packets = Vec::new();
        for i in 0..6 {
            packets.push(pkt(i * 1000, 100, 5000));
        }
        // Interleaved one-off packets of unique sizes stay unpredictable.
        packets.push(pkt(150, 999, 5000));
        packets.push(pkt(2150, 888, 5000));
        packets.sort_by_key(|p| p.ts);
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        for (p, f) in packets.iter().zip(&flags) {
            assert_eq!(*f, p.size == 100, "size {} flagged {}", p.size, f);
        }
    }

    #[test]
    fn report_aggregates_by_class() {
        let mut packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 1000, 100, 5000)).collect();
        let mut manual = pkt(2500, 777, 6000);
        manual.label = TrafficClass::Manual;
        packets.push(manual);
        packets.sort_by_key(|p| p.ts);
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let rep = eng.report(&packets, &DnsTable::new());
        assert_eq!(rep.fraction(0, TrafficClass::Control), 1.0);
        assert_eq!(rep.fraction(0, TrafficClass::Manual), 0.0);
        assert!((rep.device_fraction(0) - 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn max_intervals_reports_period() {
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 60_000, 100, 5000)).collect();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let iv = eng.max_intervals(&packets, &DnsTable::new());
        assert_eq!(iv.len(), 1);
        assert_eq!(iv[0].0, SimDuration::from_secs(60));
        assert_eq!(iv[0].1, 10);
    }

    #[test]
    fn devices_do_not_share_buckets() {
        // Identical flows on two devices are independent: 2 packets each,
        // so neither is predictable even though combined they would be.
        let mut packets = vec![pkt(0, 100, 5000), pkt(1000, 100, 5000)];
        let mut p3 = pkt(2000, 100, 5000);
        p3.device = 1;
        let mut p4 = pkt(3000, 100, 5000);
        p4.device = 1;
        packets.push(p3);
        packets.push(p4);
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let flags = eng.analyze(&packets, &DnsTable::new());
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn rule_table_learns_predictable_buckets() {
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 1000, 100, 5000)).collect();
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let rules = RuleTable::learn(&eng, &packets, &dns);
        assert_eq!(rules.len(), 1);
        // A fresh packet of the same flow hits; a different size misses.
        assert!(rules.matches(FlowDef::PortLess, &pkt(99_000, 100, 60_000), &dns));
        assert!(!rules.matches(FlowDef::PortLess, &pkt(99_000, 101, 60_000), &dns));
    }

    #[test]
    fn rule_table_empty_from_unpredictable_bootstrap() {
        let packets = vec![pkt(0, 1, 1), pkt(777, 2, 2), pkt(9999, 3, 3)];
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let rules = RuleTable::learn(&eng, &packets, &dns);
        assert!(rules.is_empty());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_rejected() {
        let _ = PredictabilityEngine::new(FlowDef::PortLess).with_tolerance(SimDuration::ZERO);
    }

    fn key_of(size: u16, dns: &DnsTable) -> InternedFlowKey {
        InternedFlowKey::of(FlowDef::PortLess, &pkt(0, size, 1), dns)
    }

    #[test]
    fn hostile_key_churn_cannot_grow_table_past_cap() {
        // The satellite-1 regression: a hostile device cycling fresh flow
        // keys — whether through direct inserts or enforcement lookups —
        // can never grow the bounded table (or its ghost set) past the
        // cap.
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 10_000, 100, 5000)).collect();
        let mut rules = RuleTable::learn(&eng, &packets, &dns);
        rules.set_capacity(Some(4));
        for i in 0..1000u64 {
            rules.insert(0, key_of(200 + (i % 50_000) as u16, &dns));
            assert!(rules.len() <= 4, "iteration {i}: {} rules", rules.len());
            assert!(rules.ghost_len() <= 4, "iteration {i}");
        }
        let mut touched = rules.clone();
        for i in 0..1000u64 {
            // Fresh keys were never learned: no rule, no ghost, no growth.
            assert!(!touched.matches_touch(
                FlowDef::PortLess,
                &pkt(i * 1000, 10_000 + (i % 50_000) as u16, 9),
                &dns
            ));
        }
        assert_eq!(touched.len(), rules.len());
        assert_eq!(touched.ghost_len(), rules.ghost_len());
    }

    #[test]
    fn evicted_rule_relearns_after_qualifying_repeat() {
        // Eviction costs an evicted periodic flow latency (two event-path
        // misses), never permanence: the qualifying repeat re-promotes it.
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 10_000, 100, 5000)).collect();
        let mut rules = RuleTable::learn(&eng, &packets, &dns);
        rules.set_capacity(Some(1));
        rules.insert(0, key_of(222, &dns)); // evicts the learned rule
        assert_eq!(rules.len(), 1);
        assert_eq!(rules.ghost_len(), 1);
        assert!(!rules.matches(FlowDef::PortLess, &pkt(100_000, 100, 9), &dns));

        // The periodic flow resumes at its 10 s cadence: the third packet
        // completes two equal intervals and hits again.
        assert!(!rules.matches_touch(FlowDef::PortLess, &pkt(200_000, 100, 9), &dns));
        assert!(!rules.matches_touch(FlowDef::PortLess, &pkt(210_000, 100, 9), &dns));
        assert!(rules.matches_touch(FlowDef::PortLess, &pkt(220_000, 100, 9), &dns));
        assert_eq!(rules.len(), 1, "cap still holds after re-promotion");
        assert!(rules.matches(FlowDef::PortLess, &pkt(230_000, 100, 9), &dns));
    }

    #[test]
    fn sub_second_repeats_never_repromote() {
        // Same guard as bootstrap learning: a command burst repeating a
        // 33 ms cadence must not resurrect an evicted rule.
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 10_000, 100, 5000)).collect();
        let mut rules = RuleTable::learn(&eng, &packets, &dns);
        rules.set_capacity(Some(1));
        rules.insert(0, key_of(222, &dns));
        for i in 0..20u64 {
            assert!(!rules.matches_touch(FlowDef::PortLess, &pkt(200_000 + i * 33, 100, 9), &dns));
        }
    }

    #[test]
    fn eviction_is_least_recently_matched() {
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let mut packets: Vec<PacketRecord> = (0..6).map(|i| pkt(i * 10_000, 100, 5000)).collect();
        packets.extend((0..6).map(|i| pkt(i * 10_000 + 500, 200, 5000)));
        packets.sort_by_key(|p| p.ts);
        let mut rules = RuleTable::learn(&eng, &packets, &dns);
        assert_eq!(rules.len(), 2);
        rules.set_capacity(Some(2));
        // Touch the size-100 rule; the size-200 rule is now LRU, so the
        // next insert evicts it and not the fresh match.
        assert!(rules.matches_touch(FlowDef::PortLess, &pkt(70_000, 100, 9), &dns));
        rules.insert(0, key_of(55, &dns));
        assert!(rules.matches(FlowDef::PortLess, &pkt(80_000, 100, 9), &dns));
        assert!(!rules.matches(FlowDef::PortLess, &pkt(80_000, 200, 9), &dns));
    }

    #[test]
    fn export_lru_round_trips_eviction_order() {
        let dns = DnsTable::new();
        let (k1, k2, k3) = (key_of(11, &dns), key_of(12, &dns), key_of(13, &dns));
        let mut rules = RuleTable::new();
        rules.insert(0, k1);
        rules.insert(0, k2);
        rules.insert(0, k3);
        rules.insert(0, k1); // refresh: k1 is now the most recent
        assert_eq!(rules.export_lru(), vec![(0, k2), (0, k3), (0, k1)]);

        // Re-inserting the export reproduces the order (restore contract).
        let mut restored = RuleTable::new();
        for (d, k) in rules.export_lru() {
            restored.insert(d, k);
        }
        assert_eq!(restored.export_lru(), rules.export_lru());
        restored.set_capacity(Some(2));
        assert_eq!(restored.export_lru(), vec![(0, k3), (0, k1)]);
        assert_eq!(
            restored.export_ghosts(),
            vec![GhostState {
                device: 0,
                key: k2,
                last_ts: None,
                last_bin: None
            }]
        );
    }

    #[test]
    fn instrumented_learning_counts_buckets_and_lookups() {
        // One periodic bucket (becomes a rule) plus one two-packet bucket
        // (rejected).
        let mut packets: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 1000, 100, 5000)).collect();
        packets.push(pkt(300, 999, 5000));
        packets.push(pkt(700, 999, 5000));
        packets.sort_by_key(|p| p.ts);
        let dns = DnsTable::new();
        let eng = PredictabilityEngine::new(FlowDef::PortLess);
        let registry = MetricRegistry::new();
        let telemetry = RuleTelemetry::registered(&registry);
        let rules = RuleTable::learn_instrumented(&eng, &packets, &dns, telemetry.clone());
        assert_eq!(telemetry.buckets_learned.get(), 1);
        assert_eq!(telemetry.buckets_rejected.get(), 1);

        assert!(rules.matches(FlowDef::PortLess, &pkt(99_000, 100, 60_000), &dns));
        assert!(!rules.matches(FlowDef::PortLess, &pkt(99_000, 101, 60_000), &dns));
        assert_eq!(telemetry.match_hits.get(), 1);
        assert_eq!(telemetry.match_misses.get(), 1);
        // The registry sees the same counts (handles are shared).
        assert!(registry
            .render_prometheus()
            .contains("fiat_rules_match_total{outcome=\"hit\"} 1"));
    }
}
