//! Grouping unpredictable packets into events (§3.2).
//!
//! Given a device's unpredictable packets in time order, consecutive
//! packets less than five seconds apart belong to the same event; a gap of
//! five seconds or more closes the event. The threshold "was chosen
//! empirically and has very limited impact on the results" — the
//! `ablation_gap` bench sweeps it.
//!
//! Real captures are not perfectly ordered (WiFinger observes reordering
//! at exactly this packet-sequence level), so the grouper defines explicit
//! semantics for a backwards-in-time packet: `SimTime` subtraction
//! saturates to zero, which is `< gap`, so the packet **joins the open
//! event**; the event's `end` is a high-water mark (`max`) and never moves
//! backwards. `start` stays the first *observed* packet's timestamp.

use fiat_net::{PacketRecord, SimDuration, SimTime, TrafficClass};
use std::collections::HashMap;

/// The paper's event gap threshold.
pub const EVENT_GAP: SimDuration = SimDuration::from_secs(5);

/// One unpredictable event: indices into the analyzed packet slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpredictableEvent {
    /// Device the event belongs to.
    pub device: u16,
    /// Packet indices (into the original slice), in time order.
    pub packets: Vec<usize>,
    /// Timestamp of the first observed packet.
    pub start: SimTime,
    /// High-water-mark timestamp over the event's packets (equals the
    /// last packet's timestamp when the input is time-ordered).
    pub end: SimTime,
}

impl UnpredictableEvent {
    /// Number of packets in the event.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the event is empty (never produced by the grouper).
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Majority ground-truth label of the event's packets (for
    /// evaluation; the proxy cannot see labels).
    pub fn majority_label(&self, packets: &[PacketRecord]) -> TrafficClass {
        let mut counts = [0usize; 3];
        for &i in &self.packets {
            let k = match packets[i].label {
                TrafficClass::Control => 0,
                TrafficClass::Automated => 1,
                TrafficClass::Manual => 2,
            };
            counts[k] += 1;
        }
        let best = (0..3).max_by_key(|&k| counts[k]).unwrap();
        [
            TrafficClass::Control,
            TrafficClass::Automated,
            TrafficClass::Manual,
        ][best]
    }
}

/// Group the unpredictable packets of `packets` (those with `flags[i] ==
/// false`) into per-device events using `gap`.
pub fn group_events(
    packets: &[PacketRecord],
    flags: &[bool],
    gap: SimDuration,
) -> Vec<UnpredictableEvent> {
    assert_eq!(packets.len(), flags.len(), "flag length mismatch");
    // Per device: running event under construction.
    let mut open: HashMap<u16, UnpredictableEvent> = HashMap::new();
    let mut done = Vec::new();
    for (i, (p, &predictable)) in packets.iter().zip(flags).enumerate() {
        if predictable {
            continue;
        }
        match open.get_mut(&p.device) {
            Some(ev) if p.ts - ev.end < gap => {
                ev.packets.push(i);
                // High-water mark: a backwards (reordered) packet joins
                // the event but must not rewind `end`, or the next
                // in-order packet measures its gap against an
                // artificially old `end` and spuriously splits.
                ev.end = ev.end.max(p.ts);
            }
            Some(ev) => {
                done.push(std::mem::replace(
                    ev,
                    UnpredictableEvent {
                        device: p.device,
                        packets: vec![i],
                        start: p.ts,
                        end: p.ts,
                    },
                ));
            }
            None => {
                open.insert(
                    p.device,
                    UnpredictableEvent {
                        device: p.device,
                        packets: vec![i],
                        start: p.ts,
                        end: p.ts,
                    },
                );
            }
        }
    }
    done.extend(open.into_values());
    done.sort_by_key(|e| (e.start, e.device));
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, TcpFlags, TlsVersion, Transport};
    use std::net::Ipv4Addr;

    fn pkt(ts_ms: u64, device: u16, label: TrafficClass) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            device,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 5000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::ack(),
            tls: TlsVersion::None,
            size: 100,
            label,
        }
    }

    #[test]
    fn single_burst_is_one_event() {
        let packets: Vec<PacketRecord> = (0..5)
            .map(|i| pkt(i * 1000, 0, TrafficClass::Manual))
            .collect();
        let flags = vec![false; 5];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].len(), 5);
        assert_eq!(evs[0].start, SimTime::ZERO);
        assert_eq!(evs[0].end, SimTime::from_millis(4000));
    }

    #[test]
    fn five_second_gap_splits() {
        // Gaps: 4.999 s keeps, 5.000 s splits (strict < gap).
        let packets = vec![
            pkt(0, 0, TrafficClass::Manual),
            pkt(4_999, 0, TrafficClass::Manual),
            pkt(9_999, 0, TrafficClass::Manual), // 5.000 s after previous
        ];
        let flags = vec![false; 3];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].len(), 2);
        assert_eq!(evs[1].len(), 1);
    }

    #[test]
    fn predictable_packets_skipped_but_do_not_split() {
        // An interleaved predictable packet must not break the event: the
        // gap is measured between unpredictable packets.
        let packets = vec![
            pkt(0, 0, TrafficClass::Manual),
            pkt(1000, 0, TrafficClass::Control), // predictable
            pkt(2000, 0, TrafficClass::Manual),
        ];
        let flags = vec![false, true, false];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].packets, vec![0, 2]);
    }

    #[test]
    fn devices_group_independently() {
        // Interleaved packets of two devices within 5 s form two events.
        let packets = vec![
            pkt(0, 0, TrafficClass::Manual),
            pkt(100, 1, TrafficClass::Manual),
            pkt(200, 0, TrafficClass::Manual),
            pkt(300, 1, TrafficClass::Manual),
        ];
        let flags = vec![false; 4];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 2);
        assert!(evs.iter().any(|e| e.device == 0 && e.packets == vec![0, 2]));
        assert!(evs.iter().any(|e| e.device == 1 && e.packets == vec![1, 3]));
    }

    #[test]
    fn majority_label() {
        let packets = vec![
            pkt(0, 0, TrafficClass::Manual),
            pkt(100, 0, TrafficClass::Manual),
            pkt(200, 0, TrafficClass::Control),
        ];
        let flags = vec![false; 3];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs[0].majority_label(&packets), TrafficClass::Manual);
    }

    #[test]
    fn all_predictable_yields_no_events() {
        let packets: Vec<PacketRecord> = (0..10)
            .map(|i| pkt(i * 100, 0, TrafficClass::Control))
            .collect();
        let flags = vec![true; 10];
        assert!(group_events(&packets, &flags, EVENT_GAP).is_empty());
    }

    #[test]
    fn backwards_packet_joins_without_rewinding_end() {
        // Reordered capture: 10 s, then a late-arriving 2 s packet, then
        // 8 s. The 2 s packet joins the open event (its gap saturates to
        // zero) but must not pull `end` back to 2 s — pre-fix, the 8 s
        // packet then measured a 6 s gap and spuriously split the event.
        let packets = vec![
            pkt(10_000, 0, TrafficClass::Manual),
            pkt(2_000, 0, TrafficClass::Manual),
            pkt(8_000, 0, TrafficClass::Manual),
        ];
        let flags = vec![false; 3];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 1, "{evs:?}");
        assert_eq!(evs[0].packets, vec![0, 1, 2]);
        assert_eq!(evs[0].start, SimTime::from_millis(10_000));
        assert_eq!(evs[0].end, SimTime::from_millis(10_000));
    }

    #[test]
    fn backwards_packet_beyond_gap_still_joins() {
        // Explicit semantics: however old the reordered packet is, the
        // saturating difference is zero < gap, so it joins rather than
        // opening a phantom event in the past.
        let packets = vec![
            pkt(60_000, 0, TrafficClass::Manual),
            pkt(1_000, 0, TrafficClass::Manual), // 59 s in the past
        ];
        let flags = vec![false; 2];
        let evs = group_events(&packets, &flags, EVENT_GAP);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].end, SimTime::from_millis(60_000));
    }

    #[test]
    fn custom_gap_respected() {
        let packets = vec![
            pkt(0, 0, TrafficClass::Manual),
            pkt(1_500, 0, TrafficClass::Manual),
        ];
        let flags = vec![false; 2];
        let tight = group_events(&packets, &flags, SimDuration::from_secs(1));
        assert_eq!(tight.len(), 2);
        let loose = group_events(&packets, &flags, SimDuration::from_secs(2));
        assert_eq!(loose.len(), 1);
    }
}
