//! Device identification and the production model registry (§7 "Road to
//! Production": "we envision one model per IoT device and software
//! version which is downloaded and applied automatically as FIAT
//! identifies a new device").
//!
//! Identification is passive, from a short traffic sample: a compact
//! fingerprint of the device's flow structure (bucket counts, size and
//! period distributions, protocol/TLS mix — the signals the device-
//! identification literature in §8 uses), matched with a nearest-centroid
//! model against known devices. The registry then resolves the newest
//! event-classifier model for that device type.

use crate::classifier::EventClassifier;
use crate::predict::PredictabilityEngine;
use fiat_ml::knn::KNearestNeighbors;
use fiat_ml::{Classifier, Dataset, Distance, StandardScaler};
use fiat_net::{DnsTable, FlowDef, FlowKey, PacketRecord, TlsVersion, Transport};
use std::collections::{BTreeMap, HashSet};

/// Number of fingerprint features.
pub const FINGERPRINT_LEN: usize = 21;

/// Compute an 18-dimensional traffic fingerprint from one device's packets
/// (any contiguous capture window; 30–60 minutes suffices).
pub fn traffic_fingerprint(packets: &[PacketRecord], dns: &DnsTable) -> Vec<f64> {
    if packets.is_empty() {
        return vec![0.0; FINGERPRINT_LEN];
    }
    // Vendor-domain histogram: remote names hashed into 4 buckets. This is
    // what separates same-structure devices from different vendors (SP10's
    // teckin.com vs WP3's gosund.com) — the role DNS queries play in the
    // device-identification literature.
    let mut domain_hist = [0.0f64; 4];
    for p in packets {
        let name = dns.name_of(p.remote_ip);
        let h = name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
        domain_hist[(h % 4) as usize] += 1.0;
    }
    let n = packets.len() as f64;
    let buckets: HashSet<FlowKey> = packets
        .iter()
        .map(|p| FlowKey::of(FlowDef::PortLess, p, dns))
        .collect();
    let remotes: HashSet<std::net::Ipv4Addr> = packets.iter().map(|p| p.remote_ip).collect();
    let mut sizes: Vec<f64> = packets.iter().map(|p| p.size as f64).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| sizes[((sizes.len() - 1) as f64 * q) as usize];
    let mean_size = sizes.iter().sum::<f64>() / n;
    let std_size = (sizes.iter().map(|s| (s - mean_size).powi(2)).sum::<f64>() / n).sqrt();
    let tcp = packets
        .iter()
        .filter(|p| p.transport == Transport::Tcp)
        .count() as f64
        / n;
    let tls12 = packets
        .iter()
        .filter(|p| p.tls == TlsVersion::Tls12)
        .count() as f64
        / n;
    let tls13 = packets
        .iter()
        .filter(|p| p.tls == TlsVersion::Tls13)
        .count() as f64
        / n;
    let no_tls = packets.iter().filter(|p| p.tls == TlsVersion::None).count() as f64 / n;
    let from_dev = packets
        .iter()
        .filter(|p| p.direction == fiat_net::Direction::FromDevice)
        .count() as f64
        / n;
    let duration_min = (packets.last().unwrap().ts - packets[0].ts)
        .as_secs_f64()
        .max(1.0)
        / 60.0;
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let flags = engine.analyze(packets, dns);
    let predictable = flags.iter().filter(|&&f| f).count() as f64 / n;

    // Period signature: median inter-arrival (seconds) of the three
    // busiest buckets — keep-alive cadence is the strongest per-model
    // fingerprint (a 20 s Google heartbeat vs a 60 s Wyze one).
    let mut by_bucket: std::collections::HashMap<FlowKey, Vec<u64>> =
        std::collections::HashMap::new();
    for p in packets {
        by_bucket
            .entry(FlowKey::of(FlowDef::PortLess, p, dns))
            .or_default()
            .push(p.ts.as_micros());
    }
    let mut bucket_list: Vec<&Vec<u64>> = by_bucket.values().collect();
    bucket_list.sort_by_key(|v| std::cmp::Reverse(v.len()));
    let mut periods = [0.0f64; 3];
    for (k, times) in bucket_list.iter().take(3).enumerate() {
        let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        if !gaps.is_empty() {
            gaps.sort_unstable();
            periods[k] = gaps[gaps.len() / 2] as f64 / 1e6;
        }
    }

    vec![
        buckets.len() as f64,
        remotes.len() as f64,
        n / duration_min, // packets per minute
        mean_size,
        std_size,
        pct(0.1),
        pct(0.5),
        pct(0.9),
        tcp,
        tls12,
        tls13,
        no_tls,
        from_dev,
        predictable,
        domain_hist[0] / n,
        domain_hist[1] / n,
        domain_hist[2] / n,
        domain_hist[3] / n,
        periods[0],
        periods[1],
        periods[2],
    ]
}

/// Passive device identifier: nearest-neighbour over fingerprints (1-NN
/// memorizes each training window; with a handful of windows per device
/// type this matches the literature's strongest simple baseline).
pub struct DeviceIdentifier {
    names: Vec<String>,
    scaler: StandardScaler,
    model: KNearestNeighbors,
}

impl DeviceIdentifier {
    /// Train from labeled captures: one or more `(device name, packets)`
    /// samples per device type.
    pub fn train(samples: &[(String, Vec<PacketRecord>)], dns: &DnsTable) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut names: Vec<String> = samples.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names.dedup();
        let x: Vec<Vec<f64>> = samples
            .iter()
            .map(|(_, p)| traffic_fingerprint(p, dns))
            .collect();
        let y: Vec<usize> = samples
            .iter()
            .map(|(n, _)| names.iter().position(|m| m == n).unwrap())
            .collect();
        let (scaler, xs) = StandardScaler::fit_transform(&x);
        let data = Dataset::new(xs, y).with_n_classes(names.len());
        let mut model = KNearestNeighbors::new(1, Distance::Euclidean);
        model.fit(&data);
        DeviceIdentifier {
            names,
            scaler,
            model,
        }
    }

    /// Identify a device from a capture window.
    pub fn identify(&self, packets: &[PacketRecord], dns: &DnsTable) -> &str {
        let mut f = traffic_fingerprint(packets, dns);
        self.scaler.transform_row(&mut f);
        &self.names[self.model.predict_one(&f)]
    }

    /// Known device names.
    pub fn known_devices(&self) -> &[String] {
        &self.names
    }
}

/// A versioned, per-device-type model registry.
#[derive(Default)]
pub struct ModelRegistry {
    // (device type) -> version -> classifier.
    entries: BTreeMap<String, BTreeMap<u32, EventClassifier>>,
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a model for a device type and version (later publishes of
    /// the same version overwrite).
    pub fn publish(
        &mut self,
        device_type: impl Into<String>,
        version: u32,
        model: EventClassifier,
    ) {
        self.entries
            .entry(device_type.into())
            .or_default()
            .insert(version, model);
    }

    /// Resolve the newest model for a device type.
    pub fn latest(&self, device_type: &str) -> Option<(u32, &EventClassifier)> {
        self.entries
            .get(device_type)
            .and_then(|v| v.last_key_value())
            .map(|(&ver, m)| (ver, m))
    }

    /// Resolve a specific version.
    pub fn get(&self, device_type: &str, version: u32) -> Option<&EventClassifier> {
        self.entries.get(device_type)?.get(&version)
    }

    /// Number of (type, version) models published.
    pub fn len(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Identify a device from a capture and resolve its newest model —
    /// the §7 "downloaded and applied automatically" flow.
    pub fn resolve_for_capture(
        &self,
        identifier: &DeviceIdentifier,
        packets: &[PacketRecord],
        dns: &DnsTable,
    ) -> Option<(&str, u32, &EventClassifier)> {
        let name = identifier.identify(packets, dns);
        // Borrow gymnastics: re-find the owned key so the returned &str
        // lives as long as the registry.
        let (key, versions) = self.entries.get_key_value(name)?;
        let (&ver, model) = versions.last_key_value()?;
        Some((key.as_str(), ver, model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{SimDuration, SimTime};
    use fiat_trace::{Location, TestbedConfig, TestbedTrace};

    fn capture(seed: u64, hours: f64) -> TestbedTrace {
        TestbedTrace::generate(TestbedConfig {
            location: Location::Us,
            days: hours / 24.0,
            seed,
            ..Default::default()
        })
    }

    fn device_window(c: &TestbedTrace, device: u16) -> Vec<PacketRecord> {
        window(c, device, 0)
    }

    fn window(c: &TestbedTrace, device: u16, start_min: u64) -> Vec<PacketRecord> {
        let lo = SimTime::ZERO + SimDuration::from_mins(start_min);
        let hi = lo + SimDuration::from_mins(60);
        c.trace
            .packets
            .iter()
            .filter(|p| p.device == device && p.ts >= lo && p.ts < hi)
            .cloned()
            .collect()
    }

    #[test]
    fn fingerprint_shape_and_determinism() {
        let c = capture(0, 2.0);
        let w = device_window(&c, 0);
        let f1 = traffic_fingerprint(&w, &c.trace.dns);
        let f2 = traffic_fingerprint(&w, &c.trace.dns);
        assert_eq!(f1.len(), FINGERPRINT_LEN);
        assert_eq!(f1, f2);
        assert_eq!(
            traffic_fingerprint(&[], &c.trace.dns),
            vec![0.0; FINGERPRINT_LEN]
        );
    }

    #[test]
    fn identifies_testbed_devices_across_captures() {
        // Train on one capture, identify in a fresh one.
        let train_cap = capture(1, 3.0);
        let mut samples: Vec<(String, Vec<PacketRecord>)> = Vec::new();
        for (i, d) in train_cap.devices.iter().enumerate() {
            for start in [0u64, 60] {
                samples.push((d.name.clone(), window(&train_cap, i as u16, start)));
            }
        }
        let ident = DeviceIdentifier::train(&samples, &train_cap.trace.dns);
        assert_eq!(ident.known_devices().len(), 10);

        let test_cap = capture(2, 3.0);
        let mut correct = 0;
        for (i, d) in test_cap.devices.iter().enumerate() {
            let w = device_window(&test_cap, i as u16);
            if ident.identify(&w, &test_cap.trace.dns) == d.name {
                correct += 1;
            }
        }
        assert!(correct >= 8, "identified {correct}/10 devices");
    }

    #[test]
    fn registry_resolves_latest_version() {
        let mut reg = ModelRegistry::new();
        reg.publish("SP10", 1, EventClassifier::simple_rule(200));
        reg.publish("SP10", 3, EventClassifier::simple_rule(235));
        reg.publish("SP10", 2, EventClassifier::simple_rule(210));
        reg.publish("Nest-E", 1, EventClassifier::simple_rule(267));
        assert_eq!(reg.len(), 4);
        let (ver, model) = reg.latest("SP10").unwrap();
        assert_eq!(ver, 3);
        assert!(matches!(
            model,
            EventClassifier::SimpleRule { manual_size: 235 }
        ));
        assert!(reg.get("SP10", 2).is_some());
        assert!(reg.latest("Unknown").is_none());
    }

    #[test]
    fn end_to_end_identify_then_resolve() {
        let train_cap = capture(3, 3.0);
        let samples: Vec<(String, Vec<PacketRecord>)> = train_cap
            .devices
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), device_window(&train_cap, i as u16)))
            .collect();
        let ident = DeviceIdentifier::train(&samples, &train_cap.trace.dns);

        let mut reg = ModelRegistry::new();
        for d in &train_cap.devices {
            let m = d
                .simple_rule_size
                .map(EventClassifier::simple_rule)
                .unwrap_or_else(|| EventClassifier::simple_rule(0));
            reg.publish(d.name.clone(), 1, m);
        }

        // A "new" plug appears in a later capture: it resolves to the
        // SP10 model automatically.
        let new_cap = capture(4, 3.0);
        let w = device_window(&new_cap, 3); // SP10
        let (name, ver, model) = reg
            .resolve_for_capture(&ident, &w, &new_cap.trace.dns)
            .unwrap();
        assert_eq!(name, "SP10");
        assert_eq!(ver, 1);
        assert!(matches!(
            model,
            EventClassifier::SimpleRule { manual_size: 235 }
        ));
    }
}
