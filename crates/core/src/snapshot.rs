//! Versioned, serde-round-trippable home state snapshots.
//!
//! A [`HomeSnapshot`] captures everything a [`crate::FiatProxy`] needs to
//! resume mid-trace on another process (or fleet shard): learned rules,
//! open events, the lockout and quarantine state, the epoch-keyed 0-RTT
//! replay window, and the full audit chain. The contract, enforced by the
//! fleet determinism oracle, is that snapshot → restore → resume produces
//! decisions, stats, and an audit chain byte-identical to the
//! uninterrupted run.
//!
//! Design constraints that shape the format:
//!
//! - **Deterministic bytes.** Every collection is a canonically ordered
//!   `Vec` (rules and ghosts in LRU/stamp order — semantic state, since
//!   eviction follows it — devices by id, replay epochs and tickets
//!   ascending), and `DnsTable`'s own serde representation sorts by IP,
//!   so serializing the same state twice yields identical bytes — the
//!   property the round-trip proptest in `fiat-control` pins.
//! - **No live keys.** The QUIC 1-RTT session key is *not* serialized;
//!   a restored proxy requires clients to re-handshake for 1-RTT while
//!   0-RTT tickets (re-derivable from the pairing PSK + epoch) keep
//!   working. Classifiers are also not serialized — ML model weights are
//!   provisioning data, re-supplied by the caller at restore.
//! - **Versioned.** [`HomeSnapshot::version`] must equal
//!   [`SNAPSHOT_VERSION`]; restore refuses anything else rather than
//!   guessing at a foreign layout.
//!
//! Known exclusions (documented residuals, DESIGN §17): the
//! interaction graph (`FiatProxy::set_interactions`) and any installed
//! [`crate::ProxyHook`] are not captured; homes using either must
//! re-install them after restore.
//!
//! v2 (bounded-state, DESIGN §18) additions over v1: rules are emitted
//! in LRU order (least-recently-matched first) instead of sorted, so
//! eviction order survives the round trip; [`GhostSnapshot`]s carry the
//! evicted-rule re-learn state; and the audit section gains
//! [`HomeSnapshot::audit_checkpoint`] / [`HomeSnapshot::audit_truncated`]
//! so a checkpoint-truncated chain restores verifiably from its
//! checkpoint head rather than genesis.

use crate::audit::AuditEntry;
use crate::classifier::EventClass;
use crate::pipeline::{AllowReason, DropReason, ProxyStats};
use fiat_net::{DnsTable, FlowKey, PacketRecord, SimTime};
use fiat_quic::{ReplayEpochImage, ReplayImage, ServerImage};
use serde::{Deserialize, Serialize};

/// Current snapshot layout version. Bump on any incompatible change to
/// the structs in this module.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot's version field does not match [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u32),
    /// The exported audit chain fails verification: the snapshot was
    /// tampered with or truncated and must not be resumed from.
    AuditChainInvalid,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::AuditChainInvalid => write!(f, "audit chain failed verification"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Full decision state of one home's proxy (see the module docs).
///
/// Compare snapshots through their serialized bytes (the canonical,
/// deterministic form) — `DnsTable` has no structural equality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomeSnapshot {
    /// Layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// When the proxy started (bootstrap anchor).
    pub started_at: Option<SimTime>,
    /// Humanness-proof freshness horizon.
    pub human_valid_until: SimTime,
    /// Handshake server-random counter (continues unique randoms).
    pub server_random_counter: u64,
    /// Whether the proxy was in control-plane degraded mode.
    pub degraded: bool,
    /// DNS knowledge (serialized sorted by IP; interner ids rebuilt on
    /// load).
    pub dns: DnsTable,
    /// Bootstrap capture, when the snapshot predates rule learning.
    pub bootstrap_buffer: Vec<PacketRecord>,
    /// Learned rules in stringly-keyed form, in LRU order
    /// (least-recently-matched first, the eviction order); `None` when
    /// bootstrap had not completed. Restored by re-interning against the
    /// restored [`HomeSnapshot::dns`].
    pub rules: Option<Vec<(u16, FlowKey)>>,
    /// Evicted-rule ghosts in LRU order (re-learn candidates; empty when
    /// no rule has been evicted or bootstrap had not completed).
    pub rule_ghosts: Vec<GhostSnapshot>,
    /// Unknown devices already audited fail-open, sorted.
    pub unknown_seen: Vec<u16>,
    /// Per-device decision state, sorted by device id.
    pub devices: Vec<DeviceSnapshot>,
    /// Quarantine releases not yet drained by the interception layer.
    pub released_packets: Vec<PacketRecord>,
    /// Decision counters so far.
    pub stats: ProxyStats,
    /// Audit entries, parallel to [`HomeSnapshot::audit_hashes`]. When
    /// the chain was checkpoint-truncated this is the retained suffix.
    pub audit_entries: Vec<AuditEntry>,
    /// Audit chain hashes, 32 bytes each (stored as `Vec<u8>` because
    /// the vendored serde has no fixed-array impls); restore re-verifies
    /// the chain and rejects malformed lengths.
    pub audit_hashes: Vec<Vec<u8>>,
    /// Chain hash of the last truncated-away audit entry (32 bytes), if
    /// the log has ever been checkpoint-truncated; the suffix verifies
    /// from this anchor instead of genesis.
    pub audit_checkpoint: Option<Vec<u8>>,
    /// How many audit entries were truncated away before the retained
    /// suffix.
    pub audit_truncated: u64,
    /// QUIC server state (ticket issuance + epoch-keyed replay window).
    pub quic: QuicServerSnapshot,
}

/// One device's decision state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSnapshot {
    /// Device id.
    pub device: u16,
    /// First-N window (already clamped at registration).
    pub classify_at: usize,
    /// Open unpredictable event, if any.
    pub open: Option<OpenEventSnapshot>,
    /// Sliding-window unverified-drop episode times, oldest first.
    pub drops: Vec<SimTime>,
    /// Brute-force lockout flag.
    pub locked: bool,
    /// Pending-verdict quarantine record, if any.
    pub quarantine: Option<QuarantineSnapshot>,
}

/// An open unpredictable event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenEventSnapshot {
    /// Packets accumulated so far.
    pub packets: Vec<PacketRecord>,
    /// High-water timestamp (event-gap anchor).
    pub last: SimTime,
    /// Sealed fate, once classified.
    pub fate: Option<EventFateSnapshot>,
}

/// Serialized form of a sealed event fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventFateSnapshot {
    /// Remaining packets allowed for this reason.
    AllowRest(AllowReason),
    /// Remaining packets dropped for this reason.
    DropRest(DropReason),
    /// Verdict pending: further packets join the quarantine record.
    Quarantine,
}

/// One evicted rule's re-learn ("ghost") state, stringly keyed like
/// [`HomeSnapshot::rules`] and re-interned on restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhostSnapshot {
    /// Device id the evicted rule belonged to.
    pub device: u16,
    /// The evicted rule's flow key.
    pub key: FlowKey,
    /// Timestamp of the last packet seen on this ghost, if any.
    pub last_ts: Option<SimTime>,
    /// Tolerance bin of the last observed inter-arrival, if any.
    pub last_bin: Option<u64>,
}

/// A pending-verdict quarantine record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineSnapshot {
    /// Held packets.
    pub packets: Vec<PacketRecord>,
    /// Class the event was given at its classification point.
    pub class: EventClass,
    /// Proof deadline.
    pub deadline: SimTime,
}

/// QUIC server state: ticket issuance counter, current epoch, and the
/// epoch-keyed anti-replay store (serde mirror of
/// [`fiat_quic::ServerImage`] — the quic crate itself stays serde-free).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuicServerSnapshot {
    /// Next session-ticket id to issue.
    pub next_ticket_id: u64,
    /// Epoch new tickets are issued under.
    pub current_epoch: u32,
    /// Per-epoch replay capacity cap.
    pub replay_max_tickets: Option<usize>,
    /// Epochs below this are retired.
    pub replay_retired_below: u32,
    /// Total epochs retired so far.
    pub replay_retired_count: u64,
    /// Live epochs, ascending.
    pub replay_epochs: Vec<EpochSnapshot>,
}

/// One live replay epoch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Epoch number.
    pub epoch: u32,
    /// Highest ticket id evicted by the capacity cap, if any.
    pub evicted_watermark: Option<u64>,
    /// `(ticket id, sorted packet numbers)` pairs, ascending by id.
    pub entries: Vec<(u64, Vec<u64>)>,
}

impl From<&ServerImage> for QuicServerSnapshot {
    fn from(img: &ServerImage) -> Self {
        QuicServerSnapshot {
            next_ticket_id: img.next_ticket_id,
            current_epoch: img.current_epoch,
            replay_max_tickets: img.replay.max_tickets,
            replay_retired_below: img.replay.retired_below,
            replay_retired_count: img.replay.retired_count,
            replay_epochs: img
                .replay
                .epochs
                .iter()
                .map(|e| EpochSnapshot {
                    epoch: e.epoch,
                    evicted_watermark: e.evicted_watermark,
                    entries: e.entries.clone(),
                })
                .collect(),
        }
    }
}

impl From<&QuicServerSnapshot> for ServerImage {
    fn from(snap: &QuicServerSnapshot) -> Self {
        ServerImage {
            next_ticket_id: snap.next_ticket_id,
            current_epoch: snap.current_epoch,
            replay: ReplayImage {
                max_tickets: snap.replay_max_tickets,
                retired_below: snap.replay_retired_below,
                retired_count: snap.replay_retired_count,
                epochs: snap
                    .replay_epochs
                    .iter()
                    .map(|e| ReplayEpochImage {
                        epoch: e.epoch,
                        evicted_watermark: e.evicted_watermark,
                        entries: e.entries.clone(),
                    })
                    .collect(),
            },
        }
    }
}
