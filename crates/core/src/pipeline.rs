//! The IoT proxy's access-control procedure (Figure 4).
//!
//! Every packet destined to (or originating from) an IoT device passes
//! through:
//!
//! 1. **Bootstrap** — for the first 20 minutes all traffic is allowed
//!    while the rule table learns predictable flows (§5.4 "Rules
//!    Creation"; 20 min = 2× the maximum predictable interval, Fig 1c).
//! 2. **Rule match** — a hit means predictable: allow.
//! 3. **Event grouping** — misses accumulate into unpredictable events
//!    (5 s gap); the first N packets of each event are allowed, N capped
//!    by the device's command-completion threshold so an unauthorized
//!    command cannot finish before the verdict.
//! 4. **Classification** — at packet N the event is classified (size rule
//!    or BernoulliNB). Non-manual ⇒ allow the rest. Manual ⇒ allowed only
//!    if a humanness proof arrived recently; otherwise the event's
//!    remaining packets drop and the user is alerted.
//! 5. **Lockout** — repeated unverified manual events within a short
//!    window disconnect the device until manually cleared (brute-force
//!    protection). The threshold is a tolerance: up to
//!    `lockout_threshold` unverified events are absorbed, the next one
//!    locks.
//!
//! Events that end *below* the first-N window (an attacker feeding
//! fragments and pausing past the event gap) are classified
//! retrospectively when they close: their packets already left, but an
//! unverified manual episode still reaches the audit log and counts
//! toward the lockout, so gap evasion trips the brute-force protection
//! instead of flying under the classifier.

use crate::audit::{AuditEntry, AuditLog, AuditVerdict, AUDIT_PROXY_DEVICE};
use crate::classifier::{EventClass, EventClassifier};
use crate::client::{AuthMessage, FiatApp};
use crate::events::UnpredictableEvent;
use crate::interactions::InteractionGraph;
use crate::pairing::{pair, Paired};
use crate::predict::{PredictabilityEngine, RuleTable, RuleTelemetry, DEFAULT_TOLERANCE};
use crate::snapshot::{
    DeviceSnapshot, EventFateSnapshot, GhostSnapshot, HomeSnapshot, OpenEventSnapshot,
    QuarantineSnapshot, SnapshotError, SNAPSHOT_VERSION,
};
use fiat_crypto::TeeKeystore;
use fiat_net::{DnsTable, FlowDef, FlowKey, PacketRecord, SimDuration, SimTime};
use fiat_quic::{ClientHello, Server as QuicServer, ServerHello, ZeroRttPacket};
use fiat_sensors::HumannessValidator;
use fiat_telemetry::{Clock, Counter, Gauge, Histogram, Journal, MetricRegistry, Span, WallClock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Proxy configuration (paper defaults).
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Flow definition for rules (PortLess per §5.4).
    pub flow_def: FlowDef,
    /// Interval tolerance bin for the predictability engine.
    pub tolerance: SimDuration,
    /// Bootstrap window during which all traffic is allowed and learned.
    pub bootstrap: SimDuration,
    /// Unpredictable-event gap threshold.
    pub event_gap: SimDuration,
    /// Maximum packets allowed (and used as features) before classifying.
    pub classify_at_cap: usize,
    /// How long a humanness proof stays fresh.
    pub human_valid_window: SimDuration,
    /// Unverified manual events *tolerated* within
    /// [`ProxyConfig::lockout_window`]: exactly this many do not lock
    /// the device, one more does.
    pub lockout_threshold: u32,
    /// Sliding window for the lockout counter.
    pub lockout_window: SimDuration,
    /// Classify events that close below the first-N window
    /// retrospectively (see the module docs). Disable to reproduce the
    /// inline-only verdict path.
    pub retro_classify: bool,
    /// Pending-verdict quarantine: how long a manual-classified event
    /// whose humanness proof has not arrived is *held* (not dropped)
    /// awaiting the proof. `None` (the default) disables quarantine and
    /// reproduces the immediate-demotion path bit for bit — a lost proof
    /// then means a dropped event, the false-drop friction the chaos
    /// harness measures.
    pub proof_deadline: Option<SimDuration>,
    /// Maximum packets held per quarantine record. Packets past the cap
    /// are dropped as `ManualUnverified` (no audit entry, no lockout
    /// credit — the episode is already pending a verdict) so a chatty
    /// event cannot grow proxy memory without bound.
    pub quarantine_capacity: usize,
    /// Rule-table cap: past it the least-recently-matched rule is
    /// evicted into a ghost with a re-learn path (see
    /// [`RuleTable::set_capacity`]). The default is generous — far above
    /// what any home learns — so it only exists to bound hostile or
    /// pathological growth; `None` disables the cap.
    pub max_rules: Option<usize>,
    /// Cap on *concurrent* quarantine records across the home (one
    /// record per device already bounds each device, but not the number
    /// of devices with one pending). Admitting a record past the cap
    /// demotes the record with the oldest deadline first, as if its
    /// deadline had just passed. `None` disables the cap.
    pub max_quarantine_records: Option<usize>,
    /// In-memory audit-chain cap with checkpointed truncation (see
    /// [`crate::audit::AuditLog::set_max_entries`]). `None` keeps every
    /// entry in memory.
    pub max_audit_entries: Option<usize>,
    /// Route unknown-MAC traffic through the behavioral fingerprint gate
    /// (when one is installed with [`FiatProxy::set_fingerprinter`])
    /// instead of the legacy fail-open. Off by default so existing
    /// deployments keep the incremental-deployment behavior until the
    /// operator flips the knob.
    pub fingerprint_unknown: bool,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            flow_def: FlowDef::PortLess,
            tolerance: DEFAULT_TOLERANCE,
            bootstrap: SimDuration::from_mins(20),
            event_gap: SimDuration::from_secs(5),
            classify_at_cap: 5,
            human_valid_window: SimDuration::from_secs(30),
            lockout_threshold: 3,
            lockout_window: SimDuration::from_secs(60),
            retro_classify: true,
            proof_deadline: None,
            quarantine_capacity: 64,
            max_rules: Some(65_536),
            max_quarantine_records: Some(64),
            max_audit_entries: Some(65_536),
            fingerprint_unknown: false,
        }
    }
}

/// Why a packet was allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllowReason {
    /// Still in the bootstrap window.
    Bootstrap,
    /// Rule table hit: predictable traffic.
    RuleHit,
    /// Within the first-N allowance of an undecided event.
    FirstN,
    /// Event classified non-manual.
    NonManual,
    /// Manual event with a fresh humanness proof.
    ManualVerified,
    /// Manual event covered by a device-interaction cascade (§7).
    Cascade,
    /// Unregistered device: fail open during incremental deployment.
    UnknownDevice,
    /// Remainder of a quarantined manual event whose humanness proof
    /// arrived (late) before the proof deadline.
    QuarantineReleased,
    /// Unregistered device whose traffic behaviorally matched its
    /// claimed class (fingerprint gate): provisional allow with audit.
    FingerprintMatched,
}

impl AllowReason {
    /// All variants, in [`ProxyStats`] field order.
    pub const ALL: [AllowReason; 9] = [
        AllowReason::Bootstrap,
        AllowReason::RuleHit,
        AllowReason::FirstN,
        AllowReason::NonManual,
        AllowReason::ManualVerified,
        AllowReason::Cascade,
        AllowReason::UnknownDevice,
        AllowReason::QuarantineReleased,
        AllowReason::FingerprintMatched,
    ];

    /// Stable snake_case name used as the telemetry `reason` label.
    pub fn as_str(self) -> &'static str {
        match self {
            AllowReason::Bootstrap => "bootstrap",
            AllowReason::RuleHit => "rule_hit",
            AllowReason::FirstN => "first_n",
            AllowReason::NonManual => "non_manual",
            AllowReason::ManualVerified => "manual_verified",
            AllowReason::Cascade => "cascade",
            AllowReason::UnknownDevice => "unknown_device",
            AllowReason::QuarantineReleased => "quarantine_released",
            AllowReason::FingerprintMatched => "fingerprint_matched",
        }
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Manual event without humanness proof.
    ManualUnverified,
    /// Device is locked out.
    LockedOut,
    /// Remainder of a quarantined manual event whose proof deadline
    /// passed without a humanness proof.
    QuarantineExpired,
    /// Unregistered device quarantined by the fingerprint gate: its
    /// evidence window sealed on spoof-suspected or no-confident-match.
    UnknownQuarantined,
}

impl DropReason {
    /// All variants, in [`ProxyStats`] field order.
    pub const ALL: [DropReason; 4] = [
        DropReason::ManualUnverified,
        DropReason::LockedOut,
        DropReason::QuarantineExpired,
        DropReason::UnknownQuarantined,
    ];

    /// Stable snake_case name used as the telemetry `reason` label.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::ManualUnverified => "manual_unverified",
            DropReason::LockedOut => "locked_out",
            DropReason::QuarantineExpired => "quarantine_expired",
            DropReason::UnknownQuarantined => "unknown_quarantined",
        }
    }
}

/// Packet counters per decision reason (operator dashboard material).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Packets allowed during bootstrap.
    pub bootstrap: u64,
    /// Packets allowed by a rule hit.
    pub rule_hit: u64,
    /// Packets allowed under the first-N allowance.
    pub first_n: u64,
    /// Packets of events classified non-manual.
    pub non_manual: u64,
    /// Packets of human-verified manual events.
    pub manual_verified: u64,
    /// Packets allowed via an interaction cascade.
    pub cascade: u64,
    /// Packets of unregistered devices allowed fail-open.
    pub unknown_device: u64,
    /// Packets dropped as unverified manual.
    pub dropped_unverified: u64,
    /// Packets dropped because the device is locked out.
    pub dropped_lockout: u64,
    /// Unverified manual *episodes* detected retrospectively at event
    /// closure (their packets had already been forwarded under the
    /// first-N allowance; counts events, not packets, so it is not part
    /// of [`ProxyStats::total`]).
    pub retro_unverified: u64,
    /// Packets held in pending-verdict quarantine at decision time
    /// (each held packet is decided exactly once, as `Quarantine`).
    pub quarantined: u64,
    /// Live packets allowed because their event's quarantine was
    /// released by a late-arriving proof.
    pub quarantine_released: u64,
    /// Live packets dropped because their event's quarantine expired.
    pub dropped_quarantine: u64,
    /// Held packets demoted when a quarantine expired. Those packets
    /// were already decided (and counted) as `quarantined`, so this is a
    /// secondary count like `retro_unverified` and not part of
    /// [`ProxyStats::total`].
    pub quarantine_expired: u64,
    /// Packets of unregistered devices allowed because the fingerprint
    /// gate matched the claimed class.
    pub fingerprint_matched: u64,
    /// Packets of unregistered devices dropped by the fingerprint gate
    /// (spoof suspected or no confident match after the window).
    pub dropped_unknown: u64,
}

impl ProxyStats {
    /// Total packets decided.
    pub fn total(&self) -> u64 {
        self.bootstrap
            + self.rule_hit
            + self.first_n
            + self.non_manual
            + self.manual_verified
            + self.cascade
            + self.unknown_device
            + self.dropped_unverified
            + self.dropped_lockout
            + self.quarantined
            + self.quarantine_released
            + self.dropped_quarantine
            + self.fingerprint_matched
            + self.dropped_unknown
    }

    /// Total packets dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped_unverified
            + self.dropped_lockout
            + self.dropped_quarantine
            + self.dropped_unknown
    }

    /// Fraction of (post-bootstrap) traffic handled by rules alone — the
    /// paper's headline predictability payoff.
    pub fn rule_fraction(&self) -> f64 {
        let post = self.total() - self.bootstrap;
        if post == 0 {
            0.0
        } else {
            self.rule_hit as f64 / post as f64
        }
    }
}

impl std::ops::AddAssign for ProxyStats {
    /// Field-wise addition, for folding per-proxy (or per-shard) stats
    /// into one fleet-wide view. Commutative and associative, so the
    /// merged result does not depend on shard order.
    fn add_assign(&mut self, rhs: ProxyStats) {
        self.bootstrap += rhs.bootstrap;
        self.rule_hit += rhs.rule_hit;
        self.first_n += rhs.first_n;
        self.non_manual += rhs.non_manual;
        self.manual_verified += rhs.manual_verified;
        self.cascade += rhs.cascade;
        self.unknown_device += rhs.unknown_device;
        self.dropped_unverified += rhs.dropped_unverified;
        self.dropped_lockout += rhs.dropped_lockout;
        self.retro_unverified += rhs.retro_unverified;
        self.quarantined += rhs.quarantined;
        self.quarantine_released += rhs.quarantine_released;
        self.dropped_quarantine += rhs.dropped_quarantine;
        self.quarantine_expired += rhs.quarantine_expired;
        self.fingerprint_matched += rhs.fingerprint_matched;
        self.dropped_unknown += rhs.dropped_unknown;
    }
}

impl std::iter::Sum for ProxyStats {
    fn sum<I: Iterator<Item = ProxyStats>>(iter: I) -> ProxyStats {
        let mut acc = ProxyStats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

/// Point-in-time entry counts of every growable state surface one home's
/// proxy owns — what the long-horizon soak's accountant samples against
/// its budget (DESIGN §18). Counts are *entries*, not bytes: each surface
/// has a fixed-size record, so entry caps are what bound memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSize {
    /// Live rule-table entries.
    pub rules: usize,
    /// Evicted-rule ghosts awaiting re-learn.
    pub rule_ghosts: usize,
    /// Open unpredictable events.
    pub open_events: usize,
    /// Packets buffered across open events (≤ `classify_at_cap` each).
    pub open_packets: usize,
    /// Pending-verdict quarantine records.
    pub quarantine_records: usize,
    /// Packets held across all quarantine records.
    pub quarantine_held: usize,
    /// In-memory audit chain entries (post-truncation suffix).
    pub audit_entries: usize,
    /// 0-RTT session tickets tracked by the replay store.
    pub replay_tickets: usize,
    /// Replayed-packet-number entries across all live epochs.
    pub replay_entries: usize,
    /// Live (unretired) ticket epochs.
    pub replay_epochs: usize,
    /// Packets buffered during bootstrap (empty once rules are learned).
    pub bootstrap_buffered: usize,
    /// Released quarantine packets not yet drained by the interceptor.
    pub released_pending: usize,
    /// Fingerprint-gate entries: unknown devices under an open evidence
    /// window plus cached sealed verdicts (both FIFO-capped).
    pub fingerprint_evidence: usize,
}

impl StateSize {
    /// Sum of every surface — the single number compared against the
    /// soak's per-home budget.
    pub fn total(&self) -> usize {
        self.rules
            + self.rule_ghosts
            + self.open_events
            + self.open_packets
            + self.quarantine_records
            + self.quarantine_held
            + self.audit_entries
            + self.replay_tickets
            + self.replay_entries
            + self.replay_epochs
            + self.bootstrap_buffered
            + self.released_pending
            + self.fingerprint_evidence
    }

    /// Field-wise maximum — fold per-sample sizes into a high-water
    /// mark (each surface peaks independently, so the result may not
    /// correspond to any single instant).
    pub fn max_fields(self, rhs: StateSize) -> StateSize {
        StateSize {
            rules: self.rules.max(rhs.rules),
            rule_ghosts: self.rule_ghosts.max(rhs.rule_ghosts),
            open_events: self.open_events.max(rhs.open_events),
            open_packets: self.open_packets.max(rhs.open_packets),
            quarantine_records: self.quarantine_records.max(rhs.quarantine_records),
            quarantine_held: self.quarantine_held.max(rhs.quarantine_held),
            audit_entries: self.audit_entries.max(rhs.audit_entries),
            replay_tickets: self.replay_tickets.max(rhs.replay_tickets),
            replay_entries: self.replay_entries.max(rhs.replay_entries),
            replay_epochs: self.replay_epochs.max(rhs.replay_epochs),
            bootstrap_buffered: self.bootstrap_buffered.max(rhs.bootstrap_buffered),
            released_pending: self.released_pending.max(rhs.released_pending),
            fingerprint_evidence: self.fingerprint_evidence.max(rhs.fingerprint_evidence),
        }
    }
}

impl std::ops::AddAssign for StateSize {
    /// Field-wise addition, for fleet-wide aggregation.
    fn add_assign(&mut self, rhs: StateSize) {
        self.rules += rhs.rules;
        self.rule_ghosts += rhs.rule_ghosts;
        self.open_events += rhs.open_events;
        self.open_packets += rhs.open_packets;
        self.quarantine_records += rhs.quarantine_records;
        self.quarantine_held += rhs.quarantine_held;
        self.audit_entries += rhs.audit_entries;
        self.replay_tickets += rhs.replay_tickets;
        self.replay_entries += rhs.replay_entries;
        self.replay_epochs += rhs.replay_epochs;
        self.bootstrap_buffered += rhs.bootstrap_buffered;
        self.released_pending += rhs.released_pending;
        self.fingerprint_evidence += rhs.fingerprint_evidence;
    }
}

/// Per-packet verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyDecision {
    /// Forward the packet.
    Allow(AllowReason),
    /// Drop it.
    Drop(DropReason),
    /// Hold the packet in pending-verdict quarantine: it is neither
    /// forwarded nor discarded until the event's proof deadline resolves
    /// it. Held packets surface through
    /// [`FiatProxy::take_quarantine_releases`] when released.
    Quarantine,
}

impl ProxyDecision {
    /// Whether the packet is forwarded *now*. Quarantined packets are
    /// not — a held command must not reach the device before its
    /// verdict, which is what keeps quarantine from weakening the
    /// first-N completion bound.
    pub fn is_allow(self) -> bool {
        matches!(self, ProxyDecision::Allow(_))
    }

    /// Whether the packet was held pending a verdict.
    pub fn is_quarantine(self) -> bool {
        matches!(self, ProxyDecision::Quarantine)
    }

    /// Stable snake_case reason label (`"rule_hit"`, `"locked_out"`,
    /// `"pending_proof"`) — the same strings the telemetry `reason`
    /// label uses.
    pub fn reason_str(self) -> &'static str {
        match self {
            ProxyDecision::Allow(r) => r.as_str(),
            ProxyDecision::Drop(r) => r.as_str(),
            ProxyDecision::Quarantine => "pending_proof",
        }
    }
}

/// Observer for decision-path transitions, installed with
/// [`FiatProxy::set_hook`]. Every method has an empty default body, so
/// an implementor subscribes only to the transitions it cares about.
///
/// Hooks exist for the flight recorder (`fiat-probe`): they fire at the
/// state transitions a post-mortem needs a causal timeline for — packet
/// verdicts, proof arrivals, lockout and quarantine changes. The proxy
/// calls them with the *simulated* packet clock, so a recorded timeline
/// is deterministic across runs of the same trace.
///
/// With no hook installed (the default), each site costs one branch on
/// an `Option` — the allocation-regression test in `fiat-probe`
/// (`tests/overhead.rs`) pins the hook-free decide path at zero
/// allocations.
pub trait ProxyHook: Send {
    /// A packet was decided (fires once per [`FiatProxy::on_packet`]).
    fn on_decision(&self, _ts: SimTime, _device: u16, _decision: ProxyDecision) {}
    /// A humanness proof arrived and was validated (`verified` is the
    /// outcome).
    fn on_proof(&self, _ts: SimTime, _verified: bool) {}
    /// A device entered brute-force lockout at `ts` (packet time, retro
    /// event end, or quarantine deadline — whichever triggered it).
    fn on_lockout(&self, _ts: SimTime, _device: u16) {}
    /// A lockout was manually cleared (no simulated timestamp: the §5.4
    /// user action happens outside packet time).
    fn on_lockout_cleared(&self, _device: u16) {}
    /// A packet was held in pending-verdict quarantine.
    fn on_quarantine_held(&self, _ts: SimTime, _device: u16) {}
    /// A quarantine record was released by a late proof; `packets` held
    /// packets were forwarded.
    fn on_quarantine_released(&self, _ts: SimTime, _device: u16, _packets: u64) {}
    /// A quarantine record expired at its deadline; `packets` held
    /// packets were discarded.
    fn on_quarantine_expired(&self, _ts: SimTime, _device: u16, _packets: u64) {}
}

/// Behavioral identity verdict for one unknown device, produced by a
/// [`FingerprintGate`] once its evidence window seals (and cached for
/// every later packet of the same device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintVerdict {
    /// Still accumulating evidence: the window has not sealed yet.
    Pending,
    /// Behavior confidently matched the signature at this index, and it
    /// is consistent with the class the device claims (or the device
    /// claims nothing recognizable).
    Match(u16),
    /// Behavior confidently matched a *different* signature than the
    /// class the device claims by its destinations — spoof suspected.
    Spoof {
        /// Signature index of the claimed class.
        claimed: u16,
        /// Signature index the behavior actually matched.
        matched: u16,
    },
    /// No signature within the confidence threshold (or the margin to
    /// the runner-up was too thin): explicit no-confident-match.
    NoMatch,
}

/// One [`FingerprintGate::observe`] result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FingerprintObservation {
    /// The verdict as of this packet.
    pub verdict: FingerprintVerdict,
    /// `true` exactly once per device: on the packet that sealed its
    /// evidence window. The proxy writes the audit entry on this edge.
    pub just_sealed: bool,
}

/// Online behavioral device-identity matcher, installed with
/// [`FiatProxy::set_fingerprinter`] and consulted for every packet of an
/// *unregistered* device when [`ProxyConfig::fingerprint_unknown`] is
/// set. The concrete matcher lives in `fiat-fingerprint`; the trait keeps
/// the dependency arrow pointing into `fiat-core`, mirroring
/// [`ProxyHook`].
pub trait FingerprintGate: Send {
    /// Fold one packet of an unknown device into its evidence window and
    /// report the current verdict. Must be deterministic and, once a
    /// device's window has sealed, allocation-free.
    fn observe(&mut self, pkt: &PacketRecord, dns: &DnsTable) -> FingerprintObservation;
    /// Entries currently held (open evidence windows + cached sealed
    /// verdicts) for [`FiatProxy::state_size`] accounting.
    fn state_size(&self) -> usize;
}

/// One recent verdict, kept in the proxy's bounded decision [`Journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Packet timestamp.
    pub ts: SimTime,
    /// Device the packet belonged to.
    pub device: u16,
    /// The verdict.
    pub decision: ProxyDecision,
}

/// Pre-resolved telemetry handles for the proxy decision path.
///
/// Every handle is looked up in the [`MetricRegistry`] once, at
/// construction, so the per-packet hot path never touches the registry
/// lock — each update is a single relaxed atomic operation. The clock is
/// pluggable so real deployments time stages with the OS monotonic clock
/// while deterministic experiments drive a [`fiat_telemetry::ManualClock`].
pub struct ProxyTelemetry {
    registry: MetricRegistry,
    clock: Arc<dyn Clock>,
    journal: Journal<DecisionRecord>,
    stage_rule_learn: Histogram,
    stage_rule_match: Histogram,
    stage_event_grouping: Histogram,
    stage_classification: Histogram,
    stage_humanness: Histogram,
    stage_decide: Histogram,
    allow_total: [Counter; AllowReason::ALL.len()],
    drop_total: [Counter; DropReason::ALL.len()],
    quarantine_total: Counter,
    quarantine_held: Counter,
    quarantine_released_ctr: Counter,
    quarantine_expired_ctr: Counter,
    quarantine_depth: Gauge,
    rules_gauge: Gauge,
    open_events_gauge: Gauge,
    locked_devices_gauge: Gauge,
    devices_gauge: Gauge,
    auth_verified: Counter,
    auth_rejected: Counter,
    auth_errors: Counter,
    lockouts: Counter,
    retro_unverified: Counter,
    degraded_gauge: Gauge,
    degraded_decisions: Counter,
}

impl ProxyTelemetry {
    /// Capacity of the recent-decision journal.
    pub const JOURNAL_CAPACITY: usize = 256;

    /// Register the proxy's metrics in `registry` and time spans with
    /// `clock`.
    pub fn new(registry: MetricRegistry, clock: Arc<dyn Clock>) -> Self {
        registry.describe(
            "fiat_proxy_stage_us",
            "Decision-path stage latency in microseconds.",
        );
        registry.describe(
            "fiat_proxy_decisions_total",
            "Packets decided, by decision and reason.",
        );
        registry.describe("fiat_proxy_rules", "Learned predictability rules.");
        registry.describe(
            "fiat_proxy_open_events",
            "Unpredictable events currently open.",
        );
        registry.describe("fiat_proxy_locked_devices", "Devices currently locked out.");
        registry.describe("fiat_proxy_devices", "Registered devices.");
        registry.describe(
            "fiat_proxy_auth_total",
            "Humanness auth messages processed, by result.",
        );
        registry.describe(
            "fiat_proxy_lockouts_total",
            "Lockout episodes entered (once per episode, not per dropped packet).",
        );
        registry.describe(
            "fiat_proxy_retro_unverified_total",
            "Unverified manual episodes detected retrospectively at event closure.",
        );
        registry.describe(
            "fiat_quarantine_held_total",
            "Packets held in pending-verdict quarantine.",
        );
        registry.describe(
            "fiat_quarantine_released_total",
            "Held packets released by a late-arriving humanness proof.",
        );
        registry.describe(
            "fiat_quarantine_expired_total",
            "Held packets demoted at their proof deadline.",
        );
        registry.describe(
            "fiat_quarantine_depth",
            "Packets currently held in quarantine.",
        );
        registry.describe(
            "fiat_proxy_degraded",
            "1 while the proxy runs in control-plane degraded mode.",
        );
        registry.describe(
            "fiat_proxy_degraded_decisions_total",
            "Packets decided while in control-plane degraded mode.",
        );
        let stage = |s: &str| registry.histogram("fiat_proxy_stage_us", &[("stage", s)]);
        let allow_total = AllowReason::ALL.map(|r| {
            registry.counter(
                "fiat_proxy_decisions_total",
                &[("decision", "allow"), ("reason", r.as_str())],
            )
        });
        let drop_total = DropReason::ALL.map(|r| {
            registry.counter(
                "fiat_proxy_decisions_total",
                &[("decision", "drop"), ("reason", r.as_str())],
            )
        });
        ProxyTelemetry {
            journal: Journal::new(Self::JOURNAL_CAPACITY),
            stage_rule_learn: stage("rule_learn"),
            stage_rule_match: stage("rule_match"),
            stage_event_grouping: stage("event_grouping"),
            stage_classification: stage("classification"),
            stage_humanness: stage("humanness"),
            stage_decide: stage("decide"),
            allow_total,
            drop_total,
            quarantine_total: registry.counter(
                "fiat_proxy_decisions_total",
                &[("decision", "quarantine"), ("reason", "pending_proof")],
            ),
            quarantine_held: registry.counter("fiat_quarantine_held_total", &[]),
            quarantine_released_ctr: registry.counter("fiat_quarantine_released_total", &[]),
            quarantine_expired_ctr: registry.counter("fiat_quarantine_expired_total", &[]),
            quarantine_depth: registry.gauge("fiat_quarantine_depth", &[]),
            rules_gauge: registry.gauge("fiat_proxy_rules", &[]),
            open_events_gauge: registry.gauge("fiat_proxy_open_events", &[]),
            locked_devices_gauge: registry.gauge("fiat_proxy_locked_devices", &[]),
            devices_gauge: registry.gauge("fiat_proxy_devices", &[]),
            auth_verified: registry.counter("fiat_proxy_auth_total", &[("result", "verified")]),
            auth_rejected: registry.counter("fiat_proxy_auth_total", &[("result", "rejected")]),
            auth_errors: registry.counter("fiat_proxy_auth_total", &[("result", "error")]),
            lockouts: registry.counter("fiat_proxy_lockouts_total", &[]),
            retro_unverified: registry.counter("fiat_proxy_retro_unverified_total", &[]),
            degraded_gauge: registry.gauge("fiat_proxy_degraded", &[]),
            degraded_decisions: registry.counter("fiat_proxy_degraded_decisions_total", &[]),
            registry,
            clock,
        }
    }

    /// Packets decided while the proxy was in degraded mode.
    pub fn degraded_decision_count(&self) -> u64 {
        self.degraded_decisions.get()
    }

    /// Lockout episodes entered so far (one per episode).
    pub fn lockout_count(&self) -> u64 {
        self.lockouts.get()
    }

    /// The registry backing these handles (for exposition).
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The span clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Recent decisions, oldest first.
    pub fn journal(&self) -> &Journal<DecisionRecord> {
        &self.journal
    }

    /// Current value of the decision counter matching `d`.
    pub fn decision_count(&self, d: ProxyDecision) -> u64 {
        match d {
            ProxyDecision::Allow(r) => self.allow_total[r as usize].get(),
            ProxyDecision::Drop(r) => self.drop_total[r as usize].get(),
            ProxyDecision::Quarantine => self.quarantine_total.get(),
        }
    }

    /// Stage-latency histogram for a decision-path stage name (as used in
    /// the `stage` label), if it is one of the proxy's stages.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        match name {
            "rule_learn" => Some(&self.stage_rule_learn),
            "rule_match" => Some(&self.stage_rule_match),
            "event_grouping" => Some(&self.stage_event_grouping),
            "classification" => Some(&self.stage_classification),
            "humanness" => Some(&self.stage_humanness),
            "decide" => Some(&self.stage_decide),
            _ => None,
        }
    }

    fn note_decision(&self, ts: SimTime, device: u16, decision: ProxyDecision) {
        match decision {
            ProxyDecision::Allow(r) => self.allow_total[r as usize].inc(),
            ProxyDecision::Drop(r) => self.drop_total[r as usize].inc(),
            ProxyDecision::Quarantine => self.quarantine_total.inc(),
        }
        self.journal.push(DecisionRecord {
            ts,
            device,
            decision,
        });
    }
}

impl Default for ProxyTelemetry {
    /// A private registry timed by a [`WallClock`] — the configuration a
    /// real deployment wants when nothing else is specified.
    fn default() -> Self {
        Self::new(MetricRegistry::new(), Arc::new(WallClock::new()))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventFate {
    // Carries the original verdict's reason so every later packet of the
    // event is attributed to it (NonManual / ManualVerified / Cascade /
    // QuarantineReleased) or to the demotion that sealed it, not lumped
    // under a single label.
    AllowRest(AllowReason),
    DropRest(DropReason),
    // Verdict pending: hold further packets with the quarantine record.
    Quarantine,
}

struct OpenEvent {
    packets: Vec<PacketRecord>,
    last: SimTime,
    fate: Option<EventFate>,
}

/// A manual-classified event held pending its humanness proof. At most
/// one per device: the proxy quarantines the first unproven manual
/// event and demotes concurrent ones immediately, bounding held memory
/// to `quarantine_capacity` packets per device. The record outlives its
/// open event (the proof may arrive after the event-gap closes it) and
/// resolves lazily — released when a proof lands before `deadline`,
/// expired by the first operation that observes `now > deadline`.
struct QuarantineRecord {
    packets: Vec<PacketRecord>,
    class: EventClass,
    deadline: SimTime,
}

struct DeviceState {
    classifier: EventClassifier,
    classify_at: usize,
    open: Option<OpenEvent>,
    drops: VecDeque<SimTime>,
    locked: bool,
    quarantine: Option<QuarantineRecord>,
}

/// The FIAT proxy.
pub struct FiatProxy {
    config: ProxyConfig,
    store: TeeKeystore,
    keys: Paired,
    quic: QuicServer,
    validator: HumannessValidator,
    devices: HashMap<u16, DeviceState>,
    dns: DnsTable,
    started_at: Option<SimTime>,
    bootstrap_buffer: Vec<PacketRecord>,
    rules: Option<RuleTable>,
    human_valid_until: SimTime,
    audit: AuditLog,
    server_random_counter: u64,
    interactions: Option<InteractionGraph>,
    unknown_seen: HashSet<u16>,
    stats: ProxyStats,
    telemetry: ProxyTelemetry,
    released_packets: Vec<PacketRecord>,
    hook: Option<Box<dyn ProxyHook>>,
    fingerprinter: Option<Box<dyn FingerprintGate>>,
    degraded: bool,
}

impl FiatProxy {
    /// Build a proxy paired via `ceremony_secret`, using `validator` for
    /// humanness decisions. Telemetry goes to a private wall-clock
    /// registry; use [`FiatProxy::with_telemetry`] to share one.
    pub fn new(
        config: ProxyConfig,
        ceremony_secret: &[u8; 32],
        validator: HumannessValidator,
    ) -> Self {
        Self::with_telemetry(
            config,
            ceremony_secret,
            validator,
            ProxyTelemetry::default(),
        )
    }

    /// Build a proxy reporting into externally supplied telemetry — a
    /// shared [`MetricRegistry`] for exposition alongside other
    /// subsystems, or a simulated clock for deterministic experiments.
    pub fn with_telemetry(
        config: ProxyConfig,
        ceremony_secret: &[u8; 32],
        validator: HumannessValidator,
        telemetry: ProxyTelemetry,
    ) -> Self {
        let store = TeeKeystore::new();
        let (keys, psk) = pair(&store, ceremony_secret);
        let mut quic = QuicServer::new(psk);
        quic.set_telemetry(fiat_quic::ServerTelemetry::registered(&telemetry.registry));
        let mut audit = AuditLog::new();
        audit.set_max_entries(config.max_audit_entries);
        FiatProxy {
            config,
            store,
            keys,
            quic,
            validator,
            devices: HashMap::new(),
            dns: DnsTable::new(),
            started_at: None,
            bootstrap_buffer: Vec::new(),
            rules: None,
            human_valid_until: SimTime::ZERO,
            audit,
            server_random_counter: 0,
            interactions: None,
            unknown_seen: HashSet::new(),
            stats: ProxyStats::default(),
            telemetry,
            released_packets: Vec::new(),
            hook: None,
            fingerprinter: None,
            degraded: false,
        }
    }

    /// Install a decision-path observer (see [`ProxyHook`]). Probing is
    /// opt-in: without this call every hook site is a single branch on
    /// `None`.
    pub fn set_hook(&mut self, hook: Box<dyn ProxyHook>) {
        self.hook = Some(hook);
    }

    /// Install a behavioral fingerprint gate for unknown-MAC traffic
    /// (see [`FingerprintGate`]). The gate only takes effect when
    /// [`ProxyConfig::fingerprint_unknown`] is also set, so installing
    /// one under the default config changes nothing.
    pub fn set_fingerprinter(&mut self, gate: Box<dyn FingerprintGate>) {
        self.fingerprinter = Some(gate);
    }

    /// Decision counters accumulated since start.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The proxy's telemetry handles (registry, stage histograms, decision
    /// journal).
    pub fn telemetry(&self) -> &ProxyTelemetry {
        &self.telemetry
    }

    /// Install a device-interaction DAG (§7 "Complex Scenarios"): manual
    /// traffic toward a target device is allowed while one of its
    /// triggers has a recently authorized event.
    pub fn set_interactions(&mut self, graph: InteractionGraph) {
        self.interactions = Some(graph);
    }

    /// Mutable access to the interaction graph (e.g. to add edges live).
    pub fn interactions_mut(&mut self) -> Option<&mut InteractionGraph> {
        self.interactions.as_mut()
    }

    /// Register a device: its classifier and command-completion threshold
    /// N (the first-N allowance is `min(N, classify_at_cap)`; for N = 1
    /// devices the very first packet is held for an instant verdict).
    pub fn register_device(
        &mut self,
        device: u16,
        classifier: EventClassifier,
        min_packets_to_complete: usize,
    ) {
        let classify_at = min_packets_to_complete
            .min(self.config.classify_at_cap)
            .max(1);
        let prev = self.devices.insert(
            device,
            DeviceState {
                classifier,
                classify_at,
                open: None,
                drops: VecDeque::new(),
                locked: false,
                quarantine: None,
            },
        );
        if prev.as_ref().is_some_and(|d| d.locked) {
            self.telemetry.locked_devices_gauge.dec();
        }
        if prev.as_ref().is_some_and(|d| d.open.is_some()) {
            self.telemetry.open_events_gauge.dec();
        }
        if let Some(q) = prev.as_ref().and_then(|d| d.quarantine.as_ref()) {
            // Re-registration discards any pending quarantine with the
            // rest of the device state; keep the depth gauge honest.
            self.telemetry
                .quarantine_depth
                .add(-(q.packets.len() as i64));
        }
        self.telemetry.devices_gauge.set(self.devices.len() as i64);
    }

    /// Provide DNS knowledge (the proxy observes DNS responses on-path).
    pub fn set_dns(&mut self, dns: DnsTable) {
        self.dns = dns;
    }

    /// Begin operation: bootstrap runs until `now + config.bootstrap`.
    pub fn start(&mut self, now: SimTime) {
        self.started_at = Some(now);
    }

    /// Learned rule count (0 until bootstrap completes).
    pub fn rule_count(&self) -> usize {
        self.rules.as_ref().map_or(0, |r| r.len())
    }

    /// The audit log.
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// Sample the entry count of every growable state surface — the
    /// long-horizon soak's accountant calls this on a simulated-time
    /// cadence and asserts [`StateSize::total`] against a hard budget.
    pub fn state_size(&self) -> StateSize {
        let mut size = StateSize {
            rules: self.rules.as_ref().map_or(0, |r| r.len()),
            rule_ghosts: self.rules.as_ref().map_or(0, |r| r.ghost_len()),
            audit_entries: self.audit.entries().len(),
            replay_tickets: self.quic.replay_store().tickets(),
            replay_entries: self.quic.replay_store().total_entries(),
            replay_epochs: self.quic.replay_store().live_epochs().len(),
            bootstrap_buffered: self.bootstrap_buffer.len(),
            released_pending: self.released_packets.len(),
            fingerprint_evidence: self.fingerprinter.as_ref().map_or(0, |g| g.state_size()),
            ..StateSize::default()
        };
        for dev in self.devices.values() {
            if let Some(open) = &dev.open {
                size.open_events += 1;
                size.open_packets += open.packets.len();
            }
            if let Some(q) = &dev.quarantine {
                size.quarantine_records += 1;
                size.quarantine_held += q.packets.len();
            }
        }
        size
    }

    /// Whether a device is locked out.
    pub fn is_locked(&self, device: u16) -> bool {
        self.devices.get(&device).is_some_and(|d| d.locked)
    }

    /// Manually clear a lockout (the §5.4 user verification). Also closes
    /// the device's open event: its fate was `DropRest`, and leaving it
    /// open would keep dropping traffic as `ManualUnverified` until the
    /// event gap expires — the user just vouched for the device.
    ///
    /// A pending quarantine record is deliberately *not* touched: the
    /// user vouched for the device being safe to re-enable, not for the
    /// specific held command, which still needs its proof (or expires at
    /// its deadline as usual).
    pub fn clear_lockout(&mut self, device: u16) {
        if let Some(d) = self.devices.get_mut(&device) {
            if d.locked {
                self.telemetry.locked_devices_gauge.dec();
                if let Some(h) = &self.hook {
                    h.on_lockout_cleared(device);
                }
            }
            d.locked = false;
            d.drops.clear();
            if d.open.take().is_some() {
                self.telemetry.open_events_gauge.dec();
            }
        }
    }

    /// Enter or leave control-plane degraded mode. While degraded the
    /// proxy keeps deciding against its last-known-good key epochs
    /// (rotation and retirement are the control plane's job, so the
    /// epoch window simply freezes), but every decision is flagged in
    /// telemetry and the transition itself is committed to the audit
    /// chain under the [`AUDIT_PROXY_DEVICE`] sentinel. Idempotent:
    /// repeating the current state records nothing.
    pub fn set_degraded(&mut self, now: SimTime, degraded: bool) {
        if self.degraded == degraded {
            return;
        }
        self.degraded = degraded;
        if degraded {
            self.telemetry.degraded_gauge.inc();
        } else {
            self.telemetry.degraded_gauge.dec();
        }
        self.audit.append(AuditEntry {
            ts: now,
            device: AUDIT_PROXY_DEVICE,
            // The transition is proxy-wide; Control is the neutral class
            // for non-event audit entries.
            class: EventClass::Control,
            verdict: if degraded {
                AuditVerdict::DegradedModeEntered
            } else {
                AuditVerdict::DegradedModeExited
            },
        });
    }

    /// Whether the proxy is in control-plane degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Epoch new session tickets are issued under.
    pub fn ticket_epoch(&self) -> u32 {
        self.quic.current_epoch()
    }

    /// Oldest ticket epoch still accepted for 0-RTT.
    pub fn oldest_live_epoch(&self) -> u32 {
        self.quic.oldest_live_epoch()
    }

    /// Rotate to a fresh ticket epoch (a control-plane action). Old
    /// epochs keep working until retired, so rotation alone never
    /// breaks a client's 0-RTT.
    pub fn rotate_ticket_epoch(&mut self) -> u32 {
        self.quic.rotate_epoch()
    }

    /// Retire ticket epochs below `min_live`, dropping their replay
    /// state wholesale (bounded memory). A 0-RTT proof under a retired
    /// epoch is answered `RetiredEpoch`, which the app treats as
    /// fall-back-to-1-RTT. Returns how many epochs were newly retired.
    pub fn retire_ticket_epochs_below(&mut self, min_live: u32) -> u32 {
        self.quic.retire_epochs_below(min_live)
    }

    /// Export the proxy's full decision state as a versioned
    /// [`HomeSnapshot`] (see `crate::snapshot` for format guarantees).
    /// Every collection is emitted sorted, so the same state always
    /// serializes to the same bytes.
    pub fn snapshot(&self) -> HomeSnapshot {
        let mut devices: Vec<DeviceSnapshot> = self
            .devices
            .iter()
            .map(|(&id, d)| DeviceSnapshot {
                device: id,
                classify_at: d.classify_at,
                open: d.open.as_ref().map(|e| OpenEventSnapshot {
                    packets: e.packets.clone(),
                    last: e.last,
                    fate: e.fate.map(|f| match f {
                        EventFate::AllowRest(r) => EventFateSnapshot::AllowRest(r),
                        EventFate::DropRest(r) => EventFateSnapshot::DropRest(r),
                        EventFate::Quarantine => EventFateSnapshot::Quarantine,
                    }),
                }),
                drops: d.drops.iter().copied().collect(),
                locked: d.locked,
                quarantine: d.quarantine.as_ref().map(|q| QuarantineSnapshot {
                    packets: q.packets.clone(),
                    class: q.class,
                    deadline: q.deadline,
                }),
            })
            .collect();
        devices.sort_by_key(|d| d.device);
        // LRU order (not sorted): eviction order is semantic state.
        let rules = self.rules.as_ref().map(|table| {
            table
                .export_lru()
                .into_iter()
                .map(|(dev, key)| (dev, key.resolve(&self.dns)))
                .collect::<Vec<(u16, FlowKey)>>()
        });
        let rule_ghosts = self
            .rules
            .as_ref()
            .map(|table| {
                table
                    .export_ghosts()
                    .into_iter()
                    .map(|g| GhostSnapshot {
                        device: g.device,
                        key: g.key.resolve(&self.dns),
                        last_ts: g.last_ts,
                        last_bin: g.last_bin,
                    })
                    .collect::<Vec<GhostSnapshot>>()
            })
            .unwrap_or_default();
        let mut unknown_seen: Vec<u16> = self.unknown_seen.iter().copied().collect();
        unknown_seen.sort_unstable();
        HomeSnapshot {
            version: SNAPSHOT_VERSION,
            started_at: self.started_at,
            human_valid_until: self.human_valid_until,
            server_random_counter: self.server_random_counter,
            degraded: self.degraded,
            dns: self.dns.clone(),
            bootstrap_buffer: self.bootstrap_buffer.clone(),
            rules,
            rule_ghosts,
            unknown_seen,
            devices,
            released_packets: self.released_packets.clone(),
            stats: self.stats,
            audit_entries: self.audit.entries().to_vec(),
            audit_hashes: self.audit.hashes().iter().map(|h| h.to_vec()).collect(),
            audit_checkpoint: self.audit.checkpoint().map(|c| c.to_vec()),
            audit_truncated: self.audit.truncated(),
            quic: (&self.quic.to_image()).into(),
        }
    }

    /// Rebuild a proxy from a [`HomeSnapshot`] and resume deciding.
    ///
    /// `ceremony_secret` must be the secret the snapshotted proxy was
    /// paired with: the pairing PSK (and with it the per-epoch ticket
    /// secrets clients hold) is re-derived, so issued 0-RTT tickets keep
    /// working across the restore. The 1-RTT session key is deliberately
    /// not part of a snapshot — clients re-handshake for 1-RTT.
    /// `classifiers` re-supplies each device's classifier (model weights
    /// are provisioning data, not state).
    ///
    /// Restore is telemetry-silent: gauges and counters in `telemetry`
    /// are *not* replayed, because the registry that witnessed the
    /// pre-snapshot traffic already counted it. A fleet that folds the
    /// old and new registries additively gets totals byte-identical to
    /// an uninterrupted run — the invariant the fleet rebalance tests
    /// pin. The interaction graph and any hook are not captured in v1;
    /// re-install them after restore if the home uses them.
    pub fn restore(
        config: ProxyConfig,
        ceremony_secret: &[u8; 32],
        validator: HumannessValidator,
        telemetry: ProxyTelemetry,
        snap: &HomeSnapshot,
        mut classifiers: impl FnMut(u16) -> EventClassifier,
    ) -> Result<Self, SnapshotError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snap.version));
        }
        let hashes: Vec<[u8; 32]> = snap
            .audit_hashes
            .iter()
            .map(|h| <[u8; 32]>::try_from(h.as_slice()))
            .collect::<Result<_, _>>()
            .map_err(|_| SnapshotError::AuditChainInvalid)?;
        let checkpoint = snap
            .audit_checkpoint
            .as_ref()
            .map(|c| <[u8; 32]>::try_from(c.as_slice()))
            .transpose()
            .map_err(|_| SnapshotError::AuditChainInvalid)?;
        let mut audit = AuditLog::from_parts_at(
            checkpoint,
            snap.audit_truncated,
            snap.audit_entries.clone(),
            hashes,
        )
        .ok_or(SnapshotError::AuditChainInvalid)?;
        audit.set_max_entries(config.max_audit_entries);
        let store = TeeKeystore::new();
        let (keys, psk) = pair(&store, ceremony_secret);
        let mut quic = QuicServer::new(psk);
        quic.set_telemetry(fiat_quic::ServerTelemetry::registered(&telemetry.registry));
        quic.restore_image(&(&snap.quic).into());
        let mut dns = snap.dns.clone();
        let rules = snap.rules.as_ref().map(|list| {
            let mut table =
                RuleTable::with_telemetry(RuleTelemetry::registered(&telemetry.registry));
            table.set_tolerance(config.tolerance);
            // LRU order: inserts re-assign fresh stamps 0..n, preserving
            // the snapshotted relative eviction order. Ghosts restored
            // before the cap is applied so nothing is spuriously evicted.
            for (device, key) in list {
                let ikey = key.intern(&mut dns);
                table.insert(*device, ikey);
            }
            for g in &snap.rule_ghosts {
                let ikey = g.key.intern(&mut dns);
                table.insert_ghost(crate::predict::GhostState {
                    device: g.device,
                    key: ikey,
                    last_ts: g.last_ts,
                    last_bin: g.last_bin,
                });
            }
            table.set_capacity(config.max_rules);
            table
        });
        let devices = snap
            .devices
            .iter()
            .map(|d| {
                (
                    d.device,
                    DeviceState {
                        classifier: classifiers(d.device),
                        classify_at: d.classify_at,
                        open: d.open.as_ref().map(|e| OpenEvent {
                            packets: e.packets.clone(),
                            last: e.last,
                            fate: e.fate.map(|f| match f {
                                EventFateSnapshot::AllowRest(r) => EventFate::AllowRest(r),
                                EventFateSnapshot::DropRest(r) => EventFate::DropRest(r),
                                EventFateSnapshot::Quarantine => EventFate::Quarantine,
                            }),
                        }),
                        drops: d.drops.iter().copied().collect(),
                        locked: d.locked,
                        quarantine: d.quarantine.as_ref().map(|q| QuarantineRecord {
                            packets: q.packets.clone(),
                            class: q.class,
                            deadline: q.deadline,
                        }),
                    },
                )
            })
            .collect();
        Ok(FiatProxy {
            config,
            store,
            keys,
            quic,
            validator,
            devices,
            dns,
            started_at: snap.started_at,
            bootstrap_buffer: snap.bootstrap_buffer.clone(),
            rules,
            human_valid_until: snap.human_valid_until,
            audit,
            server_random_counter: snap.server_random_counter,
            interactions: None,
            unknown_seen: snap.unknown_seen.iter().copied().collect(),
            stats: snap.stats,
            telemetry,
            released_packets: snap.released_packets.clone(),
            hook: None,
            // Like the hook and interaction graph, the fingerprint gate
            // is runtime wiring, not snapshotted state — re-install it
            // after restore. Its evidence windows restart from empty.
            fingerprinter: None,
            degraded: snap.degraded,
        })
    }

    /// Accept the app's handshake and issue a ticket.
    pub fn accept_handshake(&mut self, hello: &ClientHello) -> ServerHello {
        self.server_random_counter += 1;
        let mut random = [0u8; 32];
        random[..8].copy_from_slice(&self.server_random_counter.to_be_bytes());
        self.quic.accept(hello, random)
    }

    /// Process a 0-RTT auth message; returns `Ok(true)` if humanness was
    /// verified (and the validity window refreshed).
    pub fn on_auth_zero_rtt(
        &mut self,
        pkt: &ZeroRttPacket,
        now: SimTime,
    ) -> Result<bool, AuthError> {
        let payload = match self.quic.accept_zero_rtt(pkt) {
            Ok(p) => p,
            Err(e) => {
                self.telemetry.auth_errors.inc();
                return Err(AuthError::Transport(e));
            }
        };
        self.verify_and_validate(&payload, now)
    }

    /// Process a 1-RTT auth message.
    pub fn on_auth_one_rtt(
        &mut self,
        pkt: &fiat_quic::Packet,
        now: SimTime,
    ) -> Result<bool, AuthError> {
        let payload = match self.quic.open(pkt) {
            Ok(p) => p,
            Err(e) => {
                self.telemetry.auth_errors.inc();
                return Err(AuthError::Transport(e));
            }
        };
        self.verify_and_validate(&payload, now)
    }

    fn verify_and_validate(&mut self, payload: &[u8], now: SimTime) -> Result<bool, AuthError> {
        let Some((msg_bytes, tag)) = FiatApp::split_payload(payload) else {
            self.telemetry.auth_errors.inc();
            return Err(AuthError::Malformed);
        };
        if !self
            .store
            .verify(self.keys.sign_key, msg_bytes, tag)
            .expect("sealed sign key")
        {
            self.telemetry.auth_errors.inc();
            return Err(AuthError::BadSignature);
        }
        let Some(msg) = AuthMessage::decode(msg_bytes) else {
            self.telemetry.auth_errors.inc();
            return Err(AuthError::Malformed);
        };
        let span = Span::enter(&self.telemetry.stage_humanness, &self.telemetry.clock);
        let human = self.validator.validate_features(&msg.features, msg.truth);
        span.exit();
        if human {
            self.human_valid_until = now + self.config.human_valid_window;
            self.telemetry.auth_verified.inc();
            if self.config.proof_deadline.is_some() {
                self.resolve_quarantines(now);
            }
        } else {
            self.telemetry.auth_rejected.inc();
        }
        if let Some(h) = &self.hook {
            h.on_proof(now, human);
        }
        Ok(human)
    }

    /// A fresh humanness proof just landed: resolve every pending
    /// quarantine — release records still within their deadline, expire
    /// the ones the proof missed. Devices are visited in sorted id order
    /// so the audit trail is deterministic.
    fn resolve_quarantines(&mut self, now: SimTime) {
        let mut ids: Vec<u16> = self
            .devices
            .iter()
            .filter(|(_, d)| d.quarantine.is_some())
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let dev = self.devices.get_mut(&id).expect("id from keys()");
            let deadline = dev.quarantine.as_ref().expect("filtered above").deadline;
            if now > deadline {
                Self::expire_quarantine(
                    id,
                    dev,
                    &self.config,
                    &mut self.audit,
                    &self.telemetry,
                    &mut self.stats,
                    self.hook.as_deref(),
                    now,
                );
                continue;
            }
            let q = dev.quarantine.take().expect("filtered above");
            self.telemetry
                .quarantine_released_ctr
                .add(q.packets.len() as u64);
            self.telemetry
                .quarantine_depth
                .add(-(q.packets.len() as i64));
            if let Some(h) = &self.hook {
                h.on_quarantine_released(now, id, q.packets.len() as u64);
            }
            self.released_packets.extend(q.packets);
            self.audit.append(AuditEntry {
                ts: now,
                device: id,
                class: q.class,
                verdict: AuditVerdict::QuarantineReleased,
            });
            if let Some(g) = &mut self.interactions {
                g.record_authorized(id, now);
            }
            if let Some(open) = &mut dev.open {
                if open.fate == Some(EventFate::Quarantine) {
                    open.fate = Some(EventFate::AllowRest(AllowReason::QuarantineReleased));
                }
            }
        }
    }

    /// Demote an expired (or cap-demoted) quarantine record: the held
    /// packets are discarded, the episode counts toward the lockout
    /// window, and the open event (if still this one) seals as
    /// `QuarantineExpired`. The episode time is `min(now, deadline)`:
    /// for a lazy expiry (`now` past the deadline) that is the deadline
    /// itself — resolution is lazy, the outcome must not depend on when
    /// it is observed — while a record-cap demotion lands before its
    /// deadline and is credited at the demotion time, never a future
    /// timestamp that would poison the monotone lockout clamp.
    #[allow(clippy::too_many_arguments)]
    fn expire_quarantine(
        device: u16,
        dev: &mut DeviceState,
        config: &ProxyConfig,
        audit: &mut AuditLog,
        telemetry: &ProxyTelemetry,
        stats: &mut ProxyStats,
        hook: Option<&dyn ProxyHook>,
        now: SimTime,
    ) {
        let q = dev.quarantine.take().expect("caller checked presence");
        let at = now.min(q.deadline);
        stats.quarantine_expired += q.packets.len() as u64;
        telemetry.quarantine_expired_ctr.add(q.packets.len() as u64);
        telemetry.quarantine_depth.add(-(q.packets.len() as i64));
        if let Some(h) = hook {
            h.on_quarantine_expired(at, device, q.packets.len() as u64);
        }
        let locked = Self::record_unverified_drop(&mut dev.drops, at, config);
        if locked && !dev.locked {
            dev.locked = true;
            telemetry.locked_devices_gauge.inc();
            telemetry.lockouts.inc();
            if let Some(h) = hook {
                h.on_lockout(at, device);
            }
        }
        audit.append(AuditEntry {
            ts: at,
            device,
            class: q.class,
            verdict: AuditVerdict::QuarantineExpired,
        });
        if let Some(open) = &mut dev.open {
            if open.fate == Some(EventFate::Quarantine) {
                open.fate = Some(EventFate::DropRest(DropReason::QuarantineExpired));
            }
        }
    }

    /// Drain packets released from quarantine since the last call, in
    /// release order. The caller (the interception layer) forwards them:
    /// a released command reaches the device late, but reaches it.
    pub fn take_quarantine_releases(&mut self) -> Vec<PacketRecord> {
        std::mem::take(&mut self.released_packets)
    }

    /// Whether a humanness proof is currently fresh.
    pub fn human_fresh(&self, now: SimTime) -> bool {
        now <= self.human_valid_until
    }

    /// Decide one intercepted packet (timestamped by its `ts`).
    pub fn on_packet(&mut self, pkt: &PacketRecord) -> ProxyDecision {
        let clock = Arc::clone(&self.telemetry.clock);
        let span = Span::enter(&self.telemetry.stage_decide, &clock);
        let d = self.decide(pkt);
        span.exit();
        if self.degraded {
            self.telemetry.degraded_decisions.inc();
        }
        self.telemetry.note_decision(pkt.ts, pkt.device, d);
        if let Some(h) = &self.hook {
            h.on_decision(pkt.ts, pkt.device, d);
        }
        match d {
            ProxyDecision::Allow(AllowReason::Bootstrap) => self.stats.bootstrap += 1,
            ProxyDecision::Allow(AllowReason::RuleHit) => self.stats.rule_hit += 1,
            ProxyDecision::Allow(AllowReason::FirstN) => self.stats.first_n += 1,
            ProxyDecision::Allow(AllowReason::NonManual) => self.stats.non_manual += 1,
            ProxyDecision::Allow(AllowReason::ManualVerified) => self.stats.manual_verified += 1,
            ProxyDecision::Allow(AllowReason::Cascade) => self.stats.cascade += 1,
            ProxyDecision::Allow(AllowReason::UnknownDevice) => self.stats.unknown_device += 1,
            ProxyDecision::Allow(AllowReason::QuarantineReleased) => {
                self.stats.quarantine_released += 1
            }
            ProxyDecision::Drop(DropReason::ManualUnverified) => self.stats.dropped_unverified += 1,
            ProxyDecision::Drop(DropReason::LockedOut) => self.stats.dropped_lockout += 1,
            ProxyDecision::Drop(DropReason::QuarantineExpired) => {
                self.stats.dropped_quarantine += 1
            }
            ProxyDecision::Allow(AllowReason::FingerprintMatched) => {
                self.stats.fingerprint_matched += 1
            }
            ProxyDecision::Drop(DropReason::UnknownQuarantined) => self.stats.dropped_unknown += 1,
            ProxyDecision::Quarantine => self.stats.quarantined += 1,
        }
        d
    }

    fn decide(&mut self, pkt: &PacketRecord) -> ProxyDecision {
        let now = pkt.ts;
        let started = self.started_at.expect("proxy not started");

        if self.devices.get(&pkt.device).is_some_and(|d| d.locked) {
            return ProxyDecision::Drop(DropReason::LockedOut);
        }

        // Bootstrap: allow and learn.
        if now - started < self.config.bootstrap {
            self.bootstrap_buffer.push(pkt.clone());
            return ProxyDecision::Allow(AllowReason::Bootstrap);
        }
        if self.rules.is_none() {
            let span = Span::enter(&self.telemetry.stage_rule_learn, &self.telemetry.clock);
            let engine = PredictabilityEngine::new(self.config.flow_def)
                .with_tolerance(self.config.tolerance);
            let mut rules = RuleTable::learn_instrumented(
                &engine,
                &self.bootstrap_buffer,
                &self.dns,
                RuleTelemetry::registered(&self.telemetry.registry),
            );
            rules.set_capacity(self.config.max_rules);
            span.exit();
            self.telemetry.rules_gauge.set(rules.len() as i64);
            self.rules = Some(rules);
            self.bootstrap_buffer.clear();
            self.bootstrap_buffer.shrink_to_fit();
        }

        // Rule hit: predictable. The touch variant refreshes the rule's
        // LRU stamp (bounded mode evicts least-recently-matched) and
        // advances the ghost re-learn path on misses of evicted keys.
        let span = Span::enter(&self.telemetry.stage_rule_match, &self.telemetry.clock);
        let hit = self.rules.as_mut().expect("rules learned").matches_touch(
            self.config.flow_def,
            pkt,
            &self.dns,
        );
        span.exit();
        if hit {
            return ProxyDecision::Allow(AllowReason::RuleHit);
        }

        // Unpredictable: event path.
        let human_fresh = now <= self.human_valid_until;
        let gap = self.config.event_gap;
        let Some(dev) = self.devices.get_mut(&pkt.device) else {
            // Unknown device. With the fingerprint gate enabled its
            // traffic is identified behaviorally: packets are allowed
            // while evidence accumulates (bounded window, so an attacker
            // cannot complete a long command before the verdict), then
            // the sealed verdict — matched / spoof-suspected / no match
            // — decides every later packet. One audit entry per device,
            // written on the sealing edge.
            if self.config.fingerprint_unknown {
                if let Some(gate) = self.fingerprinter.as_mut() {
                    let obs = gate.observe(pkt, &self.dns);
                    if obs.just_sealed {
                        let verdict = match obs.verdict {
                            FingerprintVerdict::Match(_) => AuditVerdict::FingerprintMatched,
                            FingerprintVerdict::Spoof { .. } => AuditVerdict::SpoofSuspected,
                            _ => AuditVerdict::UnknownQuarantined,
                        };
                        self.audit.append(AuditEntry {
                            ts: now,
                            device: pkt.device,
                            class: EventClass::Control,
                            verdict,
                        });
                    }
                    return match obs.verdict {
                        FingerprintVerdict::Pending => {
                            ProxyDecision::Allow(AllowReason::UnknownDevice)
                        }
                        FingerprintVerdict::Match(_) => {
                            ProxyDecision::Allow(AllowReason::FingerprintMatched)
                        }
                        FingerprintVerdict::Spoof { .. } | FingerprintVerdict::NoMatch => {
                            ProxyDecision::Drop(DropReason::UnknownQuarantined)
                        }
                    };
                }
            }
            // Legacy path: fail open during incremental deployment,
            // attributed to its own reason (not FirstN) so the stat and
            // per-reason counter stay honest. Audited once per device at
            // first sighting so the operator can see which devices
            // bypass enforcement entirely; per-packet entries would let
            // an unenrolled chatty device flood the hash chain.
            if self.unknown_seen.insert(pkt.device) {
                self.audit.append(AuditEntry {
                    ts: now,
                    device: pkt.device,
                    // No classifier to consult; Control is the neutral
                    // placeholder class for unclassified traffic.
                    class: EventClass::Control,
                    verdict: AuditVerdict::AllowedUnknownDevice,
                });
            }
            return ProxyDecision::Allow(AllowReason::UnknownDevice);
        };

        // Lazily expire this device's quarantine before anything else
        // observes `now`: the packet that reveals the deadline has passed
        // must see the post-expiry world (sealed fate, lockout credit),
        // exactly as if a timer had fired at the deadline.
        if dev.quarantine.as_ref().is_some_and(|q| now > q.deadline) {
            Self::expire_quarantine(
                pkt.device,
                dev,
                &self.config,
                &mut self.audit,
                &self.telemetry,
                &mut self.stats,
                self.hook.as_deref(),
                now,
            );
            if dev.locked {
                return ProxyDecision::Drop(DropReason::LockedOut);
            }
        }

        // Close a stale event. If it ended below the first-N window it
        // never met the classifier; give it its retrospective verdict.
        let span = Span::enter(&self.telemetry.stage_event_grouping, &self.telemetry.clock);
        if dev.open.as_ref().is_some_and(|e| now - e.last >= gap) {
            let stale = dev.open.take().expect("presence checked above");
            self.telemetry.open_events_gauge.dec();
            if stale.fate.is_none() && self.config.retro_classify {
                Self::retro_close(
                    pkt.device,
                    dev,
                    stale,
                    &self.config,
                    self.human_valid_until,
                    self.interactions.as_ref(),
                    &mut self.audit,
                    &self.telemetry,
                    &mut self.stats,
                    self.hook.as_deref(),
                );
                // The retrospective episode may have been the one that
                // locked the device; the packet that exposed it must not
                // open a fresh event.
                if dev.locked {
                    span.exit();
                    return ProxyDecision::Drop(DropReason::LockedOut);
                }
            }
        }
        if dev.open.is_none() {
            self.telemetry.open_events_gauge.inc();
        }
        let open = dev.open.get_or_insert_with(|| OpenEvent {
            packets: Vec::new(),
            last: now,
            fate: None,
        });
        // Record the packet only while the verdict is pending: packets
        // are read exactly at the classification point (or at a retro
        // close, both fate-`None` paths), so accumulating them after the
        // fate is sealed was pure unbounded growth — a single long-lived
        // chatty event would hold every packet it ever sent (and a
        // quarantined one stored each held packet twice). Found by the
        // long-horizon soak's state accountant.
        if open.fate.is_none() {
            open.packets.push(pkt.clone());
        }
        // High-water mark, mirroring `events::group_events`: a backwards
        // (reordered) packet joins the open event — its saturating gap is
        // zero — but must not rewind `last`, or the next in-order packet
        // measures an inflated gap and spuriously closes the event.
        open.last = open.last.max(now);
        span.exit();

        if let Some(fate) = open.fate {
            return match fate {
                EventFate::AllowRest(reason) => ProxyDecision::Allow(reason),
                EventFate::DropRest(reason) => ProxyDecision::Drop(reason),
                EventFate::Quarantine => {
                    let q = dev
                        .quarantine
                        .as_mut()
                        .expect("quarantine fate implies a live record");
                    if q.packets.len() < self.config.quarantine_capacity {
                        q.packets.push(pkt.clone());
                        self.telemetry.quarantine_held.inc();
                        self.telemetry.quarantine_depth.inc();
                        if let Some(h) = &self.hook {
                            h.on_quarantine_held(now, pkt.device);
                        }
                        ProxyDecision::Quarantine
                    } else {
                        // Capacity overflow: shed the packet. No audit
                        // entry and no lockout credit — the episode is
                        // already pending exactly one verdict.
                        ProxyDecision::Drop(DropReason::ManualUnverified)
                    }
                }
            };
        }

        if open.packets.len() < dev.classify_at {
            return ProxyDecision::Allow(AllowReason::FirstN);
        }

        // Classification point reached.
        let ev = UnpredictableEvent {
            device: pkt.device,
            packets: (0..open.packets.len()).collect(),
            start: open.packets[0].ts,
            end: open.last,
        };
        let span = Span::enter(&self.telemetry.stage_classification, &self.telemetry.clock);
        let class = dev.classifier.classify_event(&ev, &open.packets);
        span.exit();
        if !class.is_manual() {
            open.fate = Some(EventFate::AllowRest(AllowReason::NonManual));
            self.audit.append(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedNonManual,
            });
            return ProxyDecision::Allow(AllowReason::NonManual);
        }

        if human_fresh {
            open.fate = Some(EventFate::AllowRest(AllowReason::ManualVerified));
            if let Some(g) = &mut self.interactions {
                g.record_authorized(pkt.device, now);
            }
            self.audit.append(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedManualVerified,
            });
            return ProxyDecision::Allow(AllowReason::ManualVerified);
        }

        // No direct humanness proof: an interaction-graph cascade (Alexa
        // -> light) can still vouch for this device.
        if self
            .interactions
            .as_ref()
            .is_some_and(|g| g.cascade_covers(pkt.device, now))
        {
            open.fate = Some(EventFate::AllowRest(AllowReason::Cascade));
            if let Some(g) = &mut self.interactions {
                g.record_authorized(pkt.device, now);
            }
            self.audit.append(AuditEntry {
                ts: now,
                device: pkt.device,
                class,
                verdict: AuditVerdict::AllowedCascade,
            });
            return ProxyDecision::Allow(AllowReason::Cascade);
        }

        // Unverified manual event. With quarantine enabled the proof may
        // merely be late (lost frame, retry in flight): hold the event
        // pending its deadline instead of demoting it — unless this
        // device already has a verdict pending, which bounds held state
        // to one record per device and keeps a concurrent second event
        // on today's immediate-demotion path.
        let quarantine_slot_free = dev.quarantine.is_none();
        if let Some(deadline) = self.config.proof_deadline {
            if quarantine_slot_free {
                // Admission ends the per-device borrow: the home-wide
                // record cap is counted (and enforced) across *all*
                // devices before this record joins.
                if let Some(cap) = self.config.max_quarantine_records {
                    let live = self
                        .devices
                        .values()
                        .filter(|d| d.quarantine.is_some())
                        .count();
                    if live >= cap.max(1) {
                        self.demote_oldest_quarantine(now);
                    }
                }
                let dev = self.devices.get_mut(&pkt.device).expect("registered above");
                dev.quarantine = Some(QuarantineRecord {
                    packets: vec![pkt.clone()],
                    class,
                    deadline: now + deadline,
                });
                if let Some(open) = &mut dev.open {
                    open.fate = Some(EventFate::Quarantine);
                }
                self.telemetry.quarantine_held.inc();
                self.telemetry.quarantine_depth.inc();
                if let Some(h) = &self.hook {
                    h.on_quarantine_held(now, pkt.device);
                }
                return ProxyDecision::Quarantine;
            }
        }

        // Drop and count toward lockout.
        open.fate = Some(EventFate::DropRest(DropReason::ManualUnverified));
        let locked = Self::record_unverified_drop(&mut dev.drops, now, &self.config);
        if locked {
            dev.locked = true;
            self.telemetry.locked_devices_gauge.inc();
            self.telemetry.lockouts.inc();
            if let Some(h) = &self.hook {
                h.on_lockout(now, pkt.device);
            }
        }
        self.audit.append(AuditEntry {
            ts: now,
            device: pkt.device,
            class,
            verdict: if locked {
                AuditVerdict::LockedOut
            } else {
                AuditVerdict::DroppedUnverified
            },
        });
        ProxyDecision::Drop(DropReason::ManualUnverified)
    }

    /// Enforce [`ProxyConfig::max_quarantine_records`]: demote the live
    /// record with the oldest deadline (ties: lowest device id) exactly
    /// as if its deadline had passed. The episode is credited at
    /// `min(now, deadline)` — early demotion must never stamp a *future*
    /// time into the monotone lockout window.
    fn demote_oldest_quarantine(&mut self, now: SimTime) {
        let mut victim: Option<(SimTime, u16)> = None;
        for (&id, d) in &self.devices {
            if let Some(q) = &d.quarantine {
                let cand = (q.deadline, id);
                if victim.is_none_or(|v| cand < v) {
                    victim = Some(cand);
                }
            }
        }
        let Some((_, id)) = victim else { return };
        let dev = self.devices.get_mut(&id).expect("victim from scan");
        Self::expire_quarantine(
            id,
            dev,
            &self.config,
            &mut self.audit,
            &self.telemetry,
            &mut self.stats,
            self.hook.as_deref(),
            now,
        );
    }

    /// Record an unverified-manual episode at `at` into the sliding
    /// lockout window and prune expired entries; returns whether the
    /// window now exceeds the tolerance. Episode times are clamped to a
    /// monotone high-water mark — with reordered packets (or a retro
    /// closure of an old event) `at` can precede the newest recorded
    /// episode, and a non-monotone deque would break the front-pruning:
    /// `SimTime` subtraction saturates, so an old `at` reads every gap
    /// as zero and stale episodes would never expire. The same clamp
    /// semantics apply in `decide()`, `retro_close` (and through it
    /// `flush`).
    fn record_unverified_drop(
        drops: &mut VecDeque<SimTime>,
        at: SimTime,
        config: &ProxyConfig,
    ) -> bool {
        let at = drops.back().map_or(at, |&newest| newest.max(at));
        drops.push_back(at);
        while drops
            .front()
            .is_some_and(|&t| at - t > config.lockout_window)
        {
            drops.pop_front();
        }
        drops.len() as u32 > config.lockout_threshold
    }

    /// Close every open event whose gap has expired by `now`, applying
    /// the same retrospective classification as the packet path. Call at
    /// the end of a capture so trailing sub-window events still reach
    /// the audit log and the lockout counter.
    pub fn flush(&mut self, now: SimTime) {
        let gap = self.config.event_gap;
        let mut ids: Vec<u16> = self.devices.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let dev = self.devices.get_mut(&id).expect("id from keys()");
            // Expire overdue quarantines first, for the same reason the
            // packet path does: the expiry (and any lockout it causes)
            // happened at the deadline, before this flush.
            if dev.quarantine.as_ref().is_some_and(|q| now > q.deadline) {
                Self::expire_quarantine(
                    id,
                    dev,
                    &self.config,
                    &mut self.audit,
                    &self.telemetry,
                    &mut self.stats,
                    self.hook.as_deref(),
                    now,
                );
            }
            if dev.open.as_ref().is_some_and(|e| now - e.last >= gap) {
                let stale = dev.open.take().expect("presence checked above");
                self.telemetry.open_events_gauge.dec();
                if stale.fate.is_none() && self.config.retro_classify {
                    Self::retro_close(
                        id,
                        dev,
                        stale,
                        &self.config,
                        self.human_valid_until,
                        self.interactions.as_ref(),
                        &mut self.audit,
                        &self.telemetry,
                        &mut self.stats,
                        self.hook.as_deref(),
                    );
                }
            }
        }
    }

    /// Retrospective verdict for an event that closed before reaching
    /// its classification point. The packets already left the proxy, so
    /// an unverified manual outcome cannot drop anything — but it is
    /// audited at the event's end time and counts toward the brute-force
    /// lockout, which is what defeats fragment-and-pause evasion.
    /// (Verified/cascade outcomes deliberately do not refresh the
    /// interaction graph: the event is already over.)
    #[allow(clippy::too_many_arguments)]
    fn retro_close(
        device: u16,
        dev: &mut DeviceState,
        event: OpenEvent,
        config: &ProxyConfig,
        human_valid_until: SimTime,
        interactions: Option<&InteractionGraph>,
        audit: &mut AuditLog,
        telemetry: &ProxyTelemetry,
        stats: &mut ProxyStats,
        hook: Option<&dyn ProxyHook>,
    ) {
        let end = event.last;
        let ev = UnpredictableEvent {
            device,
            packets: (0..event.packets.len()).collect(),
            start: event.packets[0].ts,
            end,
        };
        let class = dev.classifier.classify_event(&ev, &event.packets);
        if !class.is_manual() {
            audit.append(AuditEntry {
                ts: end,
                device,
                class,
                verdict: AuditVerdict::AllowedNonManual,
            });
            return;
        }
        let vouched =
            end <= human_valid_until || interactions.is_some_and(|g| g.cascade_covers(device, end));
        if vouched {
            audit.append(AuditEntry {
                ts: end,
                device,
                class,
                verdict: AuditVerdict::AllowedManualVerified,
            });
            return;
        }
        telemetry.retro_unverified.inc();
        stats.retro_unverified += 1;
        let locked = Self::record_unverified_drop(&mut dev.drops, end, config);
        if locked && !dev.locked {
            dev.locked = true;
            telemetry.locked_devices_gauge.inc();
            telemetry.lockouts.inc();
            if let Some(h) = hook {
                h.on_lockout(end, device);
            }
        }
        audit.append(AuditEntry {
            ts: end,
            device,
            class,
            verdict: if locked {
                AuditVerdict::LockedOut
            } else {
                AuditVerdict::DroppedUnverified
            },
        });
    }
}

/// Errors from the auth-message path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// QUIC-level failure (replay, unknown ticket, decrypt).
    Transport(fiat_quic::QuicError),
    /// Payload failed HMAC verification (unauthorized device, §5.4).
    BadSignature,
    /// Payload did not parse.
    Malformed,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::Transport(e) => write!(f, "transport: {e}"),
            AuthError::BadSignature => write!(f, "signature verification failed"),
            AuthError::Malformed => write!(f, "malformed auth message"),
        }
    }
}

impl std::error::Error for AuthError {}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, TcpFlags, TlsVersion, TrafficClass, Transport};
    use fiat_sensors::{ImuTrace, MotionKind};
    use std::net::Ipv4Addr;

    const SECRET: [u8; 32] = [0x77; 32];

    fn pkt(ts_ms: u64, size: u16) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            device: 0,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 0, 0, 1),
            local_port: 5000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size,
            label: TrafficClass::Control,
        }
    }

    fn proxy_with_plug() -> FiatProxy {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        // Plug: simple rule on size 235, N = 1 (decide on first packet).
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        proxy
    }

    /// Run the proxy through bootstrap with a periodic 100 B flow.
    fn bootstrap(proxy: &mut FiatProxy) -> u64 {
        // 100 B packets every 10 s for 20 min.
        let mut t = 0;
        while t < 20 * 60 * 1000 {
            assert_eq!(
                proxy.on_packet(&pkt(t, 100)),
                ProxyDecision::Allow(AllowReason::Bootstrap)
            );
            t += 10_000;
        }
        t
    }

    #[test]
    fn bootstrap_learns_rules_then_enforces() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        // Post-bootstrap: the periodic flow hits the learned rule.
        assert_eq!(
            proxy.on_packet(&pkt(t, 100)),
            ProxyDecision::Allow(AllowReason::RuleHit)
        );
        assert!(proxy.rule_count() >= 1);
        // A never-seen size misses and enters the event path.
        let d = proxy.on_packet(&pkt(t + 1000, 999));
        assert!(matches!(d, ProxyDecision::Allow(AllowReason::NonManual)));
    }

    #[test]
    fn manual_command_without_human_dropped() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        // A 235 B command packet: classified manual at packet 1, no human.
        assert_eq!(
            proxy.on_packet(&pkt(t, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
        // The event's second packet also drops.
        assert_eq!(
            proxy.on_packet(&pkt(t + 100, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
        assert_eq!(proxy.audit().len(), 1);
        assert_eq!(
            proxy.audit().entries()[0].verdict,
            AuditVerdict::DroppedUnverified
        );
    }

    #[test]
    fn manual_command_with_human_allowed() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);

        // The phone sends valid evidence first (0-RTT after handshake).
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("com.smartplug.app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        assert_eq!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)),
            Ok(true)
        );

        // The command arrives moments later: allowed.
        assert_eq!(
            proxy.on_packet(&pkt(t + 500, 235)),
            ProxyDecision::Allow(AllowReason::ManualVerified)
        );
        assert_eq!(
            proxy.audit().entries()[0].verdict,
            AuditVerdict::AllowedManualVerified
        );
    }

    #[test]
    fn humanness_proof_expires() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)).unwrap();
        // 31 s later (window is 30 s) the command is no longer covered.
        assert_eq!(
            proxy.on_packet(&pkt(t + 31_000, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
    }

    #[test]
    fn attacker_touch_evidence_rejected() {
        // Software-injected command with a resting phone: the evidence
        // fails humanness, so the command drops.
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::Resting, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::Resting, t)
            .unwrap();
        assert_eq!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)),
            Ok(false)
        );
        assert_eq!(
            proxy.on_packet(&pkt(t + 100, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
    }

    #[test]
    fn unauthorized_device_evidence_rejected() {
        // An app paired with a *different* secret cannot validate: the
        // QUIC layer itself refuses (different PSK).
        let mut proxy = proxy_with_plug();
        bootstrap(&mut proxy);
        let mut evil = FiatApp::new(&[0x66; 32], 1);
        let ch = evil.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        // Handshake "completes" locally but keys mismatch.
        evil.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = evil
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, 0)
            .unwrap();
        assert!(matches!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_secs(1300)),
            Err(AuthError::Transport(_))
        ));
    }

    #[test]
    fn replayed_evidence_rejected() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        assert_eq!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)),
            Ok(true)
        );
        // A LAN attacker who captured the packet replays it later.
        assert!(matches!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t + 60_000)),
            Err(AuthError::Transport(fiat_quic::QuicError::Replayed))
        ));
    }

    #[test]
    fn brute_force_triggers_lockout() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        // Threshold 3 tolerates three unverified manual events within
        // 60 s; the fourth locks the device.
        for k in 0..4u64 {
            let d = proxy.on_packet(&pkt(t + k * 10_000, 235));
            assert_eq!(d, ProxyDecision::Drop(DropReason::ManualUnverified));
        }
        assert!(proxy.is_locked(0));
        // Everything on the device now drops, even predictable traffic.
        assert_eq!(
            proxy.on_packet(&pkt(t + 40_000, 100)),
            ProxyDecision::Drop(DropReason::LockedOut)
        );
        // Manual clearing restores service.
        proxy.clear_lockout(0);
        assert_eq!(
            proxy.on_packet(&pkt(t + 50_000, 100)),
            ProxyDecision::Allow(AllowReason::RuleHit)
        );
    }

    #[test]
    fn spaced_drops_do_not_lock() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        // Three drops spread over 5 minutes (outside the 60 s window):
        // each event needs a fresh gap (>= 5 s) to be a new event.
        for k in 0..3u64 {
            proxy.on_packet(&pkt(t + k * 120_000, 235));
        }
        assert!(!proxy.is_locked(0));
    }

    #[test]
    fn lockout_boundary_exactly_at_threshold_tolerated() {
        // Regression for the tolerance semantics: with threshold 3,
        // exactly three unverified episodes within the window must NOT
        // lock; the fourth must. The episode counter increments once
        // per lockout, not once per dropped packet.
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        for k in 0..3u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 10_000, 235)),
                ProxyDecision::Drop(DropReason::ManualUnverified)
            );
        }
        assert!(!proxy.is_locked(0), "exactly-at-threshold must not lock");
        assert_eq!(proxy.telemetry().lockout_count(), 0);

        // One more unverified event crosses the tolerance.
        proxy.on_packet(&pkt(t + 30_000, 235));
        assert!(proxy.is_locked(0));
        assert_eq!(proxy.telemetry().lockout_count(), 1);

        // Packets dropped while locked do not start new episodes.
        for k in 0..5u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + 31_000 + k * 100, 100)),
                ProxyDecision::Drop(DropReason::LockedOut)
            );
        }
        assert_eq!(proxy.telemetry().lockout_count(), 1);

        // After an operator clears it, a fresh run of four unverified
        // events is a second episode — the counter reaches exactly 2.
        proxy.clear_lockout(0);
        for k in 0..4u64 {
            proxy.on_packet(&pkt(t + 40_000 + k * 10_000, 235));
        }
        assert!(proxy.is_locked(0));
        assert_eq!(proxy.telemetry().lockout_count(), 2);
        assert!(proxy.audit().verify());
    }

    #[test]
    fn gap_fragments_are_classified_retrospectively() {
        // Gap evasion: a command split into fragments shorter than the
        // classify point, separated by > 5 s of silence, rides the
        // first-N allowance packet by packet. Retrospective
        // classification audits each fragment when it closes and counts
        // it toward the lockout, so the fourth closure locks the device
        // and the fifth fragment is dead on arrival.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        let frag_spacing = 6_000u64; // > 5 s event gap -> new event
        for frag in 0..4u64 {
            for j in 0..4u64 {
                // 4 packets per fragment: below classify_at = 5.
                let d = proxy.on_packet(&pkt(t + frag * frag_spacing + j * 50, 235));
                assert_eq!(
                    d,
                    ProxyDecision::Allow(AllowReason::FirstN),
                    "frag {frag} pkt {j}"
                );
            }
        }
        // Fragments 0..2 closed retrospectively (3 episodes: tolerated).
        assert!(!proxy.is_locked(0));
        // The next packet closes fragment 3 -> 4th unverified episode
        // -> lockout; the packet itself must not open a fresh event.
        assert_eq!(
            proxy.on_packet(&pkt(t + 4 * frag_spacing, 235)),
            ProxyDecision::Drop(DropReason::LockedOut)
        );
        assert!(proxy.is_locked(0));
        assert_eq!(proxy.stats().retro_unverified, 4);
        assert_eq!(proxy.telemetry().lockout_count(), 1);
        // Every retro episode reached the audit log, chain intact.
        assert_eq!(proxy.audit().len(), 4);
        assert!(proxy.audit().verify());
    }

    #[test]
    fn flush_closes_trailing_events_retrospectively() {
        // A trailing fragment with no follow-up traffic is only seen by
        // `flush`, which must classify it like a stale-close would.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        for j in 0..3u64 {
            proxy.on_packet(&pkt(t + j * 50, 235));
        }
        assert_eq!(proxy.audit().len(), 0);
        proxy.flush(SimTime::from_millis(t + 60_000));
        assert_eq!(proxy.stats().retro_unverified, 1);
        assert_eq!(proxy.audit().len(), 1);
        assert_eq!(
            proxy.audit().entries()[0].verdict,
            AuditVerdict::DroppedUnverified
        );
        // Non-manual trailing events are audited as allowed, not drops.
        proxy.clear_lockout(0);
        for j in 0..3u64 {
            proxy.on_packet(&pkt(t + 120_000 + j * 50, 999));
        }
        proxy.flush(SimTime::from_millis(t + 180_000));
        assert_eq!(proxy.stats().retro_unverified, 1);
        assert_eq!(
            proxy.audit().entries()[1].verdict,
            AuditVerdict::AllowedNonManual
        );
        assert!(proxy.audit().verify());
    }

    #[test]
    fn retro_classification_can_be_disabled() {
        // With `retro_classify` off, sub-classify-point fragments close
        // silently — the pre-existing (vulnerable) behavior, kept for
        // measurement harnesses that pin inline-only numbers.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            retro_classify: false,
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        for frag in 0..6u64 {
            for j in 0..4u64 {
                let d = proxy.on_packet(&pkt(t + frag * 6_000 + j * 50, 235));
                assert_eq!(d, ProxyDecision::Allow(AllowReason::FirstN));
            }
        }
        assert!(!proxy.is_locked(0));
        assert_eq!(proxy.stats().retro_unverified, 0);
        assert_eq!(proxy.audit().len(), 0);
    }

    #[test]
    fn first_n_allowance_for_complex_device() {
        // An ML device with classify point 5: four packets pass before
        // the verdict.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        // Train a BernoulliNB on a toy dataset where events like ours are
        // manual.
        let (packets, events) = toy_training();
        let data = crate::classifier::event_dataset(&events, &packets);
        proxy.register_device(0, EventClassifier::train_bernoulli(&data), 41);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        for k in 0..4u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 100, 900)),
                ProxyDecision::Allow(AllowReason::FirstN),
                "packet {k}"
            );
        }
        // Fifth packet: classification fires (manual, no human -> drop).
        assert_eq!(
            proxy.on_packet(&pkt(t + 400, 900)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
    }

    /// Toy training data: 900 B TLS bursts are manual, 150 B no-TLS are
    /// control.
    fn toy_training() -> (Vec<PacketRecord>, Vec<UnpredictableEvent>) {
        let mut packets = Vec::new();
        let mut events = Vec::new();
        let mut t = 0u64;
        for k in 0..40 {
            let manual = k % 2 == 0;
            let start = packets.len();
            for j in 0..5 {
                let mut p = pkt(t + j * 100, if manual { 900 } else { 150 });
                p.tls = if manual {
                    TlsVersion::Tls12
                } else {
                    TlsVersion::None
                };
                p.label = if manual {
                    TrafficClass::Manual
                } else {
                    TrafficClass::Control
                };
                packets.push(p);
            }
            events.push(UnpredictableEvent {
                device: 0,
                packets: (start..start + 5).collect(),
                start: SimTime::from_millis(t),
                end: SimTime::from_millis(t + 400),
            });
            t += 60_000;
        }
        (packets, events)
    }

    #[test]
    fn unknown_device_fails_open() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut p = pkt(t, 999);
        p.device = 42; // never registered
                       // Fail-open, but attributed to its own reason — not FirstN.
        assert_eq!(
            proxy.on_packet(&p),
            ProxyDecision::Allow(AllowReason::UnknownDevice)
        );
        let mut p2 = pkt(t + 100, 999);
        p2.device = 42;
        proxy.on_packet(&p2);
        let s = proxy.stats();
        assert_eq!(s.unknown_device, 2);
        assert_eq!(s.first_n, 0);
        assert_eq!(s.total(), s.bootstrap + 2);
        // Audited once per device (first sighting), not per packet.
        assert_eq!(proxy.audit().len(), 1);
        let e = &proxy.audit().entries()[0];
        assert_eq!(e.device, 42);
        assert_eq!(e.verdict, AuditVerdict::AllowedUnknownDevice);
        // A second unknown device gets its own entry.
        let mut p3 = pkt(t + 200, 999);
        p3.device = 43;
        proxy.on_packet(&p3);
        assert_eq!(proxy.audit().len(), 2);
        assert!(proxy.audit().verify());
    }

    #[test]
    fn backwards_packet_joins_event_without_rewinding_high_water_mark() {
        // Reordered trace through `decide()`: an in-order rule-miss
        // packet, a reordered packet 3 s in its past, then one 4 s after
        // the first. All three are one event — pre-fix, the backwards
        // packet rewound `last`, the third packet read a 7 s gap, closed
        // the event early and recorded a phantom retro episode.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);
        let base = t + 60_000; // clear of the bootstrap boundary

        proxy.on_packet(&pkt(base, 235));
        proxy.on_packet(&pkt(base - 3_000, 235)); // reordered: joins
        proxy.on_packet(&pkt(base + 4_000, 235)); // 4 s < gap: still joins
        assert_eq!(proxy.stats().retro_unverified, 0, "no spurious closure");
        assert_eq!(proxy.stats().first_n, 3);

        // Closing the (single) event yields exactly one retro episode.
        proxy.flush(SimTime::from_millis(base + 60_000));
        assert_eq!(proxy.stats().retro_unverified, 1);
        assert_eq!(proxy.audit().len(), 1);
    }

    #[test]
    fn flush_then_older_packet_starts_fresh_event() {
        // Interplay: flush at `now`, then feed a packet older than the
        // flush time (but newer than the closed event). It must open a
        // fresh event rather than resurrect the flushed one's state.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);
        let base = t + 60_000;

        for j in 0..3u64 {
            proxy.on_packet(&pkt(base + j * 50, 235));
        }
        proxy.flush(SimTime::from_millis(base + 60_000));
        assert_eq!(proxy.stats().retro_unverified, 1);

        // 30 s before the flush time, 30 s after the closed event.
        assert_eq!(
            proxy.on_packet(&pkt(base + 30_000, 235)),
            ProxyDecision::Allow(AllowReason::FirstN)
        );
        proxy.flush(SimTime::from_millis(base + 120_000));
        assert_eq!(proxy.stats().retro_unverified, 2);
        assert!(proxy.audit().verify());
    }

    #[test]
    fn flush_is_idempotent() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        for j in 0..3u64 {
            proxy.on_packet(&pkt(t + j * 50, 235));
        }
        let flush_at = SimTime::from_millis(t + 60_000);
        proxy.flush(flush_at);
        let stats = proxy.stats();
        let audit_len = proxy.audit().len();
        let head = proxy.audit().head();
        // Double flush (same time and later) changes nothing: the event
        // is gone and no state regenerates it.
        proxy.flush(flush_at);
        proxy.flush(SimTime::from_millis(t + 120_000));
        assert_eq!(proxy.stats(), stats);
        assert_eq!(proxy.audit().len(), audit_len);
        assert_eq!(proxy.audit().head(), head);
    }

    #[test]
    #[should_panic(expected = "proxy not started")]
    fn packets_before_start_panic() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        proxy.on_packet(&pkt(0, 100));
    }

    #[test]
    fn cascade_requires_fresh_trigger_authorization() {
        // Edge Alexa(1) -> plug(0) with a 10 s cascade window: once the
        // Alexa authorization goes stale, downstream commands drop again.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            human_valid_window: SimDuration::from_secs(1),
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.register_device(1, EventClassifier::simple_rule(235), 1);
        let mut graph = crate::interactions::InteractionGraph::new(SimDuration::from_secs(10));
        graph.add_edge(1, 0).unwrap();
        proxy.set_interactions(graph);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("alexa", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)).unwrap();
        let mut alexa_cmd = pkt(t + 500, 235);
        alexa_cmd.device = 1;
        assert!(proxy.on_packet(&alexa_cmd).is_allow());

        // Within the 10 s cascade window: allowed.
        assert_eq!(
            proxy.on_packet(&pkt(t + 8_000, 235)),
            ProxyDecision::Allow(AllowReason::Cascade)
        );
        // Past it (and past the human window): dropped.
        assert_eq!(
            proxy.on_packet(&pkt(t + 30_000, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
    }

    #[test]
    fn cascade_reason_surfaces_when_human_window_expired() {
        // Direct check of the Cascade allow reason using a short human
        // window.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            human_valid_window: SimDuration::from_secs(1),
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.register_device(1, EventClassifier::simple_rule(235), 1);
        let mut graph = crate::interactions::InteractionGraph::new(SimDuration::from_secs(60));
        graph.add_edge(1, 0).unwrap();
        proxy.set_interactions(graph);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("alexa", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)).unwrap();
        // Alexa's command rides the (1 s) human window.
        let mut alexa_cmd = pkt(t + 500, 235);
        alexa_cmd.device = 1;
        assert_eq!(
            proxy.on_packet(&alexa_cmd),
            ProxyDecision::Allow(AllowReason::ManualVerified)
        );
        // 10 s later the human window is gone, but the cascade covers the
        // plug via the authorized Alexa event.
        let plug_cmd = pkt(t + 10_000, 235);
        assert_eq!(
            proxy.on_packet(&plug_cmd),
            ProxyDecision::Allow(AllowReason::Cascade)
        );
        assert!(proxy
            .audit()
            .entries()
            .iter()
            .any(|e| e.verdict == AuditVerdict::AllowedCascade));
        // Without the edge (device 5 unconfigured), the same command
        // drops: check via a device with no incoming edges.
        proxy.register_device(5, EventClassifier::simple_rule(235), 1);
        let mut other = pkt(t + 11_000, 235);
        other.device = 5;
        assert_eq!(
            proxy.on_packet(&other),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
    }

    #[test]
    fn stats_account_for_every_packet() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        proxy.on_packet(&pkt(t, 100)); // rule hit
        proxy.on_packet(&pkt(t + 1000, 235)); // manual drop
        let s = proxy.stats();
        assert_eq!(s.rule_hit, 1);
        assert_eq!(s.dropped_unverified, 1);
        assert!(s.bootstrap > 0);
        assert_eq!(s.total(), s.bootstrap + 2);
        assert_eq!(s.dropped(), 1);
        assert!((s.rule_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_invariant_sum_of_reasons_equals_total() {
        // Drive every decision path, then check the counters partition
        // the packet count exactly.
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut sent = proxy.stats().bootstrap;

        proxy.on_packet(&pkt(t, 100)); // rule hit
        proxy.on_packet(&pkt(t + 6_000, 999)); // non-manual
        sent += 2;
        for k in 0..4u64 {
            proxy.on_packet(&pkt(t + 20_000 + k * 10_000, 235)); // drops -> lockout
            sent += 1;
        }
        proxy.on_packet(&pkt(t + 55_000, 100)); // locked out
        sent += 1;

        let mut unknown = pkt(t + 56_000, 999);
        unknown.device = 9; // never registered
        proxy.on_packet(&unknown);
        sent += 1;

        let s = proxy.stats();
        assert_eq!(
            s.total(),
            s.bootstrap
                + s.rule_hit
                + s.first_n
                + s.non_manual
                + s.manual_verified
                + s.cascade
                + s.unknown_device
                + s.dropped_unverified
                + s.dropped_lockout
                + s.quarantined
                + s.quarantine_released
                + s.dropped_quarantine
        );
        assert_eq!(s.unknown_device, 1);
        assert_eq!(s.total(), sent);
        assert_eq!(
            s.dropped(),
            s.dropped_unverified + s.dropped_lockout + s.dropped_quarantine
        );
        // Quarantine is off by default: every quarantine counter is zero.
        assert_eq!(s.quarantined, 0);
        assert_eq!(s.quarantine_released, 0);
        assert_eq!(s.dropped_quarantine, 0);
        assert_eq!(s.quarantine_expired, 0);
    }

    #[test]
    fn telemetry_counters_agree_with_stats() {
        use fiat_telemetry::{ManualClock, MetricRegistry};

        // A proxy on a shared registry and simulated clock, driven through
        // predictable, manual-verified, unverified, and lockout traffic.
        let registry = MetricRegistry::new();
        let telemetry = ProxyTelemetry::new(registry.clone(), Arc::new(ManualClock::new()));
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy =
            FiatProxy::with_telemetry(ProxyConfig::default(), &SECRET, validator, telemetry);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        proxy.on_packet(&pkt(t, 100)); // rule hit

        // Verified manual command.
        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)).unwrap();
        proxy.on_packet(&pkt(t + 500, 235));

        // Four unverified manual events (well past the human window)
        // exceed the tolerance of three and lock the device; one more
        // packet drops as locked out.
        for k in 0..4u64 {
            proxy.on_packet(&pkt(t + 60_000 + k * 10_000, 235));
        }
        proxy.on_packet(&pkt(t + 95_000, 100));

        // One packet from a device the proxy never registered.
        let mut stranger = pkt(t + 96_000, 100);
        stranger.device = 7;
        proxy.on_packet(&stranger);

        // Every per-reason counter matches the ProxyStats field.
        let s = proxy.stats();
        let tel = proxy.telemetry();
        let by_reason = [
            (ProxyDecision::Allow(AllowReason::Bootstrap), s.bootstrap),
            (ProxyDecision::Allow(AllowReason::RuleHit), s.rule_hit),
            (ProxyDecision::Allow(AllowReason::FirstN), s.first_n),
            (ProxyDecision::Allow(AllowReason::NonManual), s.non_manual),
            (
                ProxyDecision::Allow(AllowReason::ManualVerified),
                s.manual_verified,
            ),
            (ProxyDecision::Allow(AllowReason::Cascade), s.cascade),
            (
                ProxyDecision::Allow(AllowReason::UnknownDevice),
                s.unknown_device,
            ),
            (
                ProxyDecision::Drop(DropReason::ManualUnverified),
                s.dropped_unverified,
            ),
            (
                ProxyDecision::Drop(DropReason::LockedOut),
                s.dropped_lockout,
            ),
            (
                ProxyDecision::Allow(AllowReason::QuarantineReleased),
                s.quarantine_released,
            ),
            (
                ProxyDecision::Drop(DropReason::QuarantineExpired),
                s.dropped_quarantine,
            ),
            (ProxyDecision::Quarantine, s.quarantined),
        ];
        for (d, expected) in by_reason {
            assert_eq!(tel.decision_count(d), expected, "{d:?}");
        }
        assert!(s.manual_verified > 0);
        assert!(s.dropped_unverified > 0);
        assert!(s.dropped_lockout > 0);

        // The decide histogram saw every packet; per-stage histograms
        // recorded the stages that ran.
        assert_eq!(tel.stage("decide").unwrap().count(), s.total());
        assert_eq!(tel.stage("rule_learn").unwrap().count(), 1);
        assert!(tel.stage("rule_match").unwrap().count() > 0);
        assert!(tel.stage("event_grouping").unwrap().count() > 0);
        assert!(tel.stage("classification").unwrap().count() > 0);
        assert_eq!(tel.stage("humanness").unwrap().count(), 1);

        // Gauges reflect the end state: one device, locked, stale event
        // still open, rules learned.
        assert_eq!(registry.gauge("fiat_proxy_devices", &[]).get(), 1);
        assert_eq!(registry.gauge("fiat_proxy_locked_devices", &[]).get(), 1);
        assert_eq!(
            registry.gauge("fiat_proxy_rules", &[]).get(),
            proxy.rule_count() as i64
        );
        // The journal tail matches the last decision (the stranger).
        let last = tel.journal().last().unwrap();
        assert_eq!(last.device, 7);
        assert_eq!(
            last.decision,
            ProxyDecision::Allow(AllowReason::UnknownDevice)
        );
        assert_eq!(tel.journal().total_pushed(), s.total());

        proxy.clear_lockout(0);
        assert_eq!(registry.gauge("fiat_proxy_locked_devices", &[]).get(), 0);

        // QUIC counters flowed into the same registry.
        assert_eq!(registry.counter("fiat_quic_handshakes_total", &[]).get(), 1);
        assert_eq!(
            registry
                .counter("fiat_quic_zero_rtt_total", &[("result", "accepted")])
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter("fiat_proxy_auth_total", &[("result", "verified")])
                .get(),
            1
        );

        // Exposition carries the whole picture.
        let text = registry.render_prometheus();
        assert!(text.contains("fiat_proxy_stage_us_bucket"));
        assert!(
            text.contains("fiat_proxy_decisions_total{decision=\"drop\",reason=\"locked_out\"}")
        );
        let json = registry.render_json();
        assert!(json.contains("\"fiat_proxy_decisions_total\""));
    }

    #[test]
    fn decision_journal_is_bounded() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        for k in 0..(ProxyTelemetry::JOURNAL_CAPACITY as u64 + 50) {
            proxy.on_packet(&pkt(t + k * 10_000, 100));
        }
        let j = proxy.telemetry().journal();
        assert_eq!(j.len(), ProxyTelemetry::JOURNAL_CAPACITY);
        assert!(j.total_pushed() > ProxyTelemetry::JOURNAL_CAPACITY as u64);
        assert!(j
            .recent()
            .iter()
            .all(|r| r.decision == ProxyDecision::Allow(AllowReason::RuleHit)));
    }

    #[test]
    fn post_verdict_packets_keep_manual_verified_reason() {
        // Regression: the open event's fate used to discard *why* it was
        // allowed, so every post-verdict packet of a verified manual event
        // was counted as NonManual in stats and the decision journal.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy = FiatProxy::new(ProxyConfig::default(), &SECRET, validator);
        // N = 5: packets 1-4 ride the first-N allowance, packet 5 is the
        // verdict, packets 6+ are post-verdict.
        proxy.register_device(0, EventClassifier::simple_rule(235), 5);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        let mut app = FiatApp::new(&SECRET, 1);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        assert_eq!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t)),
            Ok(true)
        );

        for k in 0..4u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 100, 235)),
                ProxyDecision::Allow(AllowReason::FirstN),
                "packet {k}"
            );
        }
        assert_eq!(
            proxy.on_packet(&pkt(t + 400, 235)),
            ProxyDecision::Allow(AllowReason::ManualVerified)
        );
        // Packets 6 and 7 of the same event keep the verdict's reason.
        assert_eq!(
            proxy.on_packet(&pkt(t + 500, 235)),
            ProxyDecision::Allow(AllowReason::ManualVerified)
        );
        assert_eq!(
            proxy.on_packet(&pkt(t + 600, 235)),
            ProxyDecision::Allow(AllowReason::ManualVerified)
        );
        assert_eq!(proxy.stats().manual_verified, 3);
        assert_eq!(proxy.stats().non_manual, 0);
    }

    #[test]
    fn clear_lockout_closes_open_event() {
        use fiat_telemetry::{ManualClock, MetricRegistry};

        // Regression: clearing a lockout left the device's open event
        // with fate DropRest, so traffic inside the 5 s event gap kept
        // dropping as ManualUnverified right after the user unlocked.
        let registry = MetricRegistry::new();
        let telemetry = ProxyTelemetry::new(registry.clone(), Arc::new(ManualClock::new()));
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut proxy =
            FiatProxy::with_telemetry(ProxyConfig::default(), &SECRET, validator, telemetry);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        for k in 0..4u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 10_000, 235)),
                ProxyDecision::Drop(DropReason::ManualUnverified)
            );
        }
        assert!(proxy.is_locked(0));

        proxy.clear_lockout(0);
        assert!(!proxy.is_locked(0));
        assert_eq!(registry.gauge("fiat_proxy_open_events", &[]).get(), 0);
        // 1 s after the last drop — still inside the 5 s event gap, so
        // pre-fix this packet rejoined the DropRest event and dropped.
        let d = proxy.on_packet(&pkt(t + 31_000, 999));
        assert!(d.is_allow(), "{d:?}");
    }

    #[test]
    fn audit_chain_stays_valid() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        for k in 0..5u64 {
            proxy.on_packet(&pkt(t + k * 10_000, 235));
        }
        assert!(proxy.audit().verify());
        assert!(proxy.audit().len() >= 3);
    }

    // ---- pending-verdict quarantine ------------------------------------

    /// A proxy with quarantine enabled: manual-unproven events are held
    /// for `deadline_ms` instead of dropped.
    fn quarantine_proxy(deadline_ms: u64) -> FiatProxy {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            proof_deadline: Some(SimDuration::from_millis(deadline_ms)),
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        proxy
    }

    /// Deliver a genuine 0-RTT humanness proof at `t_ms`.
    fn prove_human(proxy: &mut FiatProxy, seed: u64, t_ms: u64) {
        let mut app = FiatApp::new(&SECRET, seed);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t_ms)
            .unwrap();
        assert_eq!(
            proxy.on_auth_zero_rtt(&z, SimTime::from_millis(t_ms)),
            Ok(true)
        );
    }

    #[test]
    fn quarantine_holds_then_releases_on_late_proof() {
        let mut proxy = quarantine_proxy(10_000);
        let t = bootstrap(&mut proxy);

        // The command's first two packets are held, not dropped.
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        assert_eq!(
            proxy.on_packet(&pkt(t + 100, 235)),
            ProxyDecision::Quarantine
        );
        assert!(proxy.take_quarantine_releases().is_empty());
        let depth = proxy
            .telemetry()
            .registry()
            .gauge("fiat_quarantine_depth", &[]);
        assert_eq!(depth.get(), 2);

        // The proof lands 2 s late (well inside the 10 s deadline): the
        // held packets are released and the live remainder is allowed.
        prove_human(&mut proxy, 1, t + 2_000);
        let released = proxy.take_quarantine_releases();
        assert_eq!(released.len(), 2);
        assert_eq!(released[0].ts, SimTime::from_millis(t));
        assert_eq!(depth.get(), 0);
        assert_eq!(
            proxy.on_packet(&pkt(t + 2_500, 235)),
            ProxyDecision::Allow(AllowReason::QuarantineReleased)
        );

        let s = proxy.stats();
        assert_eq!(s.quarantined, 2);
        assert_eq!(s.quarantine_released, 1);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.quarantine_expired, 0);
        assert!(!proxy.is_locked(0));
        let last = proxy.audit().entries().last().unwrap();
        assert_eq!(last.verdict, AuditVerdict::QuarantineReleased);
        assert_eq!(last.ts, SimTime::from_millis(t + 2_000));
        assert!(proxy.audit().verify());
    }

    #[test]
    fn quarantine_expires_at_deadline_and_audits_at_deadline() {
        let mut proxy = quarantine_proxy(10_000);
        let t = bootstrap(&mut proxy);

        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        // A packet past the deadline reveals the expiry: the held packet
        // is demoted (audited at the *deadline*, not at observation
        // time) and the live packet drops as QuarantineExpired. It is
        // still within the event gap of nothing — 11 s > 5 s gap closes
        // the event — but the expiry seals the fate first, so the
        // sealed DropRest travels with the closed event, and the new
        // event re-quarantines.
        assert_eq!(
            proxy.on_packet(&pkt(t + 10_500, 235)),
            ProxyDecision::Quarantine,
            "expiry closed the old event; the new event opens a fresh quarantine"
        );
        let s = proxy.stats();
        assert_eq!(s.quarantine_expired, 1);
        assert_eq!(s.quarantined, 2);
        let expired = proxy
            .audit()
            .entries()
            .iter()
            .find(|e| e.verdict == AuditVerdict::QuarantineExpired)
            .unwrap();
        assert_eq!(expired.ts, SimTime::from_millis(t + 10_000));

        // Within the gap, the sealed fate governs the live remainder.
        let mut proxy = quarantine_proxy(2_000);
        let t = bootstrap(&mut proxy);
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        assert_eq!(
            proxy.on_packet(&pkt(t + 3_000, 235)),
            ProxyDecision::Drop(DropReason::QuarantineExpired),
            "3 s is past the 2 s deadline but inside the 5 s event gap"
        );
        assert_eq!(proxy.stats().dropped_quarantine, 1);
    }

    #[test]
    fn quarantine_release_at_exact_deadline_still_releases() {
        let mut proxy = quarantine_proxy(10_000);
        let t = bootstrap(&mut proxy);
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        // `now > deadline` expires; at exactly the deadline the proof
        // still counts (boundary mirrors the humanness window's `<=`).
        prove_human(&mut proxy, 1, t + 10_000);
        assert_eq!(proxy.take_quarantine_releases().len(), 1);
        assert_eq!(proxy.stats().quarantine_expired, 0);
    }

    #[test]
    fn proof_after_deadline_expires_instead_of_releasing() {
        let mut proxy = quarantine_proxy(10_000);
        let t = bootstrap(&mut proxy);
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        prove_human(&mut proxy, 1, t + 10_001);
        assert!(proxy.take_quarantine_releases().is_empty());
        let s = proxy.stats();
        assert_eq!(s.quarantine_expired, 1);
        let last = proxy.audit().entries().last().unwrap();
        assert_eq!(last.verdict, AuditVerdict::QuarantineExpired);
        assert_eq!(last.ts, SimTime::from_millis(t + 10_000));
    }

    #[test]
    fn second_concurrent_manual_event_demotes_immediately() {
        let mut proxy = quarantine_proxy(60_000);
        let t = bootstrap(&mut proxy);

        // Event A quarantines, then closes via the event gap (its record
        // survives: the proof may still arrive).
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        // Event B (6 s later, past the 5 s gap) finds the device's one
        // quarantine slot taken: immediate demotion, today's path.
        assert_eq!(
            proxy.on_packet(&pkt(t + 6_000, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified)
        );
        // The late proof still releases event A's held packet.
        prove_human(&mut proxy, 1, t + 8_000);
        assert_eq!(proxy.take_quarantine_releases().len(), 1);
        let s = proxy.stats();
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.dropped_unverified, 1);
    }

    #[test]
    fn quarantine_capacity_overflow_sheds_packets() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            proof_deadline: Some(SimDuration::from_secs(10)),
            quarantine_capacity: 2,
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        assert_eq!(
            proxy.on_packet(&pkt(t + 100, 235)),
            ProxyDecision::Quarantine
        );
        assert_eq!(
            proxy.on_packet(&pkt(t + 200, 235)),
            ProxyDecision::Drop(DropReason::ManualUnverified),
            "past the capacity the event sheds packets"
        );
        let s = proxy.stats();
        assert_eq!(s.quarantined, 2);
        assert_eq!(s.dropped_unverified, 1);
        // Release hands back exactly the capped record.
        prove_human(&mut proxy, 1, t + 1_000);
        assert_eq!(proxy.take_quarantine_releases().len(), 2);
    }

    #[test]
    fn repeated_quarantine_expiries_feed_lockout() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            proof_deadline: Some(SimDuration::from_secs(2)),
            // Episodes must land inside one 60 s lockout window.
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        // Four expiring quarantines within the window exceed the
        // tolerance of three, exactly like four immediate demotions:
        // episodes land at t+2 s, +12 s, +22 s, +32 s, and the fourth
        // expiry (seen by the last flush) locks the device.
        for k in 0..4u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 10_000, 235)),
                ProxyDecision::Quarantine,
                "k={k}"
            );
            // Let each quarantine expire before the next event opens.
            proxy.flush(SimTime::from_millis(t + k * 10_000 + 9_000));
        }
        assert!(proxy.is_locked(0));
        assert_eq!(proxy.stats().quarantine_expired, 4);
        assert_eq!(proxy.telemetry().lockout_count(), 1);
        // And the revealing packet drops.
        assert_eq!(
            proxy.on_packet(&pkt(t + 40_000, 235)),
            ProxyDecision::Drop(DropReason::LockedOut)
        );
    }

    #[test]
    fn flush_expires_overdue_quarantine() {
        let mut proxy = quarantine_proxy(2_000);
        let t = bootstrap(&mut proxy);
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        proxy.flush(SimTime::from_millis(t + 30_000));
        let s = proxy.stats();
        assert_eq!(s.quarantine_expired, 1);
        let last = proxy.audit().entries().last().unwrap();
        assert_eq!(last.verdict, AuditVerdict::QuarantineExpired);
        assert_eq!(last.ts, SimTime::from_millis(t + 2_000));
        // Idempotent: the record resolved once.
        proxy.flush(SimTime::from_millis(t + 31_000));
        assert_eq!(proxy.stats().quarantine_expired, 1);
    }

    #[test]
    fn clear_lockout_preserves_pending_quarantine() {
        let mut proxy = quarantine_proxy(60_000);
        let t = bootstrap(&mut proxy);

        // Event A holds; four concurrent demotions lock the device.
        assert_eq!(proxy.on_packet(&pkt(t, 235)), ProxyDecision::Quarantine);
        for k in 1..5u64 {
            proxy.on_packet(&pkt(t + k * 6_000, 235));
        }
        assert!(proxy.is_locked(0));

        // The user clears the lockout; the held command still needs its
        // proof — and gets it, within the deadline.
        proxy.clear_lockout(0);
        prove_human(&mut proxy, 1, t + 40_000);
        assert_eq!(proxy.take_quarantine_releases().len(), 1);
        assert_eq!(proxy.stats().quarantined, 1);
    }

    #[test]
    fn quarantine_disabled_keeps_decisions_and_audit_identical() {
        // Belt-and-braces for the zero-cost default: a run with the
        // default config and one with quarantine explicitly disabled
        // produce identical decisions, stats, and audit chains.
        let drive = |mut proxy: FiatProxy| {
            let t = bootstrap(&mut proxy);
            let mut decisions = Vec::new();
            for k in 0..6u64 {
                decisions.push(proxy.on_packet(&pkt(t + k * 7_000, 235)));
            }
            proxy.flush(SimTime::from_millis(t + 120_000));
            (decisions, proxy.stats(), proxy.audit().head())
        };
        let a = drive(proxy_with_plug());
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            proof_deadline: None,
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let b = drive(proxy);
        assert_eq!(a, b);
    }

    /// Restore a snapshot with the standard plug setup (fresh telemetry,
    /// same ceremony secret, same classifier).
    fn restore_plug(snap: &crate::snapshot::HomeSnapshot) -> FiatProxy {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        FiatProxy::restore(
            ProxyConfig::default(),
            &SECRET,
            validator,
            ProxyTelemetry::default(),
            snap,
            |_| EventClassifier::simple_rule(235),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        // Twin proxies share a prefix; one is snapshotted and restored
        // mid-trace. Suffix decisions, stats, rule counts, and the audit
        // chain must be indistinguishable from the uninterrupted twin.
        let drive_prefix = |proxy: &mut FiatProxy| {
            let t = bootstrap(proxy);
            // A sealed-fate non-manual event left open...
            proxy.on_packet(&pkt(t, 999));
            // ...an unverified manual drop (audited, lockout credit)...
            let mut p = pkt(t + 10_000, 235);
            p.device = 0;
            proxy.on_packet(&p);
            // ...and an unknown device seen once.
            let mut u = pkt(t + 11_000, 50);
            u.device = 7;
            proxy.on_packet(&u);
            t
        };
        let mut uninterrupted = proxy_with_plug();
        let mut snapshotted = proxy_with_plug();
        let t = drive_prefix(&mut uninterrupted);
        drive_prefix(&mut snapshotted);

        let snap = snapshotted.snapshot();
        let mut restored = restore_plug(&snap);
        assert_eq!(restored.rule_count(), uninterrupted.rule_count());
        assert_eq!(restored.audit().head(), uninterrupted.audit().head());

        // Resume: rule hits, the still-open event, a second manual drop,
        // and a flush must all replay identically.
        let suffix = [
            pkt(t + 11_500, 100), // rule hit
            pkt(t + 12_000, 999), // still within the open event's gap
            pkt(t + 20_000, 235), // fresh manual drop
        ];
        for p in &suffix {
            assert_eq!(uninterrupted.on_packet(p), restored.on_packet(p));
        }
        uninterrupted.flush(SimTime::from_millis(t + 120_000));
        restored.flush(SimTime::from_millis(t + 120_000));
        assert_eq!(uninterrupted.stats(), restored.stats());
        assert_eq!(uninterrupted.audit().head(), restored.audit().head());
        assert!(restored.audit().verify());
    }

    #[test]
    fn snapshot_preserves_zero_rtt_tickets_across_restore() {
        // A ticket issued before the snapshot keeps working after the
        // restore (the PSK-derived ticket secrets are re-derivable), and
        // its replay protection survives too.
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        let mut app = FiatApp::new(&SECRET, 11);
        let ch = app.handshake_request();
        let sh = proxy.accept_handshake(&ch);
        app.complete_handshake(&sh).unwrap();
        let imu = ImuTrace::synthesize(MotionKind::HumanTouch, 500, 3);
        let z0 = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t)
            .unwrap();
        proxy
            .on_auth_zero_rtt(&z0, SimTime::from_millis(t))
            .unwrap();

        let mut restored = restore_plug(&proxy.snapshot());
        // A replay of the pre-snapshot proof is still caught.
        assert_eq!(
            restored.on_auth_zero_rtt(&z0, SimTime::from_millis(t + 1)),
            Err(AuthError::Transport(fiat_quic::QuicError::Replayed))
        );
        // A fresh proof under the old ticket verifies.
        let z1 = app
            .authorize_zero_rtt("app", &imu, MotionKind::HumanTouch, t + 1000)
            .unwrap();
        assert_eq!(
            restored.on_auth_zero_rtt(&z1, SimTime::from_millis(t + 1000)),
            Ok(true)
        );
    }

    #[test]
    fn snapshot_serde_round_trips_byte_identically() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        proxy.on_packet(&pkt(t, 235));
        proxy.set_degraded(SimTime::from_millis(t + 1), true);
        let snap = proxy.snapshot();
        let bytes = serde_json::to_vec(&snap).unwrap();
        let back: crate::snapshot::HomeSnapshot = serde_json::from_slice(&bytes).unwrap();
        let again = serde_json::to_vec(&back).unwrap();
        assert_eq!(bytes, again);
        // And two snapshots of the same state serialize identically.
        assert_eq!(bytes, serde_json::to_vec(&proxy.snapshot()).unwrap());
    }

    #[test]
    fn restore_rejects_foreign_versions_and_tampered_audit() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        proxy.on_packet(&pkt(t, 235));
        let good = proxy.snapshot();

        let mut wrong_version = good.clone();
        wrong_version.version = crate::snapshot::SNAPSHOT_VERSION + 1;
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        assert_eq!(
            FiatProxy::restore(
                ProxyConfig::default(),
                &SECRET,
                validator,
                ProxyTelemetry::default(),
                &wrong_version,
                |_| EventClassifier::simple_rule(235),
            )
            .err(),
            Some(crate::snapshot::SnapshotError::UnsupportedVersion(
                crate::snapshot::SNAPSHOT_VERSION + 1
            ))
        );

        let mut tampered = good.clone();
        tampered.audit_entries[0].verdict = AuditVerdict::AllowedManualVerified;
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        assert_eq!(
            FiatProxy::restore(
                ProxyConfig::default(),
                &SECRET,
                validator,
                ProxyTelemetry::default(),
                &tampered,
                |_| EventClassifier::simple_rule(235),
            )
            .err(),
            Some(crate::snapshot::SnapshotError::AuditChainInvalid)
        );
    }

    // ---- bounded state (DESIGN §18) ------------------------------------

    fn pkt_dev(ts_ms: u64, size: u16, device: u16) -> PacketRecord {
        PacketRecord {
            device,
            ..pkt(ts_ms, size)
        }
    }

    #[test]
    fn record_cap_demotes_oldest_deadline_record() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            proof_deadline: Some(SimDuration::from_secs(60)),
            max_quarantine_records: Some(2),
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config, &SECRET, validator);
        for d in 0..3 {
            proxy.register_device(d, EventClassifier::simple_rule(235), 1);
        }
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);

        assert_eq!(
            proxy.on_packet(&pkt_dev(t, 235, 0)),
            ProxyDecision::Quarantine
        );
        assert_eq!(
            proxy.on_packet(&pkt_dev(t + 1_000, 235, 1)),
            ProxyDecision::Quarantine
        );
        // A third concurrent record is over the cap: device 0's record
        // (oldest deadline) is demoted first, then the new one is held.
        assert_eq!(
            proxy.on_packet(&pkt_dev(t + 2_000, 235, 2)),
            ProxyDecision::Quarantine
        );
        assert_eq!(proxy.state_size().quarantine_records, 2);
        let s = proxy.stats();
        assert_eq!(s.quarantined, 3);
        assert_eq!(s.quarantine_expired, 1);
        let demoted = proxy
            .audit()
            .entries()
            .iter()
            .find(|e| e.verdict == AuditVerdict::QuarantineExpired)
            .unwrap();
        assert_eq!(demoted.device, 0);
        assert_eq!(
            demoted.ts,
            SimTime::from_millis(t + 2_000),
            "credited at demotion time, never the future deadline"
        );
        // A proof still releases the surviving records (devices 1, 2).
        prove_human(&mut proxy, 1, t + 3_000);
        assert_eq!(proxy.take_quarantine_releases().len(), 2);
        assert!(proxy.audit().verify());
    }

    #[test]
    fn sealed_event_stops_buffering_packets() {
        // Drop-fated event: after the verdict the open event must not
        // keep buffering every in-gap packet (the unbounded-state bug
        // the soak accountant caught).
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        proxy.on_packet(&pkt(t, 235));
        assert_eq!(proxy.state_size().open_packets, 1);
        for k in 1..5u64 {
            proxy.on_packet(&pkt(t + k * 1_000, 235));
        }
        assert_eq!(
            proxy.state_size().open_packets,
            1,
            "a sealed event no longer buffers"
        );

        // Quarantine-fated event: held packets live in the record only,
        // never a second copy in the open event.
        let mut proxy = quarantine_proxy(10_000);
        let t = bootstrap(&mut proxy);
        for k in 0..4u64 {
            assert_eq!(
                proxy.on_packet(&pkt(t + k * 500, 235)),
                ProxyDecision::Quarantine
            );
        }
        let size = proxy.state_size();
        assert_eq!(size.quarantine_held, 4);
        assert_eq!(size.open_packets, 1);
    }

    #[test]
    fn snapshot_restores_truncated_audit_chain() {
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            max_audit_entries: Some(8),
            ..ProxyConfig::default()
        };
        let mut proxy = FiatProxy::new(config.clone(), &SECRET, validator);
        proxy.register_device(0, EventClassifier::simple_rule(235), 1);
        proxy.start(SimTime::ZERO);
        let t = bootstrap(&mut proxy);
        // Spaced manual drops stay under the lockout tolerance but push
        // the audit log past its cap several times over.
        for k in 0..12u64 {
            proxy.on_packet(&pkt(t + k * 40_000, 235));
        }
        assert!(proxy.audit().truncated() > 0);
        assert!(proxy.audit().checkpoint().is_some());
        assert!(proxy.audit().verify());

        // The snapshot round-trips the truncated chain byte-identically
        // and the restored log still verifies (from the checkpoint).
        let snap = proxy.snapshot();
        let bytes = serde_json::to_vec(&snap).unwrap();
        let back: crate::snapshot::HomeSnapshot = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(bytes, serde_json::to_vec(&back).unwrap());
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let mut restored = FiatProxy::restore(
            config,
            &SECRET,
            validator,
            ProxyTelemetry::default(),
            &back,
            |_| EventClassifier::simple_rule(235),
        )
        .unwrap();
        assert!(restored.audit().verify());
        assert_eq!(restored.audit().head(), proxy.audit().head());
        assert_eq!(restored.audit().truncated(), proxy.audit().truncated());

        // Resume both: the chains stay in lockstep across further
        // truncations.
        for k in 12..20u64 {
            let p = pkt(t + k * 40_000, 235);
            assert_eq!(proxy.on_packet(&p), restored.on_packet(&p));
        }
        assert_eq!(restored.audit().head(), proxy.audit().head());
        assert!(restored.audit().verify());
    }

    #[test]
    fn snapshot_round_trips_lru_order_and_ghosts() {
        // Two periodic flows learned, cap 1: the older one is evicted to
        // a ghost, then touched once so the ghost carries re-learn state.
        let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
        let config = ProxyConfig {
            max_rules: Some(1),
            ..ProxyConfig::default()
        };
        let build = || {
            let validator = HumannessValidator::with_operating_point(1.0, 1.0, 0);
            let mut proxy = FiatProxy::new(
                ProxyConfig {
                    max_rules: Some(1),
                    ..ProxyConfig::default()
                },
                &SECRET,
                validator,
            );
            proxy.register_device(0, EventClassifier::simple_rule(235), 1);
            proxy.start(SimTime::ZERO);
            let mut t = 0;
            while t < 20 * 60 * 1000 {
                proxy.on_packet(&pkt(t, 100));
                proxy.on_packet(&pkt(t + 5_000, 150));
                t += 10_000;
            }
            // The size-100 flow (earlier last-seen) was evicted; touch
            // its ghost so last_ts/last_bin round-trip too.
            proxy.on_packet(&pkt(t, 100));
            (proxy, t)
        };
        let (mut uninterrupted, t) = build();
        let (snapshotted, _) = build();
        assert_eq!(snapshotted.rule_count(), 1);
        assert_eq!(snapshotted.state_size().rule_ghosts, 1);

        let snap = snapshotted.snapshot();
        assert_eq!(snap.rule_ghosts.len(), 1);
        assert!(snap.rule_ghosts[0].last_ts.is_some());
        let bytes = serde_json::to_vec(&snap).unwrap();
        let mut restored = FiatProxy::restore(
            config,
            &SECRET,
            validator,
            ProxyTelemetry::default(),
            &snap,
            |_| EventClassifier::simple_rule(235),
        )
        .unwrap();
        // Restore → snapshot reproduces the exact bytes (LRU order and
        // ghost state are semantic, not incidental).
        assert_eq!(bytes, serde_json::to_vec(&restored.snapshot()).unwrap());

        // Resume: the ghost re-promotes identically in both twins (two
        // more qualifying repeats at the same cadence).
        for k in 1..4u64 {
            let p = pkt(t + k * 10_000, 100);
            assert_eq!(uninterrupted.on_packet(&p), restored.on_packet(&p));
        }
        assert_eq!(uninterrupted.rule_count(), restored.rule_count());
        assert_eq!(
            uninterrupted.state_size().rule_ghosts,
            restored.state_size().rule_ghosts
        );
    }

    #[test]
    fn degraded_mode_is_audited_and_counted() {
        let mut proxy = proxy_with_plug();
        let t = bootstrap(&mut proxy);
        assert!(!proxy.is_degraded());
        proxy.set_degraded(SimTime::from_millis(t), true);
        proxy.set_degraded(SimTime::from_millis(t), true); // idempotent
        assert!(proxy.is_degraded());
        proxy.on_packet(&pkt(t, 100));
        proxy.on_packet(&pkt(t + 100, 100));
        proxy.set_degraded(SimTime::from_millis(t + 200), false);
        proxy.on_packet(&pkt(t + 300, 100));

        assert_eq!(proxy.telemetry().degraded_decision_count(), 2);
        let transitions: Vec<_> = proxy
            .audit()
            .entries()
            .iter()
            .filter(|e| e.device == AUDIT_PROXY_DEVICE)
            .map(|e| e.verdict)
            .collect();
        assert_eq!(
            transitions,
            vec![
                AuditVerdict::DegradedModeEntered,
                AuditVerdict::DegradedModeExited
            ]
        );
        assert!(proxy.audit().verify());
        let g = proxy
            .telemetry()
            .registry()
            .gauge("fiat_proxy_degraded", &[]);
        assert_eq!(g.get(), 0);
    }
}
