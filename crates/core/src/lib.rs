//! FIAT: frictionless authentication of IoT traffic (CoNEXT '22).
//!
//! The paper's contribution, assembled from the substrate crates:
//!
//! - [`predict`]: the §2.1 bucket heuristic that decides which packets are
//!   predictable (same size + same endpoint + repeating inter-arrival),
//!   under both Classic and PortLess flow definitions, plus the learned
//!   rule table the proxy enforces after bootstrap.
//! - [`events`]: grouping of unpredictable packets into events with the
//!   §3.2 five-second gap rule.
//! - [`features`]: the 66-dimensional event featurizer over the first
//!   (up to) five packets of an unpredictable event (§4.1).
//! - [`classifier`]: per-device manual-event classification — the §4 size
//!   rule for simple devices (SP10, WP3, Nest-E) and an ML model
//!   (BernoulliNB by default) for the rest.
//! - [`client`]: the phone-side FIAT app model — foreground-app detection,
//!   lazy sensor buffering, TEE-backed signing, QUIC transfer — with the
//!   Table 7 latency breakdown.
//! - [`pairing`]: the offline pairing ceremony that seeds both TEEs with
//!   the shared key (§5.4 "Pairing").
//! - [`pipeline`]: the proxy's access-control procedure of Figure 4,
//!   including the first-N allowance, humanness gating, brute-force
//!   lockout, and the audit trail.
//! - [`interactions`]: the §7 device-interaction DAG (Alexa → smart
//!   light) that lets authorized devices vouch for downstream commands.
//! - [`identify`]: passive device identification from traffic
//!   fingerprints and the §7 per-device-and-version model registry.
//! - [`notify`]: the user-facing alert feed digesting the audit trail
//!   (blocked commands, lockouts, the silent-FN digest of §7).
//! - [`audit`]: hash-chained, tamper-evident log of every unpredictable
//!   event and decision (§7 "Technology Acceptance").
//! - [`snapshot`]: versioned, serde-round-trippable export of a proxy's
//!   full decision state, so a home can move between fleet shards or
//!   survive a restart without losing rules, events, or its audit chain.
//! - [`analysis`]: the Appendix A closed-form false-positive/negative
//!   model.

pub mod analysis;
pub mod audit;
pub mod classifier;
pub mod client;
pub mod events;
pub mod features;
pub mod identify;
pub mod interactions;
pub mod notify;
pub mod pairing;
pub mod pipeline;
pub mod predict;
pub mod snapshot;

pub use analysis::ErrorModel;
pub use classifier::{EventClass, EventClassifier};
pub use client::{
    AuthAttempt, AuthMessage, DeliveryResult, FiatApp, LatencyBreakdown, RetryOutcome, RetryPolicy,
};
pub use events::{group_events, UnpredictableEvent, EVENT_GAP};
pub use features::{event_feature_names, event_features, EVENT_FEATURE_COUNT};
pub use identify::{DeviceIdentifier, ModelRegistry};
pub use interactions::InteractionGraph;
pub use notify::{Notification, NotificationCenter, Severity};
pub use pairing::pair;
pub use pipeline::{
    AllowReason, DecisionRecord, DropReason, FiatProxy, FingerprintGate, FingerprintObservation,
    FingerprintVerdict, ProxyConfig, ProxyDecision, ProxyHook, ProxyStats, ProxyTelemetry,
    StateSize,
};
pub use predict::{
    GhostState, PredictabilityEngine, PredictabilityReport, RuleTable, RuleTelemetry,
};
pub use snapshot::{GhostSnapshot, HomeSnapshot, SnapshotError, SNAPSHOT_VERSION};
