//! The 66-feature event representation (§4.1).
//!
//! For each of the first (up to) five packets of an unpredictable event:
//! direction, transport protocol, TCP flags, TLS version, packet length,
//! inter-arrival time from the previous packet, source and destination
//! ports, and the four destination-IP octets — 12 features × 5 packets.
//! Plus six aggregates: mean/std of packet sizes, mean/std of
//! inter-arrival times, packet count, and total bytes. 66 in all.
//! Events shorter than five packets zero-fill the missing slots.

use crate::events::UnpredictableEvent;
use fiat_net::PacketRecord;

/// Packets considered per event (the paper's first N = 5).
pub const FEATURE_PACKETS: usize = 5;

/// Features per packet slot.
const PER_PACKET: usize = 12;

/// Aggregate features appended after the per-packet block.
const AGGREGATES: usize = 6;

/// Total feature count: 12 × 5 + 6 = 66.
pub const EVENT_FEATURE_COUNT: usize = FEATURE_PACKETS * PER_PACKET + AGGREGATES;

/// Names of the 66 features, matching [`event_features`] order. The
/// naming follows Table 4 of the paper (pkt1-proto, pkt1-dst-ip1, ...).
pub fn event_feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(EVENT_FEATURE_COUNT);
    for k in 1..=FEATURE_PACKETS {
        names.push(format!("pkt{k}-direction"));
        names.push(format!("pkt{k}-proto"));
        names.push(format!("pkt{k}-tcp-flags"));
        names.push(format!("pkt{k}-tls"));
        names.push(format!("pkt{k}-len"));
        names.push(format!("pkt{k}-iat"));
        names.push(format!("pkt{k}-src-port"));
        names.push(format!("pkt{k}-dst-port"));
        for o in 1..=4 {
            names.push(format!("pkt{k}-dst-ip{o}"));
        }
    }
    names.extend(
        [
            "mean-len",
            "std-len",
            "mean-iat",
            "std-iat",
            "n-pkts",
            "total-bytes",
        ]
        .map(String::from),
    );
    names
}

/// Extract the 66 features of `event` over the original packet slice.
pub fn event_features(event: &UnpredictableEvent, packets: &[PacketRecord]) -> Vec<f64> {
    let mut out = Vec::with_capacity(EVENT_FEATURE_COUNT);
    let first_n: Vec<&PacketRecord> = event
        .packets
        .iter()
        .take(FEATURE_PACKETS)
        .map(|&i| &packets[i])
        .collect();

    let mut prev_ts = None;
    for slot in 0..FEATURE_PACKETS {
        match first_n.get(slot) {
            Some(p) => {
                let iat = match prev_ts {
                    Some(t) => (p.ts - t).as_secs_f64(),
                    None => 0.0,
                };
                prev_ts = Some(p.ts);
                // The "destination" IP features describe the flow's remote
                // endpoint regardless of packet direction (otherwise they
                // would merely re-encode the direction bit via the LAN
                // prefix; Table 4 finds them uninformative).
                let dst = p.remote_ip.octets();
                out.push(p.direction.feature_code());
                out.push(p.transport.proto_number() as f64);
                out.push(p.tcp_flags.0 as f64);
                out.push(p.tls.feature_code());
                out.push(p.size as f64);
                out.push(iat);
                out.push(p.src_port() as f64);
                out.push(p.dst_port() as f64);
                out.extend(dst.iter().map(|&o| o as f64));
            }
            None => out.extend(std::iter::repeat_n(0.0, PER_PACKET)),
        }
    }

    // Aggregates over the same first-N window (what the proxy has seen by
    // decision time).
    let sizes: Vec<f64> = first_n.iter().map(|p| p.size as f64).collect();
    let iats: Vec<f64> = first_n
        .windows(2)
        .map(|w| (w[1].ts - w[0].ts).as_secs_f64())
        .collect();
    out.push(mean(&sizes));
    out.push(std_dev(&sizes));
    out.push(mean(&iats));
    out.push(std_dev(&iats));
    // Only the first-N window is known at decision time (§4.1: features
    // come from "the first (up to) 5 packets"); using the final event
    // length would leak information the proxy cannot have yet.
    out.push(first_n.len() as f64);
    out.push(sizes.iter().sum());

    debug_assert_eq!(out.len(), EVENT_FEATURE_COUNT);
    out
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn std_dev(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiat_net::{Direction, SimTime, TcpFlags, TlsVersion, TrafficClass, Transport};
    use std::net::Ipv4Addr;

    fn pkt(ts_ms: u64, size: u16) -> PacketRecord {
        PacketRecord {
            ts: SimTime::from_millis(ts_ms),
            device: 0,
            direction: Direction::ToDevice,
            local_ip: Ipv4Addr::new(192, 168, 1, 10),
            remote_ip: Ipv4Addr::new(34, 12, 34, 56),
            local_port: 5000,
            remote_port: 443,
            transport: Transport::Tcp,
            tcp_flags: TcpFlags::psh_ack(),
            tls: TlsVersion::Tls12,
            size,
            label: TrafficClass::Manual,
        }
    }

    fn event_of(packets: &[PacketRecord]) -> UnpredictableEvent {
        UnpredictableEvent {
            device: 0,
            packets: (0..packets.len()).collect(),
            start: packets[0].ts,
            end: packets.last().unwrap().ts,
        }
    }

    #[test]
    fn names_count_and_uniqueness() {
        let names = event_feature_names();
        assert_eq!(names.len(), EVENT_FEATURE_COUNT);
        assert_eq!(EVENT_FEATURE_COUNT, 66);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 66);
        assert!(names.contains(&"pkt1-proto".to_string()));
        assert!(names.contains(&"pkt3-tls".to_string()));
        assert!(names.contains(&"pkt1-dst-ip4".to_string()));
    }

    #[test]
    fn full_event_features() {
        let packets: Vec<PacketRecord> = (0..5).map(|i| pkt(i * 100, 200 + i as u16)).collect();
        let ev = event_of(&packets);
        let f = event_features(&ev, &packets);
        let names = event_feature_names();
        let get = |n: &str| f[names.iter().position(|x| x == n).unwrap()];
        assert_eq!(get("pkt1-direction"), 1.0); // ToDevice
        assert_eq!(get("pkt1-proto"), 6.0);
        assert_eq!(get("pkt1-len"), 200.0);
        assert_eq!(get("pkt1-iat"), 0.0); // first packet has no IAT
        assert!((get("pkt2-iat") - 0.1).abs() < 1e-9);
        assert_eq!(get("pkt1-dst-ip1"), 34.0); // remote endpoint octet
        assert_eq!(get("n-pkts"), 5.0);
        assert_eq!(get("mean-len"), 202.0);
        assert_eq!(get("total-bytes"), 1010.0);
        assert!((get("mean-iat") - 0.1).abs() < 1e-9);
        assert!(get("std-iat").abs() < 1e-9);
    }

    #[test]
    fn short_event_zero_fills() {
        let packets: Vec<PacketRecord> = (0..2).map(|i| pkt(i * 50, 235)).collect();
        let ev = event_of(&packets);
        let f = event_features(&ev, &packets);
        assert_eq!(f.len(), 66);
        let names = event_feature_names();
        let idx = |n: &str| names.iter().position(|x| x == n).unwrap();
        // Slots 3..5 all zero.
        for k in 3..=5 {
            assert_eq!(f[idx(&format!("pkt{k}-len"))], 0.0);
            assert_eq!(f[idx(&format!("pkt{k}-proto"))], 0.0);
        }
        assert_eq!(f[idx("n-pkts")], 2.0);
        assert_eq!(f[idx("total-bytes")], 470.0);
    }

    #[test]
    fn long_event_uses_first_five_only() {
        let packets: Vec<PacketRecord> = (0..50).map(|i| pkt(i * 10, 100 + i as u16)).collect();
        let ev = event_of(&packets);
        let f = event_features(&ev, &packets);
        let names = event_feature_names();
        let idx = |n: &str| names.iter().position(|x| x == n).unwrap();
        // Aggregate length stats computed over packets 0..5 (sizes 100..104).
        assert_eq!(f[idx("mean-len")], 102.0);
        // n-pkts is capped at the decision window.
        assert_eq!(f[idx("n-pkts")], 5.0);
    }

    #[test]
    fn direction_affects_port_and_ip_features() {
        let mut p = pkt(0, 100);
        p.direction = Direction::FromDevice;
        let packets = vec![p];
        let ev = event_of(&packets);
        let f = event_features(&ev, &packets);
        let names = event_feature_names();
        let idx = |n: &str| names.iter().position(|x| x == n).unwrap();
        // FromDevice: src port is the local 5000, dst is remote 443.
        assert_eq!(f[idx("pkt1-src-port")], 5000.0);
        assert_eq!(f[idx("pkt1-dst-port")], 443.0);
        assert_eq!(f[idx("pkt1-dst-ip1")], 34.0); // remote either way
    }
}
