//! Allocation proof for the per-packet rule-match path.
//!
//! `RuleTable::matches` keys lookups on [`InternedFlowKey`] (remote
//! domains interned to dense ids in the `DnsTable`), so deciding a
//! packet must never touch the heap — for rule hits, misses, known
//! domains, and unknown IPs alike. A counting `#[global_allocator]`
//! makes that claim checkable. The counter is *per thread*: the file
//! holds exactly one test, but the libtest harness thread can still
//! allocate (watchdog timers, output buffering) concurrently with the
//! measured region — on a loaded single-core host that made a
//! process-wide counter flake.

use fiat_core::{PredictabilityEngine, RuleTable};
use fiat_net::{
    Direction, DnsTable, FlowDef, PacketRecord, SimTime, TcpFlags, TlsVersion, TrafficClass,
    Transport,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::Ipv4Addr;

struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

#[inline]
fn count_one() {
    // `try_with`: never panic if TLS is unavailable (thread teardown).
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn pkt(ts_us: u64, remote_ip: Ipv4Addr, size: u16) -> PacketRecord {
    PacketRecord {
        ts: SimTime::from_micros(ts_us),
        device: 0,
        direction: Direction::FromDevice,
        local_ip: Ipv4Addr::new(192, 168, 1, 2),
        remote_ip,
        local_port: 40_000,
        remote_port: 443,
        transport: Transport::Tcp,
        tcp_flags: TcpFlags::ack(),
        tls: TlsVersion::None,
        size,
        label: TrafficClass::Control,
    }
}

#[test]
fn rule_match_path_does_not_allocate() {
    let known = Ipv4Addr::new(34, 9, 9, 9);
    let unknown = Ipv4Addr::new(203, 0, 113, 7);
    let mut dns = DnsTable::new();
    dns.observe_forward(known, "cloud.example.com");

    // Learn a table with a real rule: one flow repeating a 60 s period.
    let bootstrap: Vec<PacketRecord> = (0..10).map(|i| pkt(i * 60_000_000, known, 235)).collect();
    let engine = PredictabilityEngine::new(FlowDef::PortLess);
    let rules = RuleTable::learn(&engine, &bootstrap, &dns);
    assert!(!rules.is_empty(), "bootstrap must learn at least one rule");

    // Probe packets built outside the measured region: a rule hit on a
    // known domain, a size miss on the same domain, and an unknown
    // remote IP (the dotted-quad fallback flow).
    let probes = [
        pkt(601_000_000, known, 235),
        pkt(602_000_000, known, 900),
        pkt(603_000_000, unknown, 235),
    ];

    // Warm up once (first lookups may lazily touch nothing, but keep the
    // measured region free of any one-time effects regardless).
    for p in &probes {
        rules.matches(FlowDef::PortLess, p, &dns);
    }

    let before = thread_allocations();
    let mut hits = 0u32;
    for _ in 0..10_000 {
        for p in &probes {
            if rules.matches(FlowDef::PortLess, p, &dns) {
                hits += 1;
            }
        }
    }
    let after = thread_allocations();

    assert_eq!(hits, 10_000, "exactly the known periodic probe should hit");
    assert_eq!(
        after - before,
        0,
        "rule-match path allocated on the heap ({} allocations over 30000 lookups)",
        after - before
    );
}
