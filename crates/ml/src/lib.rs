//! From-scratch machine learning for FIAT.
//!
//! §4 of the paper evaluates nine classifiers on unpredictable-event
//! features and §5 uses a decision tree for humanness validation. All of
//! them are implemented here against a small, uniform API:
//!
//! - [`data::Dataset`] holds a feature matrix, integer labels, and feature
//!   names; [`data`] also provides seeded train/test splits and stratified
//!   k-fold indices.
//! - [`scaler::StandardScaler`] scales features to zero mean / unit
//!   variance (the paper's preprocessing).
//! - [`Classifier`] is the common fit/predict trait.
//! - Classifiers: [`nearest_centroid`] (Euclidean / Manhattan / Chebyshev),
//!   [`naive_bayes`] (Bernoulli and Gaussian), [`knn`], [`tree`] (CART),
//!   [`forest`] (bagged random forest), [`adaboost`] (SAMME on stumps),
//!   [`svm`] (linear SVC, one-vs-rest hinge SGD), [`mlp`] (ReLU MLP).
//! - [`metrics`]: confusion matrix, precision/recall/F1, balanced accuracy.
//! - [`cv`]: stratified k-fold cross-validation.
//! - [`permutation`]: permutation feature importance (§4.3).
//! - [`shapley`]: Monte-Carlo Shapley attribution (the paper's §7
//!   future-work SHAP analysis).
//!
//! Everything is seeded and deterministic: the same seed produces the same
//! model, fold assignment, and importance scores.

pub mod adaboost;
pub mod cv;
pub mod data;
pub mod forest;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod nearest_centroid;
pub mod permutation;
pub mod scaler;
pub mod shapley;
pub mod svm;
pub mod tree;

pub use data::Dataset;
pub use metrics::{ClassMetrics, ConfusionMatrix};
pub use scaler::StandardScaler;

/// A trained (or trainable) classifier over dense `f64` features with
/// integer class labels `0..n_classes`.
pub trait Classifier {
    /// Fit the model to a dataset. Implementations must be deterministic
    /// given their configured seed.
    fn fit(&mut self, data: &Dataset);

    /// Predict the class of a single sample.
    fn predict_one(&self, x: &[f64]) -> usize;

    /// Predict classes for a batch of samples.
    fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict_one(x)).collect()
    }
}

/// Distance metrics shared by nearest-centroid and k-NN (§4.1 tests
/// Euclidean, Manhattan, and Chebyshev).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// L2 distance.
    Euclidean,
    /// L1 distance.
    Manhattan,
    /// L∞ distance.
    Chebyshev,
}

impl Distance {
    /// Compute the distance between two equal-length vectors.
    pub fn compute(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Distance::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::Chebyshev => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Distance;

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((Distance::Euclidean.compute(&a, &b) - 5.0).abs() < 1e-12);
        assert!((Distance::Manhattan.compute(&a, &b) - 7.0).abs() < 1e-12);
        assert!((Distance::Chebyshev.compute(&a, &b) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let v = [1.5, -2.5, 3.5];
        for d in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Chebyshev,
        ] {
            assert_eq!(d.compute(&v, &v), 0.0);
        }
    }
}
