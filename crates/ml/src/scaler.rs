//! Standard scaling: zero mean, unit variance per feature (§4.1: "we
//! pre-process all the data by scaling all the features to unit variance").

/// Per-feature standardization fitted on training data.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fit means and standard deviations on `x`. Zero-variance features get
    /// std 1 so they map to 0 (sklearn behaviour).
    pub fn fit(x: &[Vec<f64>]) -> Self {
        let n = x.len().max(1) as f64;
        let d = x.first().map_or(0, |r| r.len());
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in x {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
                let c = x - m;
                *v += c * c;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Transform one sample in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a matrix, returning a new one.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|r| {
                let mut row = r.clone();
                self.transform_row(&mut row);
                row
            })
            .collect()
    }

    /// Fit and transform in one step.
    pub fn fit_transform(x: &[Vec<f64>]) -> (Self, Vec<Vec<f64>>) {
        let s = Self::fit(x);
        let t = s.transform(x);
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_unit_variance() {
        let x = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        let (_, t) = StandardScaler::fit_transform(&x);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / 4.0;
            let var: f64 = t.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / 4.0;
            assert!(mean.abs() < 1e-12, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "var {var}");
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0]];
        let (_, t) = StandardScaler::fit_transform(&x);
        assert!(t.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn transform_uses_training_stats() {
        let train = vec![vec![0.0], vec![2.0]];
        let s = StandardScaler::fit(&train);
        // mean 1, std 1 -> 3.0 maps to 2.0
        let out = s.transform(&[vec![3.0]]);
        assert!((out[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_noop() {
        let s = StandardScaler::fit(&[]);
        assert!(s.transform(&[]).is_empty());
    }
}
