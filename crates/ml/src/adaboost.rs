//! AdaBoost (multi-class SAMME) over shallow decision-tree weak learners.

use crate::tree::DecisionTree;
use crate::{Classifier, Dataset};

/// AdaBoost classifier with decision stumps (depth-1 trees) by default.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Depth of each weak learner.
    pub weak_depth: usize,
    learners: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// New booster with `n_estimators` rounds of depth-`weak_depth` trees.
    pub fn new(n_estimators: usize, weak_depth: usize) -> Self {
        assert!(n_estimators >= 1);
        AdaBoost {
            n_estimators,
            weak_depth,
            learners: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for AdaBoost {
    fn default() -> Self {
        Self::new(50, 1)
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, data: &Dataset) {
        let n = data.len();
        let k = data.n_classes.max(2) as f64;
        let mut w = vec![1.0 / n as f64; n];
        self.learners.clear();
        self.n_classes = data.n_classes;

        for _ in 0..self.n_estimators {
            let mut tree = DecisionTree::new(self.weak_depth);
            tree.fit_weighted(data, &w);
            let pred = tree.predict(&data.x);
            let err: f64 = pred
                .iter()
                .zip(&data.y)
                .zip(&w)
                .filter(|((p, y), _)| p != y)
                .map(|(_, &wi)| wi)
                .sum();
            // SAMME requires err < 1 - 1/K to make progress.
            if err >= 1.0 - 1.0 / k {
                break;
            }
            if err <= 1e-12 {
                // Perfect learner: give it a large finite weight and stop.
                self.learners.push((tree, 10.0));
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            for ((wi, p), y) in w.iter_mut().zip(&pred).zip(&data.y) {
                if p != y {
                    *wi *= (alpha).exp();
                }
            }
            let total: f64 = w.iter().sum();
            for wi in &mut w {
                *wi /= total;
            }
            self.learners.push((tree, alpha));
        }

        if self.learners.is_empty() {
            // Degenerate data: keep one majority-vote stump.
            let mut tree = DecisionTree::new(0);
            tree.fit(data);
            self.learners.push((tree, 1.0));
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.learners.is_empty(), "predict before fit");
        let mut scores = vec![0.0f64; self.n_classes.max(1)];
        for (tree, alpha) in &self.learners {
            scores[tree.predict_one(x)] += alpha;
        }
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            let j = i as f64 * 0.03;
            x.push(vec![0.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![1.0 - j, 1.0 - j]);
            y.push(0);
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(1);
            x.push(vec![1.0 - j, 0.0 + j]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn stumps_boost_past_single_stump_on_xor() {
        let d = xor();
        let mut single = DecisionTree::new(1);
        single.fit(&d);
        let single_acc = single
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;

        let mut boost = AdaBoost::new(100, 2);
        boost.fit(&d);
        let boost_acc = boost
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(
            boost_acc > single_acc,
            "boosted {boost_acc} <= stump {single_acc}"
        );
        assert!(boost_acc >= 0.95, "boosted accuracy {boost_acc}");
    }

    #[test]
    fn perfect_weak_learner_short_circuits() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
        );
        let mut m = AdaBoost::new(50, 1);
        m.fit(&d);
        assert_eq!(m.learners.len(), 1, "should stop after perfect stump");
        assert_eq!(m.predict(&d.x), d.y);
    }

    #[test]
    fn three_class_samme() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.05;
            x.push(vec![0.0 + j]);
            y.push(0);
            x.push(vec![5.0 + j]);
            y.push(1);
            x.push(vec![10.0 + j]);
            y.push(2);
        }
        let d = Dataset::new(x, y);
        let mut m = AdaBoost::new(30, 1);
        m.fit(&d);
        let acc = m
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(acc >= 0.95, "3-class accuracy {acc}");
    }

    #[test]
    fn degenerate_single_class() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 0]);
        let mut m = AdaBoost::new(5, 1);
        m.fit(&d);
        assert_eq!(m.predict_one(&[0.5]), 0);
    }
}
