//! Naive Bayes classifiers: Bernoulli (the paper's deployed model, §6) and
//! Gaussian (Table 2 baseline).

use crate::{Classifier, Dataset};

/// Bernoulli Naive Bayes with Laplace smoothing, mirroring sklearn's
/// `BernoulliNB`: features are binarized at `binarize` (default 0.0, which
/// after standard scaling splits at the feature mean).
#[derive(Debug, Clone)]
pub struct BernoulliNB {
    /// Additive (Laplace/Lidstone) smoothing parameter.
    pub alpha: f64,
    /// Binarization threshold applied to every feature.
    pub binarize: f64,
    log_prior: Vec<f64>,
    // log P(x_j = 1 | class) and log P(x_j = 0 | class)
    log_p1: Vec<Vec<f64>>,
    log_p0: Vec<Vec<f64>>,
    classes: Vec<usize>,
}

impl BernoulliNB {
    /// sklearn defaults: alpha 1.0, binarize 0.0.
    pub fn new() -> Self {
        BernoulliNB {
            alpha: 1.0,
            binarize: 0.0,
            log_prior: Vec::new(),
            log_p1: Vec::new(),
            log_p0: Vec::new(),
            classes: Vec::new(),
        }
    }

    /// Override the smoothing parameter.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }
}

impl Default for BernoulliNB {
    fn default() -> Self {
        Self::new()
    }
}

impl BernoulliNB {
    /// Joint log-likelihood of each class for one sample (unnormalized
    /// posterior). Used by margin-based permutation importance.
    pub fn joint_log_likelihood(&self, x: &[f64]) -> Vec<f64> {
        assert!(!self.classes.is_empty(), "predict before fit");
        self.log_prior
            .iter()
            .enumerate()
            .map(|(i, &prior)| {
                let mut ll = prior;
                for (j, &v) in x.iter().enumerate() {
                    ll += if v > self.binarize {
                        self.log_p1[i][j]
                    } else {
                        self.log_p0[i][j]
                    };
                }
                ll
            })
            .collect()
    }

    /// The class labels corresponding to [`BernoulliNB::joint_log_likelihood`] order.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }
}

impl Classifier for BernoulliNB {
    fn fit(&mut self, data: &Dataset) {
        let d = data.n_features();
        let n = data.len() as f64;
        self.log_prior.clear();
        self.log_p1.clear();
        self.log_p0.clear();
        self.classes.clear();
        for class in 0..data.n_classes {
            let members: Vec<&Vec<f64>> = data
                .x
                .iter()
                .zip(&data.y)
                .filter(|(_, &y)| y == class)
                .map(|(x, _)| x)
                .collect();
            if members.is_empty() {
                continue;
            }
            let nc = members.len() as f64;
            self.log_prior.push((nc / n).ln());
            let mut ones = vec![0.0f64; d];
            for m in &members {
                for (o, &v) in ones.iter_mut().zip(m.iter()) {
                    if v > self.binarize {
                        *o += 1.0;
                    }
                }
            }
            let mut lp1 = Vec::with_capacity(d);
            let mut lp0 = Vec::with_capacity(d);
            for &o in &ones {
                let p1 = (o + self.alpha) / (nc + 2.0 * self.alpha);
                lp1.push(p1.ln());
                lp0.push((1.0 - p1).ln());
            }
            self.log_p1.push(lp1);
            self.log_p0.push(lp0);
            self.classes.push(class);
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.classes.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_ll = f64::NEG_INFINITY;
        for (i, &prior) in self.log_prior.iter().enumerate() {
            let mut ll = prior;
            for (j, &v) in x.iter().enumerate() {
                ll += if v > self.binarize {
                    self.log_p1[i][j]
                } else {
                    self.log_p0[i][j]
                };
            }
            if ll > best_ll {
                best_ll = ll;
                best = i;
            }
        }
        self.classes[best]
    }
}

/// Gaussian Naive Bayes: per-class per-feature normal likelihoods with a
/// variance floor for numerical stability (sklearn's `var_smoothing`).
#[derive(Debug, Clone)]
pub struct GaussianNB {
    /// Fraction of the largest feature variance added to all variances.
    pub var_smoothing: f64,
    log_prior: Vec<f64>,
    mean: Vec<Vec<f64>>,
    var: Vec<Vec<f64>>,
    classes: Vec<usize>,
}

impl GaussianNB {
    /// sklearn default smoothing 1e-9.
    pub fn new() -> Self {
        GaussianNB {
            var_smoothing: 1e-9,
            log_prior: Vec::new(),
            mean: Vec::new(),
            var: Vec::new(),
            classes: Vec::new(),
        }
    }
}

impl Default for GaussianNB {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for GaussianNB {
    fn fit(&mut self, data: &Dataset) {
        let d = data.n_features();
        let n = data.len() as f64;
        self.log_prior.clear();
        self.mean.clear();
        self.var.clear();
        self.classes.clear();

        // Global max variance for the smoothing floor.
        let mut gmean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in gmean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut gmean {
            *m /= n.max(1.0);
        }
        let mut gvar_max = 0.0f64;
        for j in 0..d {
            let v: f64 = data
                .x
                .iter()
                .map(|r| (r[j] - gmean[j]).powi(2))
                .sum::<f64>()
                / n.max(1.0);
            gvar_max = gvar_max.max(v);
        }
        let eps = self.var_smoothing * gvar_max.max(1e-12);

        for class in 0..data.n_classes {
            let members: Vec<&Vec<f64>> = data
                .x
                .iter()
                .zip(&data.y)
                .filter(|(_, &y)| y == class)
                .map(|(x, _)| x)
                .collect();
            if members.is_empty() {
                continue;
            }
            let nc = members.len() as f64;
            self.log_prior.push((nc / n).ln());
            let mut mean = vec![0.0; d];
            for m in &members {
                for (a, v) in mean.iter_mut().zip(m.iter()) {
                    *a += v;
                }
            }
            for a in &mut mean {
                *a /= nc;
            }
            let mut var = vec![0.0; d];
            for m in &members {
                for ((a, mu), v) in var.iter_mut().zip(&mean).zip(m.iter()) {
                    let c = v - mu;
                    *a += c * c;
                }
            }
            for a in &mut var {
                *a = *a / nc + eps;
            }
            self.mean.push(mean);
            self.var.push(var);
            self.classes.push(class);
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.classes.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_ll = f64::NEG_INFINITY;
        for (i, &prior) in self.log_prior.iter().enumerate() {
            let mut ll = prior;
            for (j, &v) in x.iter().enumerate() {
                let var = self.var[i][j];
                let diff = v - self.mean[i][j];
                ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
            }
            if ll > best_ll {
                best_ll = ll;
                best = i;
            }
        }
        self.classes[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_pattern_data() -> Dataset {
        // Class 0: features mostly negative; class 1: mostly positive.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            x.push(vec![-1.0 + jitter, -0.5, 1.0]);
            y.push(0);
            x.push(vec![1.0 - jitter, 0.5, 1.0]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn bernoulli_learns_sign_patterns() {
        let d = binary_pattern_data();
        let mut m = BernoulliNB::new();
        m.fit(&d);
        assert_eq!(m.predict(&d.x), d.y);
        // Unseen samples with the same sign pattern.
        assert_eq!(m.predict_one(&[-2.0, -3.0, 0.5]), 0);
        assert_eq!(m.predict_one(&[0.7, 2.0, 0.5]), 1);
    }

    #[test]
    fn bernoulli_prior_dominates_uninformative_features() {
        // All features identical across classes; 3:1 class imbalance means
        // the prior should decide.
        let x = vec![vec![1.0]; 8];
        let y = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let mut m = BernoulliNB::new();
        m.fit(&Dataset::new(x, y));
        assert_eq!(m.predict_one(&[1.0]), 0);
    }

    #[test]
    fn bernoulli_smoothing_handles_unseen_values() {
        // Class 1 never has feature 0 "on"; a test sample with it on must
        // not produce -inf (alpha smoothing).
        let d = Dataset::new(
            vec![vec![1.0], vec![1.0], vec![-1.0], vec![-1.0]],
            vec![0, 0, 1, 1],
        );
        let mut m = BernoulliNB::new();
        m.fit(&d);
        // Prediction exists and is class 0 (which actually had 1.0).
        assert_eq!(m.predict_one(&[1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bernoulli_rejects_zero_alpha() {
        let _ = BernoulliNB::new().with_alpha(0.0);
    }

    #[test]
    fn gaussian_separable_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let t = (i as f64) * 0.01;
            x.push(vec![0.0 + t, 1.0 - t]);
            y.push(0);
            x.push(vec![5.0 + t, 6.0 - t]);
            y.push(1);
        }
        let d = Dataset::new(x, y);
        let mut m = GaussianNB::new();
        m.fit(&d);
        assert_eq!(m.predict(&d.x), d.y);
        assert_eq!(m.predict_one(&[0.2, 0.8]), 0);
        assert_eq!(m.predict_one(&[5.3, 5.9]), 1);
    }

    #[test]
    fn gaussian_handles_zero_variance_feature() {
        // Second feature constant: var floor prevents division by zero.
        let d = Dataset::new(
            vec![
                vec![0.0, 7.0],
                vec![0.1, 7.0],
                vec![5.0, 7.0],
                vec![5.1, 7.0],
            ],
            vec![0, 0, 1, 1],
        );
        let mut m = GaussianNB::new();
        m.fit(&d);
        assert_eq!(m.predict_one(&[0.05, 7.0]), 0);
        assert_eq!(m.predict_one(&[5.05, 7.0]), 1);
    }

    #[test]
    fn gaussian_uses_class_priors() {
        // Overlapping distributions, strong prior for class 0.
        let mut x = vec![vec![0.0]; 9];
        x.push(vec![0.0]);
        let mut y = vec![0usize; 9];
        y.push(1);
        let mut m = GaussianNB::new();
        m.fit(&Dataset::new(x, y));
        assert_eq!(m.predict_one(&[0.0]), 0);
    }
}
