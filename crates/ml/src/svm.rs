//! Linear support vector classifier trained by hinge-loss SGD
//! (Pegasos-style), one-vs-rest for multi-class.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Linear SVC (one-vs-rest).
#[derive(Debug, Clone)]
pub struct LinearSvc {
    /// L2 regularization strength (Pegasos lambda).
    pub lambda: f64,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// RNG seed for sample shuffling.
    pub seed: u64,
    // One (weights, bias) per class.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl LinearSvc {
    /// New SVC.
    pub fn new(lambda: f64, epochs: usize, seed: u64) -> Self {
        assert!(lambda > 0.0);
        assert!(epochs >= 1);
        LinearSvc {
            lambda,
            epochs,
            seed,
            weights: Vec::new(),
            biases: Vec::new(),
        }
    }

    /// Decision score for one class.
    pub fn score(&self, class: usize, x: &[f64]) -> f64 {
        self.weights[class]
            .iter()
            .zip(x)
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.biases[class]
    }
}

impl Default for LinearSvc {
    fn default() -> Self {
        Self::new(1e-4, 30, 0)
    }
}

impl Classifier for LinearSvc {
    fn fit(&mut self, data: &Dataset) {
        let d = data.n_features();
        let n = data.len();
        self.weights = vec![vec![0.0; d]; data.n_classes];
        self.biases = vec![0.0; data.n_classes];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();

        for class in 0..data.n_classes {
            let w = &mut self.weights[class];
            let b = &mut self.biases[class];
            let mut t = 0usize;
            for _ in 0..self.epochs {
                order.shuffle(&mut rng);
                for &i in &order {
                    t += 1;
                    let eta = 1.0 / (self.lambda * t as f64);
                    let yi = if data.y[i] == class { 1.0 } else { -1.0 };
                    let margin = yi
                        * (w.iter()
                            .zip(&data.x[i])
                            .map(|(wj, xj)| wj * xj)
                            .sum::<f64>()
                            + *b);
                    // L2 shrink.
                    let shrink = 1.0 - eta * self.lambda;
                    for wj in w.iter_mut() {
                        *wj *= shrink;
                    }
                    if margin < 1.0 {
                        for (wj, xj) in w.iter_mut().zip(&data.x[i]) {
                            *wj += eta * yi * xj;
                        }
                        *b += eta * yi;
                    }
                }
            }
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        (0..self.weights.len())
            .max_by(|&a, &b| {
                self.score(a, x)
                    .partial_cmp(&self.score(b, x))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f64 * 0.1;
            x.push(vec![-1.0 - j, -1.0 + j]);
            y.push(0);
            x.push(vec![1.0 + j, 1.0 - j]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn separates_linear_classes() {
        let d = linear_data();
        let mut m = LinearSvc::default();
        m.fit(&d);
        assert_eq!(m.predict(&d.x), d.y);
        assert_eq!(m.predict_one(&[-2.0, -2.0]), 0);
        assert_eq!(m.predict_one(&[2.0, 2.0]), 1);
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let j = (i % 10) as f64 * 0.05;
            x.push(vec![-2.0 + j, 0.0]);
            y.push(0);
            x.push(vec![0.0 + j, 2.0]);
            y.push(1);
            x.push(vec![2.0 + j, -2.0]);
            y.push(2);
        }
        let d = Dataset::new(x, y);
        let mut m = LinearSvc::new(1e-4, 50, 1);
        m.fit(&d);
        let acc = m
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic() {
        let d = linear_data();
        let mut a = LinearSvc::new(1e-3, 10, 5);
        let mut b = LinearSvc::new(1e-3, 10, 5);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.biases, b.biases);
    }

    #[test]
    fn margin_sign_is_sensible() {
        let d = linear_data();
        let mut m = LinearSvc::default();
        m.fit(&d);
        assert!(m.score(0, &[-2.0, -2.0]) > m.score(1, &[-2.0, -2.0]));
        assert!(m.score(1, &[2.0, 2.0]) > m.score(0, &[2.0, 2.0]));
    }
}
