//! CART decision tree with Gini impurity.
//!
//! Used three ways in the reproduction: as the Table 2 baseline (best max
//! depth 3 per §4.1), as the humanness validator (9-layer tree per §5.4 /
//! zkSENSE), and as the weak learner inside random forest and AdaBoost —
//! hence support for sample weights and per-node feature subsampling.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A fitted tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// CART decision tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth (root = depth 0 splits allowed up to this).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// If set, consider only `ceil(sqrt(d))` random features per node
    /// (random-forest mode); the value seeds the RNG.
    pub feature_subsample_seed: Option<u64>,
    root: Option<Node>,
    depth_reached: usize,
}

impl DecisionTree {
    /// New tree with the given maximum depth.
    pub fn new(max_depth: usize) -> Self {
        DecisionTree {
            max_depth,
            min_samples_split: 2,
            feature_subsample_seed: None,
            root: None,
            depth_reached: 0,
        }
    }

    /// Enable per-node sqrt(d) feature subsampling (for forests).
    pub fn with_feature_subsampling(mut self, seed: u64) -> Self {
        self.feature_subsample_seed = Some(seed);
        self
    }

    /// Depth actually reached after fitting.
    pub fn depth_reached(&self) -> usize {
        self.depth_reached
    }

    /// Fit with explicit per-sample weights (AdaBoost). Weights must be
    /// non-negative and not all zero.
    pub fn fit_weighted(&mut self, data: &Dataset, weights: &[f64]) {
        assert_eq!(weights.len(), data.len(), "weight length mismatch");
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = self.feature_subsample_seed.map(StdRng::seed_from_u64);
        self.depth_reached = 0;
        let depth_reached = &mut self.depth_reached;
        self.root = Some(Self::build(
            data,
            weights,
            &idx,
            0,
            self.max_depth,
            self.min_samples_split,
            &mut rng,
            depth_reached,
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        data: &Dataset,
        w: &[f64],
        idx: &[usize],
        depth: usize,
        max_depth: usize,
        min_split: usize,
        rng: &mut Option<StdRng>,
        depth_reached: &mut usize,
    ) -> Node {
        *depth_reached = (*depth_reached).max(depth);
        let majority = Self::weighted_majority(data, w, idx);
        if depth >= max_depth || idx.len() < min_split || Self::is_pure(data, idx) {
            return Node::Leaf { class: majority };
        }
        let d = data.n_features();
        let features: Vec<usize> = match rng {
            Some(r) => {
                let m = ((d as f64).sqrt().ceil() as usize).max(1);
                let mut all: Vec<usize> = (0..d).collect();
                all.shuffle(r);
                all.truncate(m);
                all
            }
            None => (0..d).collect(),
        };

        let parent_gini = Self::gini(data, w, idx);
        // Best candidate: (feature, threshold, impurity decrease, balance).
        // Gini is concave, so decrease is always >= 0; among equal decreases
        // prefer the most balanced split (largest min(left, right) weight),
        // which lets depth-limited trees make progress on symmetric data
        // (e.g. XOR) where every single split has zero marginal gain.
        let mut best: Option<(usize, f64, f64, f64)> = None;
        for &f in &features {
            // Sort indices by this feature and scan candidate thresholds.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| {
                data.x[a][f]
                    .partial_cmp(&data.x[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let total_w: f64 = order.iter().map(|&i| w[i]).sum();
            if total_w <= 0.0 {
                continue;
            }
            // Incremental class-weight tallies left of the split point.
            let mut left_counts = vec![0.0f64; data.n_classes];
            let mut left_w = 0.0;
            let mut right_counts = vec![0.0f64; data.n_classes];
            for &i in &order {
                right_counts[data.y[i]] += w[i];
            }
            for k in 0..order.len() - 1 {
                let i = order[k];
                left_counts[data.y[i]] += w[i];
                right_counts[data.y[i]] -= w[i];
                left_w += w[i];
                let v = data.x[i][f];
                let v_next = data.x[order[k + 1]][f];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let gl = Self::gini_from_counts(&left_counts, left_w);
                let gr = Self::gini_from_counts(&right_counts, right_w);
                let weighted = (left_w * gl + right_w * gr) / total_w;
                let decrease = parent_gini - weighted;
                let balance = left_w.min(right_w);
                let threshold = (v + v_next) / 2.0;
                let better = match best {
                    None => true,
                    Some((_, _, bd, bbal)) => {
                        decrease > bd + 1e-15
                            || ((decrease - bd).abs() <= 1e-15 && balance > bbal + 1e-15)
                    }
                };
                if better {
                    best = Some((f, threshold, decrease, balance));
                }
            }
        }

        match best {
            Some((feature, threshold, _, _)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| data.x[i][feature] <= threshold);
                if li.is_empty() || ri.is_empty() {
                    return Node::Leaf { class: majority };
                }
                let left = Self::build(
                    data,
                    w,
                    &li,
                    depth + 1,
                    max_depth,
                    min_split,
                    rng,
                    depth_reached,
                );
                let right = Self::build(
                    data,
                    w,
                    &ri,
                    depth + 1,
                    max_depth,
                    min_split,
                    rng,
                    depth_reached,
                );
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            None => Node::Leaf { class: majority },
        }
    }

    fn is_pure(data: &Dataset, idx: &[usize]) -> bool {
        idx.windows(2).all(|w| data.y[w[0]] == data.y[w[1]])
    }

    fn weighted_majority(data: &Dataset, w: &[f64], idx: &[usize]) -> usize {
        let mut counts = vec![0.0f64; data.n_classes.max(1)];
        for &i in idx {
            counts[data.y[i]] += w[i];
        }
        counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn gini(data: &Dataset, w: &[f64], idx: &[usize]) -> f64 {
        let mut counts = vec![0.0f64; data.n_classes];
        let mut total = 0.0;
        for &i in idx {
            counts[data.y[i]] += w[i];
            total += w[i];
        }
        Self::gini_from_counts(&counts, total)
    }

    fn gini_from_counts(counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - counts
            .iter()
            .map(|c| (c / total) * (c / total))
            .sum::<f64>()
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) {
        let weights = vec![1.0; data.len()];
        self.fit_weighted(data, &weights);
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        let mut node = self.root.as_ref().expect("predict before fit");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..4 {
            let j = i as f64 * 0.02;
            x.push(vec![0.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![1.0 - j, 1.0 - j]);
            y.push(0);
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(1);
            x.push(vec![1.0 - j, 0.0 + j]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn learns_axis_aligned_split() {
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![8.0], vec![9.0]],
            vec![0, 0, 1, 1],
        );
        let mut t = DecisionTree::new(3);
        t.fit(&d);
        assert_eq!(t.predict_one(&[0.0]), 0);
        assert_eq!(t.predict_one(&[10.0]), 1);
        assert_eq!(t.depth_reached(), 1);
    }

    #[test]
    fn depth_2_solves_xor() {
        let d = xor();
        let mut t = DecisionTree::new(2);
        t.fit(&d);
        assert_eq!(t.predict(&d.x), d.y);
    }

    #[test]
    fn depth_limit_respected() {
        let d = xor();
        let mut t = DecisionTree::new(1);
        t.fit(&d);
        assert!(t.depth_reached() <= 1);
        // A depth-1 stump cannot solve XOR.
        let acc = t
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count();
        assert!(acc < d.len());
    }

    #[test]
    fn zero_depth_is_majority_vote() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1, 1, 0]);
        let mut t = DecisionTree::new(0);
        t.fit(&d);
        assert_eq!(t.predict_one(&[0.0]), 1);
        assert_eq!(t.predict_one(&[2.0]), 1);
    }

    #[test]
    fn weighted_fit_shifts_majority() {
        // Same data, but the single class-0 sample carries all the weight.
        let d = Dataset::new(vec![vec![0.0], vec![0.0], vec![0.0]], vec![1, 1, 0]);
        let mut t = DecisionTree::new(2);
        t.fit_weighted(&d, &[0.1, 0.1, 10.0]);
        assert_eq!(t.predict_one(&[0.0]), 0);
    }

    #[test]
    fn pure_node_stops_early() {
        let d = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 0, 0]);
        let mut t = DecisionTree::new(10);
        t.fit(&d);
        assert_eq!(t.depth_reached(), 0);
        assert_eq!(t.predict_one(&[5.0]), 0);
    }

    #[test]
    fn identical_features_cannot_split() {
        // Two classes but indistinguishable features: tree must emit a leaf
        // rather than a degenerate split.
        let d = Dataset::new(vec![vec![1.0], vec![1.0]], vec![0, 1]);
        let mut t = DecisionTree::new(5);
        t.fit(&d);
        assert_eq!(t.depth_reached(), 0);
    }

    #[test]
    fn deterministic_with_subsampling() {
        let d = xor();
        let mut a = DecisionTree::new(4).with_feature_subsampling(9);
        let mut b = DecisionTree::new(4).with_feature_subsampling(9);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict(&d.x), b.predict(&d.x));
    }
}
