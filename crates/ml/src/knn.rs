//! k-Nearest Neighbors (§4.1: k from 3 to 15, best at k=5 with Euclidean).

use crate::{Classifier, Dataset, Distance};

/// k-NN classifier; ties broken toward the smallest class index among the
/// tied classes with the nearest member.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    /// Number of neighbors.
    pub k: usize,
    /// Distance metric.
    pub distance: Distance,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<usize>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// New k-NN with the paper's best settings by default callers pass
    /// `k = 5`, `Distance::Euclidean`.
    pub fn new(k: usize, distance: Distance) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KNearestNeighbors {
            k,
            distance,
            train_x: Vec::new(),
            train_y: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for KNearestNeighbors {
    fn default() -> Self {
        Self::new(5, Distance::Euclidean)
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, data: &Dataset) {
        self.train_x = data.x.clone();
        self.train_y = data.y.clone();
        self.n_classes = data.n_classes;
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.train_x.is_empty(), "predict before fit");
        let mut dists: Vec<(f64, usize)> = self
            .train_x
            .iter()
            .zip(&self.train_y)
            .map(|(t, &y)| (self.distance.compute(x, t), y))
            .collect();
        let k = self.k.min(dists.len());
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = vec![0usize; self.n_classes];
        for &(_, y) in dists.iter().take(k) {
            votes[y] += 1;
        }
        let max_votes = *votes.iter().max().unwrap();
        // Tie break: among classes with max votes, pick the one whose
        // nearest neighbor is closest.
        let tied: Vec<usize> = (0..self.n_classes)
            .filter(|&c| votes[c] == max_votes)
            .collect();
        if tied.len() == 1 {
            return tied[0];
        }
        for &(_, y) in dists.iter().take(k) {
            if tied.contains(&y) {
                return y;
            }
        }
        tied[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> Dataset {
        // Non-linear pattern k-NN handles but a linear model cannot.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            let j = i as f64 * 0.05;
            x.push(vec![0.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![1.0 - j, 1.0 - j]);
            y.push(0);
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(1);
            x.push(vec![1.0 - j, 0.0 + j]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn one_nn_memorizes_training_set() {
        let d = xor_like();
        let mut m = KNearestNeighbors::new(1, Distance::Euclidean);
        m.fit(&d);
        assert_eq!(m.predict(&d.x), d.y);
    }

    #[test]
    fn k5_solves_xor_clusters() {
        let d = xor_like();
        let mut m = KNearestNeighbors::default();
        m.fit(&d);
        assert_eq!(m.predict_one(&[0.05, 0.05]), 0);
        assert_eq!(m.predict_one(&[0.95, 0.95]), 0);
        assert_eq!(m.predict_one(&[0.05, 0.95]), 1);
        assert_eq!(m.predict_one(&[0.95, 0.05]), 1);
    }

    #[test]
    fn k_larger_than_training_set_degrades_to_majority() {
        let d = Dataset::new(vec![vec![0.0], vec![0.1], vec![10.0]], vec![0, 0, 1]);
        let mut m = KNearestNeighbors::new(100, Distance::Euclidean);
        m.fit(&d);
        // Majority of all 3 points is class 0 regardless of query.
        assert_eq!(m.predict_one(&[10.0]), 0);
    }

    #[test]
    fn tie_breaks_toward_nearest() {
        // k=2 with one vote each: nearest neighbor decides.
        let d = Dataset::new(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        let mut m = KNearestNeighbors::new(2, Distance::Euclidean);
        m.fit(&d);
        assert_eq!(m.predict_one(&[0.1]), 0);
        assert_eq!(m.predict_one(&[0.9]), 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = KNearestNeighbors::new(0, Distance::Euclidean);
    }
}
