//! Classification metrics: confusion matrix, precision/recall/F1, balanced
//! accuracy (the paper's model-selection metric, Table 2).

/// A square confusion matrix; rows are true classes, columns predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

/// Per-class precision/recall/F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassMetrics {
    /// Of samples predicted as this class, the fraction truly of it.
    pub precision: f64,
    /// Of samples truly of this class, the fraction predicted as it.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of true samples of this class.
    pub support: usize,
}

impl ConfusionMatrix {
    /// Build from true and predicted labels.
    ///
    /// # Panics
    /// Panics if lengths differ or a label is `>= n_classes`.
    pub fn from_predictions(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Self {
        assert_eq!(y_true.len(), y_pred.len(), "label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Plain accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class recall (sensitivity). Classes with no true samples yield 0.
    pub fn recall(&self, class: usize) -> f64 {
        let row_sum: usize = self.counts[class].iter().sum();
        if row_sum == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / row_sum as f64
        }
    }

    /// Per-class precision. Classes never predicted yield 0.
    pub fn precision(&self, class: usize) -> f64 {
        let col_sum: usize = (0..self.n_classes()).map(|t| self.counts[t][class]).sum();
        if col_sum == 0 {
            0.0
        } else {
            self.counts[class][class] as f64 / col_sum as f64
        }
    }

    /// Per-class F1 score.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// All per-class metrics.
    pub fn class_metrics(&self, class: usize) -> ClassMetrics {
        ClassMetrics {
            precision: self.precision(class),
            recall: self.recall(class),
            f1: self.f1(class),
            support: self.counts[class].iter().sum(),
        }
    }

    /// Balanced accuracy: mean recall over classes that have support.
    ///
    /// The paper uses balanced accuracy "to reduce the impact of different
    /// numbers of unpredictable control/automated/manual events" (§4.1).
    pub fn balanced_accuracy(&self) -> f64 {
        let supported: Vec<usize> = (0..self.n_classes())
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if supported.is_empty() {
            return 0.0;
        }
        supported.iter().map(|&c| self.recall(c)).sum::<f64>() / supported.len() as f64
    }

    /// Macro-averaged F1 over classes with support.
    pub fn macro_f1(&self) -> f64 {
        let supported: Vec<usize> = (0..self.n_classes())
            .filter(|&c| self.counts[c].iter().sum::<usize>() > 0)
            .collect();
        if supported.is_empty() {
            return 0.0;
        }
        supported.iter().map(|&c| self.f1(c)).sum::<f64>() / supported.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&y, &y, 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.balanced_accuracy(), 1.0);
        for c in 0..3 {
            let m = cm.class_metrics(c);
            assert_eq!(m.precision, 1.0);
            assert_eq!(m.recall, 1.0);
            assert_eq!(m.f1, 1.0);
            assert_eq!(m.support, 2);
        }
    }

    #[test]
    fn known_binary_case() {
        // true:  0 0 0 0 1 1
        // pred:  0 0 1 1 1 0
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 0, 0, 1, 1], &[0, 0, 1, 1, 1, 0], 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-12);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_ignores_empty_classes() {
        // Class 2 never occurs as a true label.
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 0, 1, 0], 3);
        assert!((cm.balanced_accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_resists_imbalance() {
        // 90 samples of class 0 all right, 10 of class 1 all wrong:
        // plain accuracy 0.9 but balanced accuracy 0.5.
        let mut yt = vec![0usize; 90];
        yt.extend(vec![1usize; 10]);
        let yp = vec![0usize; 100];
        let cm = ConfusionMatrix::from_predictions(&yt, &yp, 2);
        assert!((cm.accuracy() - 0.9).abs() < 1e-12);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_never_predicted() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1], &[0, 0], 2);
        assert_eq!(cm.f1(1), 0.0);
        assert_eq!(cm.precision(1), 0.0);
    }

    #[test]
    fn empty_input() {
        let cm = ConfusionMatrix::from_predictions(&[], &[], 2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.balanced_accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
        assert_eq!(cm.total(), 0);
    }
}
