//! Random forest: bootstrap-bagged CART trees with per-node sqrt(d)
//! feature subsampling; majority vote at prediction.

use crate::tree::DecisionTree;
use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Random forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// RNG seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// New forest.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        assert!(n_trees >= 1);
        RandomForest {
            n_trees,
            max_depth,
            seed,
            trees: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(50, 8, 0)
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.n_classes = data.n_classes;
        self.trees = (0..self.n_trees)
            .map(|t| {
                // Bootstrap sample with replacement.
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.gen_range(0..data.len()))
                    .collect();
                let boot = data.subset(&idx);
                let mut tree = DecisionTree::new(self.max_depth)
                    .with_feature_subsampling(self.seed.wrapping_add(t as u64 * 7919 + 1));
                tree.fit(&boot);
                tree
            })
            .collect();
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut votes = vec![0usize; self.n_classes.max(1)];
        for t in &self.trees {
            votes[t.predict_one(x)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..60 {
            let n: f64 = rng.gen_range(-0.5..0.5);
            x.push(vec![0.0 + n, 0.0 - n, rng.gen_range(-1.0..1.0)]);
            y.push(0);
            let n: f64 = rng.gen_range(-0.5..0.5);
            x.push(vec![3.0 + n, 3.0 - n, rng.gen_range(-1.0..1.0)]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn fits_noisy_blobs() {
        let d = noisy_blobs(1);
        let mut f = RandomForest::new(20, 6, 42);
        f.fit(&d);
        let acc = f
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = noisy_blobs(2);
        let mut a = RandomForest::new(10, 5, 7);
        let mut b = RandomForest::new(10, 5, 7);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.predict(&d.x), b.predict(&d.x));
    }

    #[test]
    fn different_seeds_grow_different_forests() {
        let d = noisy_blobs(3);
        let mut a = RandomForest::new(3, 2, 1);
        let mut b = RandomForest::new(3, 2, 999);
        a.fit(&d);
        b.fit(&d);
        // With few shallow trees the vote patterns almost surely differ on
        // at least one of 200 probe points.
        let probes: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![i as f64 * 0.015, 3.0 - i as f64 * 0.015, 0.0])
            .collect();
        assert_ne!(a.predict(&probes), b.predict(&probes));
    }

    #[test]
    fn single_tree_forest_works() {
        let d = noisy_blobs(4);
        let mut f = RandomForest::new(1, 6, 0);
        f.fit(&d);
        let acc = f
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.8);
    }
}
