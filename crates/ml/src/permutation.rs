//! Permutation feature importance (§4.3): shuffle one feature's values
//! across all samples and measure the F1-score drop, repeated `n_repeats`
//! times (the paper uses 50).

use crate::metrics::ConfusionMatrix;
use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Importance of one feature.
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// Feature index.
    pub feature: usize,
    /// Feature name (from the dataset).
    pub name: String,
    /// Mean score drop across repeats.
    pub importance: f64,
    /// Standard deviation of the drop across repeats.
    pub std: f64,
}

/// Score a fitted model on a dataset using macro F1 of the positive class
/// scheme the paper reports; we use macro F1 to stay class-symmetric.
fn score<C: Classifier>(model: &C, data: &Dataset) -> f64 {
    let pred = model.predict(&data.x);
    ConfusionMatrix::from_predictions(&data.y, &pred, data.n_classes).macro_f1()
}

/// Compute permutation importance of every feature of `data` under the
/// already-fitted `model`, scoring with macro F1 (the paper's metric).
/// Returns features sorted by descending importance.
pub fn permutation_importance<C: Classifier>(
    model: &C,
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
) -> Vec<FeatureImportance> {
    permutation_importance_with(data, n_repeats, seed, |d| score(model, d))
}

/// Permutation importance with a caller-supplied score (higher = better).
/// A margin-based score (e.g. mean true-class log-likelihood margin) is
/// far more sensitive than hard-label F1 when features are redundant.
pub fn permutation_importance_with(
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
    score: impl Fn(&Dataset) -> f64,
) -> Vec<FeatureImportance> {
    let base = score(data);
    let n = data.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(data.n_features());

    for f in 0..data.n_features() {
        let mut drops = Vec::with_capacity(n_repeats);
        for _ in 0..n_repeats {
            // Shuffle the column.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let mut x = data.x.clone();
            for (i, &pi) in perm.iter().enumerate() {
                x[i][f] = data.x[pi][f];
            }
            let shuffled = Dataset {
                x,
                y: data.y.clone(),
                n_classes: data.n_classes,
                feature_names: data.feature_names.clone(),
            };
            drops.push(base - score(&shuffled));
        }
        let mean = drops.iter().sum::<f64>() / n_repeats as f64;
        let var = drops.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n_repeats as f64;
        out.push(FeatureImportance {
            feature: f,
            name: data.feature_names[f].clone(),
            importance: mean,
            std: var.sqrt(),
        });
    }
    out.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_bayes::GaussianNB;
    use crate::tree::DecisionTree;

    /// Class depends only on feature 0; feature 1 is noise.
    fn one_informative_feature() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let noise = ((i * 37) % 17) as f64;
            if i % 2 == 0 {
                x.push(vec![0.0 + (i % 5) as f64 * 0.01, noise]);
                y.push(0);
            } else {
                x.push(vec![10.0 + (i % 5) as f64 * 0.01, noise]);
                y.push(1);
            }
        }
        Dataset::new(x, y).with_feature_names(vec!["signal".into(), "noise".into()])
    }

    #[test]
    fn informative_feature_ranks_first() {
        let d = one_informative_feature();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let imp = permutation_importance(&m, &d, 20, 0);
        assert_eq!(imp[0].name, "signal");
        assert!(
            imp[0].importance > 0.3,
            "signal importance {}",
            imp[0].importance
        );
    }

    #[test]
    fn noise_feature_has_zero_importance() {
        let d = one_informative_feature();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let imp = permutation_importance(&m, &d, 20, 0);
        let noise = imp.iter().find(|i| i.name == "noise").unwrap();
        assert!(
            noise.importance.abs() < 1e-9,
            "noise importance {}",
            noise.importance
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = one_informative_feature();
        let mut m = GaussianNB::new();
        m.fit(&d);
        let a = permutation_importance(&m, &d, 10, 4);
        let b = permutation_importance(&m, &d, 10, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.importance, y.importance);
            assert_eq!(x.std, y.std);
        }
    }

    #[test]
    fn output_sorted_descending() {
        let d = one_informative_feature();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let imp = permutation_importance(&m, &d, 10, 0);
        assert!(imp.windows(2).all(|w| w[0].importance >= w[1].importance));
        assert_eq!(imp.len(), 2);
    }
}
