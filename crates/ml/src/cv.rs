//! Stratified k-fold cross-validation (§4: "results refer to the mean from
//! five-fold cross-validation"), with per-fold standard scaling fitted on
//! the training folds only.

use crate::data::{fold_complement, stratified_kfold};
use crate::metrics::ConfusionMatrix;
use crate::scaler::StandardScaler;
use crate::{Classifier, Dataset};

/// Aggregated cross-validation result.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// One confusion matrix per fold (on that fold's test split).
    pub folds: Vec<ConfusionMatrix>,
}

impl CvResult {
    /// Mean balanced accuracy across folds.
    pub fn mean_balanced_accuracy(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.balanced_accuracy()))
    }

    /// Mean plain accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        mean(self.folds.iter().map(|f| f.accuracy()))
    }

    /// Mean precision for one class across folds.
    pub fn mean_precision(&self, class: usize) -> f64 {
        mean(self.folds.iter().map(|f| f.precision(class)))
    }

    /// Mean recall for one class across folds.
    pub fn mean_recall(&self, class: usize) -> f64 {
        mean(self.folds.iter().map(|f| f.recall(class)))
    }

    /// Mean F1 for one class across folds.
    pub fn mean_f1(&self, class: usize) -> f64 {
        mean(self.folds.iter().map(|f| f.f1(class)))
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Run stratified k-fold CV. `make_model` builds a fresh classifier per
/// fold. Scaling is fitted on the training folds and applied to both splits,
/// mirroring a leak-free sklearn pipeline.
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, make_model: F) -> CvResult
where
    C: Classifier,
    F: Fn() -> C,
{
    let folds_idx = stratified_kfold(&data.y, k, seed);
    let mut folds = Vec::with_capacity(k);
    for test_idx in &folds_idx {
        let train_idx = fold_complement(test_idx, data.len());
        let train = data.subset(&train_idx);
        let test = data.subset(test_idx);
        let (scaler, train_x) = StandardScaler::fit_transform(&train.x);
        let train_scaled = Dataset {
            x: train_x,
            y: train.y.clone(),
            n_classes: data.n_classes,
            feature_names: data.feature_names.clone(),
        };
        let mut model = make_model();
        model.fit(&train_scaled);
        let test_x = scaler.transform(&test.x);
        let pred = model.predict(&test_x);
        folds.push(ConfusionMatrix::from_predictions(
            &test.y,
            &pred,
            data.n_classes,
        ));
    }
    CvResult { folds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nearest_centroid::NearestCentroid;
    use crate::Distance;

    fn blobs(n: usize) -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let j = (i % 7) as f64 * 0.1;
            x.push(vec![0.0 + j, 0.0 - j]);
            y.push(0);
            x.push(vec![100.0 + j, 100.0 - j]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn separable_data_scores_perfectly() {
        let d = blobs(25);
        let r = cross_validate(&d, 5, 0, || NearestCentroid::new(Distance::Euclidean));
        assert_eq!(r.folds.len(), 5);
        assert!((r.mean_balanced_accuracy() - 1.0).abs() < 1e-12);
        assert!((r.mean_f1(0) - 1.0).abs() < 1e-12);
        assert!((r.mean_f1(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn folds_cover_all_samples_once() {
        let d = blobs(10);
        let r = cross_validate(&d, 5, 1, NearestCentroid::default);
        let total: usize = r.folds.iter().map(|f| f.total()).sum();
        assert_eq!(total, d.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(20);
        let a = cross_validate(&d, 5, 3, NearestCentroid::default);
        let b = cross_validate(&d, 5, 3, NearestCentroid::default);
        assert_eq!(a.mean_balanced_accuracy(), b.mean_balanced_accuracy());
    }

    #[test]
    fn random_labels_score_near_chance() {
        // Features carry no signal: balanced accuracy should hover near 0.5.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            x.push(vec![(i % 13) as f64, (i % 7) as f64]);
            y.push((i / 3 + i / 7) % 2);
        }
        let d = Dataset::new(x, y);
        let r = cross_validate(&d, 5, 0, NearestCentroid::default);
        let ba = r.mean_balanced_accuracy();
        assert!((0.3..0.7).contains(&ba), "balanced accuracy {ba}");
    }
}
