//! Monte-Carlo Shapley feature attribution (§7: "other techniques such as
//! SHAP would help to verify/measure the effectiveness of each feature").
//!
//! For each feature, its Shapley value is its average marginal
//! contribution to the model score over random feature coalitions:
//! sample a permutation of features, walk it, and at each step replace
//! the next feature's column with a background (shuffled) version,
//! measuring the score change attributable to "revealing" that feature.
//! This is the permutation-sampling approximation of SHAP values at the
//! dataset level, sharing [`FeatureImportance`] with the §4.3 permutation
//! importance so the two rankings are directly comparable.

use crate::permutation::FeatureImportance;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Estimate Shapley values for all features with `n_permutations` sampled
/// feature orderings, scoring coalitions with `score` (higher = better).
///
/// The background distribution for "absent" features is the column
/// shuffled across samples (marginal imputation).
pub fn shapley_values(
    data: &Dataset,
    n_permutations: usize,
    seed: u64,
    score: impl Fn(&Dataset) -> f64,
) -> Vec<FeatureImportance> {
    assert!(n_permutations >= 1);
    let d = data.n_features();
    let n = data.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sums = vec![0.0f64; d];
    let mut sq_sums = vec![0.0f64; d];

    for _ in 0..n_permutations {
        // Background: every feature column independently shuffled.
        // (`f` indexes a column across rows, not an element of `x`.)
        let mut x = data.x.clone();
        #[allow(clippy::needless_range_loop)]
        for f in 0..d {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            for (i, &pi) in perm.iter().enumerate() {
                x[i][f] = data.x[pi][f];
            }
        }
        let mut current = Dataset {
            x,
            y: data.y.clone(),
            n_classes: data.n_classes,
            feature_names: data.feature_names.clone(),
        };
        let mut prev_score = score(&current);

        // Reveal features one by one in a random order.
        let mut order: Vec<usize> = (0..d).collect();
        order.shuffle(&mut rng);
        for &f in &order {
            for i in 0..n {
                current.x[i][f] = data.x[i][f];
            }
            let s = score(&current);
            let delta = s - prev_score;
            sums[f] += delta;
            sq_sums[f] += delta * delta;
            prev_score = s;
        }
    }

    let mut out: Vec<FeatureImportance> = (0..d)
        .map(|f| {
            let mean = sums[f] / n_permutations as f64;
            let var = sq_sums[f] / n_permutations as f64 - mean * mean;
            FeatureImportance {
                feature: f,
                name: data.feature_names[f].clone(),
                importance: mean,
                std: var.max(0.0).sqrt(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ConfusionMatrix;
    use crate::tree::DecisionTree;
    use crate::Classifier;

    /// Feature 0 fully determines the class; feature 1 is pure noise.
    fn dataset() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let noise = ((i * 31) % 13) as f64;
            if i % 2 == 0 {
                x.push(vec![0.0, noise]);
                y.push(0);
            } else {
                x.push(vec![10.0, noise]);
                y.push(1);
            }
        }
        Dataset::new(x, y).with_feature_names(vec!["signal".into(), "noise".into()])
    }

    fn accuracy_score(model: &DecisionTree) -> impl Fn(&Dataset) -> f64 + '_ {
        |d: &Dataset| {
            let pred = model.predict(&d.x);
            ConfusionMatrix::from_predictions(&d.y, &pred, d.n_classes).accuracy()
        }
    }

    #[test]
    fn signal_gets_the_credit() {
        let d = dataset();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let shap = shapley_values(&d, 10, 0, accuracy_score(&m));
        assert_eq!(shap[0].name, "signal");
        assert!(shap[0].importance > 0.3, "signal {}", shap[0].importance);
        let noise = shap.iter().find(|f| f.name == "noise").unwrap();
        assert!(noise.importance.abs() < 0.05, "noise {}", noise.importance);
    }

    #[test]
    fn efficiency_property_holds() {
        // Shapley values sum to score(full) - score(background), per
        // permutation and therefore in expectation.
        let d = dataset();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let score = accuracy_score(&m);
        let shap = shapley_values(&d, 20, 1, &score);
        let total: f64 = shap.iter().map(|f| f.importance).sum();
        let full = score(&d);
        // Background score fluctuates around chance (0.5 for balanced
        // binary); the telescoping sum equals full - background exactly,
        // so the total lands near full - 0.5.
        assert!(
            (total - (full - 0.5)).abs() < 0.15,
            "total {total}, full {full}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let mut m = DecisionTree::new(3);
        m.fit(&d);
        let a = shapley_values(&d, 5, 9, accuracy_score(&m));
        let b = shapley_values(&d, 5, 9, accuracy_score(&m));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.importance, y.importance);
        }
    }

    #[test]
    #[should_panic]
    fn zero_permutations_rejected() {
        let d = dataset();
        let _ = shapley_values(&d, 0, 0, |_| 0.0);
    }
}
