//! Multi-layer perceptron: ReLU hidden layers, softmax output, minibatch
//! SGD with momentum. §4.1 explores 1–10 hidden layers of width 128 and
//! finds 8 best on the paper's data.

use crate::{Classifier, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Fully-connected feed-forward network.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Hidden layer sizes (e.g. `vec![128; 8]`).
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
    // weights[l][i][j]: layer l, output unit i, input j. biases[l][i].
    weights: Vec<Vec<Vec<f64>>>,
    biases: Vec<Vec<f64>>,
    n_classes: usize,
}

impl Mlp {
    /// New MLP with the given hidden layout.
    pub fn new(hidden: Vec<usize>, epochs: usize, seed: u64) -> Self {
        Mlp {
            hidden,
            lr: 0.01,
            momentum: 0.9,
            epochs,
            batch: 16,
            seed,
            weights: Vec::new(),
            biases: Vec::new(),
            n_classes: 0,
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<Vec<f64>> {
        // Returns activations per layer (input first, logits last-softmaxed).
        let mut acts = vec![x.to_vec()];
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let prev = acts.last().unwrap();
            let mut out: Vec<f64> = w
                .iter()
                .zip(b)
                .map(|(wi, bi)| wi.iter().zip(prev).map(|(a, p)| a * p).sum::<f64>() + bi)
                .collect();
            if l + 1 < self.weights.len() {
                for v in &mut out {
                    *v = v.max(0.0); // ReLU
                }
            } else {
                softmax(&mut out);
            }
            acts.push(out);
        }
        acts
    }
}

fn softmax(v: &mut [f64]) {
    let m = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, data: &Dataset) {
        let d = data.n_features();
        self.n_classes = data.n_classes;
        let mut sizes = vec![d];
        sizes.extend(&self.hidden);
        sizes.push(data.n_classes.max(2));

        let mut rng = StdRng::seed_from_u64(self.seed);
        self.weights.clear();
        self.biases.clear();
        for l in 0..sizes.len() - 1 {
            // He initialization for ReLU layers.
            let scale = (2.0 / sizes[l] as f64).sqrt();
            self.weights.push(
                (0..sizes[l + 1])
                    .map(|_| {
                        (0..sizes[l])
                            .map(|_| rng.gen_range(-scale..scale))
                            .collect()
                    })
                    .collect(),
            );
            self.biases.push(vec![0.0; sizes[l + 1]]);
        }

        let mut vel_w: Vec<Vec<Vec<f64>>> = self
            .weights
            .iter()
            .map(|l| l.iter().map(|r| vec![0.0; r.len()]).collect())
            .collect();
        let mut vel_b: Vec<Vec<f64>> = self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch) {
                // Accumulate gradients over the minibatch.
                let mut grad_w: Vec<Vec<Vec<f64>>> = self
                    .weights
                    .iter()
                    .map(|l| l.iter().map(|r| vec![0.0; r.len()]).collect())
                    .collect();
                let mut grad_b: Vec<Vec<f64>> =
                    self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

                for &i in chunk {
                    let acts = self.forward(&data.x[i]);
                    let n_layers = self.weights.len();
                    // Output delta: softmax + cross-entropy.
                    let mut delta: Vec<f64> = acts[n_layers].clone();
                    delta[data.y[i]] -= 1.0;
                    for l in (0..n_layers).rev() {
                        for (u, &du) in delta.iter().enumerate() {
                            grad_b[l][u] += du;
                            for (j, &aj) in acts[l].iter().enumerate() {
                                grad_w[l][u][j] += du * aj;
                            }
                        }
                        if l > 0 {
                            let mut prev_delta = vec![0.0; acts[l].len()];
                            for (u, &du) in delta.iter().enumerate() {
                                for (j, pd) in prev_delta.iter_mut().enumerate() {
                                    *pd += du * self.weights[l][u][j];
                                }
                            }
                            // ReLU derivative.
                            for (pd, &a) in prev_delta.iter_mut().zip(&acts[l]) {
                                if a <= 0.0 {
                                    *pd = 0.0;
                                }
                            }
                            delta = prev_delta;
                        }
                    }
                }

                let scale = self.lr / chunk.len() as f64;
                for l in 0..self.weights.len() {
                    for u in 0..self.weights[l].len() {
                        let vb = &mut vel_b[l][u];
                        *vb = self.momentum * *vb - scale * grad_b[l][u];
                        self.biases[l][u] += *vb;
                        for j in 0..self.weights[l][u].len() {
                            let vw = &mut vel_w[l][u][j];
                            *vw = self.momentum * *vw - scale * grad_w[l][u][j];
                            self.weights[l][u][j] += *vw;
                        }
                    }
                }
            }
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        let acts = self.forward(x);
        let out = acts.last().unwrap();
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_separation() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.05;
            x.push(vec![-1.0 - j, 0.5]);
            y.push(0);
            x.push(vec![1.0 + j, -0.5]);
            y.push(1);
        }
        let d = Dataset::new(x, y);
        let mut m = Mlp::new(vec![16], 200, 0);
        m.fit(&d);
        assert_eq!(m.predict(&d.x), d.y);
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            let j = i as f64 * 0.02;
            x.push(vec![0.0 + j, 0.0 + j]);
            y.push(0);
            x.push(vec![1.0 - j, 1.0 - j]);
            y.push(0);
            x.push(vec![0.0 + j, 1.0 - j]);
            y.push(1);
            x.push(vec![1.0 - j, 0.0 + j]);
            y.push(1);
        }
        let d = Dataset::new(x, y);
        let mut m = Mlp::new(vec![16, 16], 500, 3);
        m.fit(&d);
        let acc = m
            .predict(&d.x)
            .iter()
            .zip(&d.y)
            .filter(|(p, y)| p == y)
            .count() as f64
            / d.len() as f64;
        assert!(acc >= 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 1, 1],
        );
        let mut a = Mlp::new(vec![8], 50, 9);
        let mut b = Mlp::new(vec![8], 50, 9);
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn softmax_normalizes() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut v = vec![1000.0, 1001.0];
        softmax(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
