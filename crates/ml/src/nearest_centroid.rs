//! Nearest Centroid Classifier — the paper's best model (Table 2, balanced
//! accuracy 0.931), best with Chebyshev distance (§4.1).

use crate::{Classifier, Dataset, Distance};

/// Nearest-centroid classifier with a configurable distance metric.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    /// Distance metric used at prediction time.
    pub distance: Distance,
    centroids: Vec<Vec<f64>>,
    classes: Vec<usize>,
}

impl NearestCentroid {
    /// New classifier with the given metric (paper's pick: Chebyshev).
    pub fn new(distance: Distance) -> Self {
        NearestCentroid {
            distance,
            centroids: Vec::new(),
            classes: Vec::new(),
        }
    }

    /// The fitted per-class centroids (empty before `fit`).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }
}

impl Default for NearestCentroid {
    fn default() -> Self {
        Self::new(Distance::Chebyshev)
    }
}

impl Classifier for NearestCentroid {
    fn fit(&mut self, data: &Dataset) {
        let d = data.n_features();
        self.centroids.clear();
        self.classes.clear();
        for class in 0..data.n_classes {
            let members: Vec<&Vec<f64>> = data
                .x
                .iter()
                .zip(&data.y)
                .filter(|(_, &y)| y == class)
                .map(|(x, _)| x)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut c = vec![0.0; d];
            for m in &members {
                for (ci, v) in c.iter_mut().zip(m.iter()) {
                    *ci += v;
                }
            }
            let n = members.len() as f64;
            for ci in &mut c {
                *ci /= n;
            }
            self.centroids.push(c);
            self.classes.push(class);
        }
    }

    fn predict_one(&self, x: &[f64]) -> usize {
        assert!(!self.centroids.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = self.distance.compute(x, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        self.classes[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        // Two well-separated 2-D blobs.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            x.push(vec![0.0 + 0.1 * i as f64, 0.0]);
            y.push(0);
            x.push(vec![10.0 + 0.1 * i as f64, 10.0]);
            y.push(1);
        }
        Dataset::new(x, y)
    }

    #[test]
    fn separable_blobs_classified_perfectly() {
        for dist in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Chebyshev,
        ] {
            let mut m = NearestCentroid::new(dist);
            let d = blobs();
            m.fit(&d);
            let pred = m.predict(&d.x);
            assert_eq!(pred, d.y, "{dist:?}");
        }
    }

    #[test]
    fn centroids_are_class_means() {
        let d = Dataset::new(
            vec![vec![0.0], vec![2.0], vec![10.0], vec![14.0]],
            vec![0, 0, 1, 1],
        );
        let mut m = NearestCentroid::default();
        m.fit(&d);
        assert_eq!(m.centroids()[0], vec![1.0]);
        assert_eq!(m.centroids()[1], vec![12.0]);
    }

    #[test]
    fn skips_empty_classes() {
        // Label 2 declared but absent: predictions still valid.
        let d = Dataset::new(vec![vec![0.0], vec![10.0]], vec![0, 1]).with_n_classes(3);
        let mut m = NearestCentroid::default();
        m.fit(&d);
        assert_eq!(m.predict_one(&[1.0]), 0);
        assert_eq!(m.predict_one(&[9.0]), 1);
    }

    #[test]
    fn chebyshev_differs_from_euclidean_when_it_should() {
        // Centroids at (0,0) and (5,0); query (3, 4):
        // Euclid: d0 = 5, d1 = sqrt(4+16)=4.47 -> class 1
        // Chebyshev: d0 = max(3,4)=4, d1 = max(2,4)=4 -> tie, first wins (class 0)
        let d = Dataset::new(vec![vec![0.0, 0.0], vec![5.0, 0.0]], vec![0, 1]);
        let mut eu = NearestCentroid::new(Distance::Euclidean);
        let mut ch = NearestCentroid::new(Distance::Chebyshev);
        eu.fit(&d);
        ch.fit(&d);
        assert_eq!(eu.predict_one(&[3.0, 4.0]), 1);
        assert_eq!(ch.predict_one(&[3.0, 4.0]), 0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        NearestCentroid::default().predict_one(&[0.0]);
    }
}
